"""Sectored cache: hit/miss classification, LRU, evictions, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig
from repro.sim.cache import AccessResult, InfiniteCache, SectoredCache


def small_cache(sectored=True, lines=8, assoc=2) -> SectoredCache:
    return SectoredCache(
        CacheConfig(
            size_bytes=lines * 128,
            associativity=assoc,
            sectored=sectored,
        )
    )


class TestLookupClassification:
    def test_cold_miss(self):
        cache = small_cache()
        assert cache.lookup(0x0) is AccessResult.MISS

    def test_hit_after_fill(self):
        cache = small_cache()
        cache.fill(0x0)
        assert cache.lookup(0x0) is AccessResult.HIT

    def test_sector_miss_same_line(self):
        cache = small_cache()
        cache.fill(0x0)  # sector 0 only
        assert cache.lookup(0x20) is AccessResult.SECTOR_MISS

    def test_non_sectored_fill_validates_whole_line(self):
        cache = small_cache(sectored=False)
        cache.fill(0x0)
        assert cache.lookup(0x60) is AccessResult.HIT

    def test_lookup_does_not_allocate(self):
        cache = small_cache()
        cache.lookup(0x0)
        assert cache.resident_lines() == 0

    def test_contains_is_non_mutating(self):
        cache = small_cache()
        cache.fill(0x0)
        before = cache.stats.get("accesses")
        assert cache.contains(0x0)
        assert not cache.contains(0x20)
        assert cache.stats.get("accesses") == before


class TestDirtyAndEviction:
    def test_write_hit_sets_dirty(self):
        cache = small_cache(lines=2, assoc=1)
        cache.fill(0x0)
        cache.lookup(0x0, is_write=True)
        # force eviction of line 0 by filling a conflicting line
        evictions = cache.fill(0x100)
        assert len(evictions) == 1
        assert evictions[0].dirty
        assert evictions[0].dirty_sector_addrs == [0x0]

    def test_clean_eviction_lists_nothing(self):
        cache = small_cache(lines=2, assoc=1)
        cache.fill(0x0)
        evictions = cache.fill(0x100)
        assert not evictions[0].dirty

    def test_eviction_is_lru(self):
        cache = small_cache(lines=4, assoc=2)
        cache.fill(0x0)     # set 0
        cache.fill(0x100)   # set 0 (line index 2 % 2 sets)
        cache.lookup(0x0)   # touch 0x0 -> 0x100 is now LRU
        evictions = cache.fill(0x200)  # set 0 again
        assert evictions[0].line_addr == 0x100

    def test_write_insert_marks_dirty(self):
        cache = small_cache(lines=2, assoc=1)
        cache.write_insert(0x20)
        evictions = cache.fill(0x100)
        assert evictions[0].dirty_sector_addrs == [0x20]

    def test_multi_sector_dirty_eviction(self):
        cache = small_cache(lines=2, assoc=1)
        cache.write_insert(0x0)
        cache.write_insert(0x60)
        evictions = cache.fill(0x100)
        assert evictions[0].dirty_sector_addrs == [0x0, 0x60]

    def test_non_sectored_eviction_is_whole_line(self):
        cache = small_cache(sectored=False, lines=2, assoc=1)
        cache.fill(0x0, dirty=True)
        evictions = cache.fill(0x100)
        assert evictions[0].dirty_sector_addrs == [0x0]

    def test_mark_dirty_requires_residency(self):
        cache = small_cache()
        assert not cache.mark_dirty(0x0)
        cache.fill(0x0)
        assert cache.mark_dirty(0x0)

    def test_drain_dirty(self):
        cache = small_cache(lines=4, assoc=2)
        cache.fill(0x0, dirty=True)
        cache.fill(0x80)
        drained = cache.drain_dirty()
        assert [e.line_addr for e in drained] == [0x0]
        assert cache.resident_lines() == 1  # clean line stays


class TestFillIdempotence:
    def test_fill_same_sector_twice_no_eviction(self):
        cache = small_cache(lines=2, assoc=1)
        cache.fill(0x0)
        assert cache.fill(0x0) == []

    def test_fill_other_sector_same_line(self):
        cache = small_cache(lines=2, assoc=1)
        cache.fill(0x0)
        assert cache.fill(0x20) == []
        assert cache.lookup(0x20) is AccessResult.HIT

    def test_fill_does_not_clear_dirty(self):
        cache = small_cache(lines=2, assoc=1)
        cache.write_insert(0x0)
        cache.fill(0x0)  # clean fill of the same sector
        evictions = cache.fill(0x100)
        assert evictions[0].dirty


class TestCapacityInvariants:
    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300),
    )
    @settings(max_examples=50)
    def test_resident_lines_never_exceed_capacity(self, line_indices):
        cache = small_cache(lines=8, assoc=2)
        for index in line_indices:
            cache.fill(index * 128)
            assert cache.resident_lines() <= 8

    @given(
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200),
    )
    @settings(max_examples=50)
    def test_evictions_account_for_every_installed_line(self, line_indices):
        cache = small_cache(lines=4, assoc=4)
        evicted = 0
        for index in line_indices:
            evicted += len(cache.fill(index * 128))
        distinct = len({i for i in line_indices})
        assert cache.resident_lines() + evicted >= distinct
        assert cache.resident_lines() <= 4

    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=5, max_size=150))
    @settings(max_examples=40)
    def test_larger_associativity_never_misses_more(self, line_indices):
        """LRU inclusion: same sets, more ways => subset of misses."""
        small = SectoredCache(CacheConfig(size_bytes=4 * 128, associativity=4))
        large = SectoredCache(CacheConfig(size_bytes=8 * 128, associativity=8))
        small_misses = large_misses = 0
        for index in line_indices:
            addr = index * 128
            if small.lookup(addr) is not AccessResult.HIT:
                small_misses += 1
                small.fill(addr)
            if large.lookup(addr) is not AccessResult.HIT:
                large_misses += 1
                large.fill(addr)
        assert large_misses <= small_misses


class TestInfiniteCache:
    def test_only_cold_misses(self):
        cache = InfiniteCache()
        assert cache.lookup(0x0) is AccessResult.MISS
        cache.fill(0x0)
        assert cache.lookup(0x0) is AccessResult.HIT
        assert cache.lookup(0x20) is AccessResult.HIT  # same line

    def test_never_evicts(self):
        cache = InfiniteCache()
        for i in range(1000):
            assert cache.fill(i * 128) == []
        assert cache.resident_lines() == 1000

    def test_drain_dirty_is_empty(self):
        cache = InfiniteCache()
        cache.write_insert(0x0)
        assert cache.drain_dirty() == []

    def test_miss_rate(self):
        cache = InfiniteCache()
        cache.lookup(0x0)
        cache.fill(0x0)
        cache.lookup(0x0)
        assert cache.miss_rate() == 0.5

    def test_mark_dirty(self):
        cache = InfiniteCache()
        assert not cache.mark_dirty(0x0)
        cache.fill(0x0)
        assert cache.mark_dirty(0x0)


class TestStats:
    def test_hit_miss_accounting(self):
        cache = small_cache()
        cache.lookup(0x0)
        cache.fill(0x0)
        cache.lookup(0x0)
        cache.lookup(0x20)
        assert cache.stats.get("accesses") == 3
        assert cache.stats.get("misses") == 2
        assert cache.stats.get("hits") == 1
        assert cache.stats.get("sector_misses") == 1
        assert cache.miss_rate() == pytest.approx(2 / 3)
