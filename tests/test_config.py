"""Configuration defaults (Tables I and III) and validation."""

import pytest

from repro.common.config import (
    CacheConfig,
    DramConfig,
    EncryptionMode,
    GpuConfig,
    IntegrityMode,
    MetadataCacheConfig,
    SecureMemoryConfig,
)


class TestTable1Defaults:
    def test_sm_count(self):
        assert GpuConfig().num_sms == 80

    def test_partition_count(self):
        assert GpuConfig().num_partitions == 32

    def test_core_clock(self):
        assert GpuConfig().core_clock_mhz == 1132

    def test_dram_clock(self):
        assert GpuConfig().dram_clock_mhz == 850

    def test_l2_total_is_6mb(self):
        assert GpuConfig().l2_total_bytes == 6 * 1024 * 1024

    def test_l2_partition_share(self):
        # 2 banks x 96KB per partition
        assert GpuConfig().l2_partition_bytes == 192 * 1024

    def test_total_bandwidth(self):
        assert GpuConfig().total_bandwidth_gbps == pytest.approx(868.0)

    def test_l1_size(self):
        assert GpuConfig().l1_config.size_bytes == 32 * 1024

    def test_paper_baseline_is_default(self):
        assert GpuConfig.paper_baseline() == GpuConfig()


class TestScaledConfig:
    def test_preserves_sm_partition_ratio(self):
        config = GpuConfig.scaled(num_partitions=8)
        assert config.num_sms / config.num_partitions == pytest.approx(80 / 32)

    def test_preserves_per_partition_bandwidth(self):
        scaled = GpuConfig.scaled(num_partitions=4)
        assert scaled.dram.bandwidth_gbps == GpuConfig().dram.bandwidth_gbps

    def test_preserves_per_partition_l2(self):
        scaled = GpuConfig.scaled(num_partitions=4)
        assert scaled.l2_partition_bytes == GpuConfig().l2_partition_bytes

    def test_total_l2_scales(self):
        assert GpuConfig.scaled(num_partitions=8).l2_total_bytes == (
            GpuConfig().l2_total_bytes * 8 // 32
        )

    def test_warps_override(self):
        assert GpuConfig.scaled(num_partitions=2, warps_per_sm=7).max_warps_per_sm == 7

    def test_secure_passthrough(self):
        secure = SecureMemoryConfig()
        assert GpuConfig.scaled(num_partitions=2, secure=secure).secure is secure


class TestCacheConfig:
    def test_derived_counts(self):
        config = CacheConfig(size_bytes=4096, line_bytes=128, associativity=8)
        assert config.num_lines == 32
        assert config.num_sets == 4

    def test_sectored_sector_count(self):
        config = CacheConfig(size_bytes=4096, sectored=True)
        assert config.sectors_per_line == 4

    def test_non_sectored_sector_count(self):
        assert CacheConfig(size_bytes=4096).sectors_per_line == 1

    def test_rejects_partial_lines(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100)

    def test_rejects_bad_sector_split(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=4096, sectored=True, sector_bytes=48)


class TestMetadataCacheConfig:
    def test_table3_defaults(self):
        config = MetadataCacheConfig()
        assert config.size_bytes == 2 * 1024
        assert config.num_mshrs == 64

    def test_to_cache_config_allocate_on_fill(self):
        assert MetadataCacheConfig().to_cache_config().allocate_on_fill

    def test_to_cache_config_not_sectored(self):
        assert not MetadataCacheConfig().to_cache_config().sectored

    def test_tiny_cache_keeps_valid_geometry(self):
        config = MetadataCacheConfig(size_bytes=256).to_cache_config()
        assert config.num_sets >= 1


class TestDramConfig:
    def test_per_partition_bandwidth(self):
        assert DramConfig().bandwidth_gbps == pytest.approx(868 / 32)

    def test_bytes_per_core_cycle(self):
        dram = DramConfig(bandwidth_gbps=27.125)
        # 27.125 GB/s at 1132 MHz ~ 23.96 B/cycle
        assert dram.bytes_per_core_cycle(1132) == pytest.approx(23.96, abs=0.05)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            DramConfig(efficiency=0.0)
        with pytest.raises(ValueError):
            DramConfig(efficiency=1.5)


class TestSecureMemoryConfig:
    def test_disabled_by_default_on_gpu(self):
        assert not GpuConfig().secure.enabled

    def test_counter_mode_uses_counters(self):
        config = SecureMemoryConfig(encryption=EncryptionMode.COUNTER)
        assert config.uses_counters

    def test_direct_mode_has_no_counters(self):
        config = SecureMemoryConfig(encryption=EncryptionMode.DIRECT)
        assert not config.uses_counters

    @pytest.mark.parametrize(
        "integrity,expected",
        [
            (IntegrityMode.NONE, False),
            (IntegrityMode.BMT, False),
            (IntegrityMode.MAC, True),
            (IntegrityMode.MAC_TREE, True),
        ],
    )
    def test_uses_macs(self, integrity, expected):
        config = SecureMemoryConfig(integrity=integrity)
        assert config.uses_macs is expected

    def test_counter_mode_bmt_counts_as_tree(self):
        config = SecureMemoryConfig(
            encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.BMT
        )
        assert config.uses_tree

    def test_direct_mac_has_no_tree(self):
        config = SecureMemoryConfig(
            encryption=EncryptionMode.DIRECT, integrity=IntegrityMode.MAC
        )
        assert not config.uses_tree

    def test_direct_mac_tree_has_tree(self):
        config = SecureMemoryConfig(
            encryption=EncryptionMode.DIRECT, integrity=IntegrityMode.MAC_TREE
        )
        assert config.uses_tree

    def test_with_metadata_cache_size(self):
        config = SecureMemoryConfig().with_metadata_cache_size(8 * 1024)
        assert config.counter_cache.size_bytes == 8 * 1024
        assert config.mac_cache.size_bytes == 8 * 1024
        assert config.tree_cache.size_bytes == 8 * 1024

    def test_with_metadata_mshrs(self):
        config = SecureMemoryConfig().with_metadata_mshrs(7)
        assert config.counter_cache.num_mshrs == 7
        assert config.unified_cache.num_mshrs == 7

    def test_merge_caps_follow_paper(self):
        config = SecureMemoryConfig()
        assert config.counter_cache.mshr_merge_cap == 512
        assert config.mac_cache.mshr_merge_cap == 64
        assert config.tree_cache.mshr_merge_cap == 64


class TestGpuConfigValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ValueError):
            GpuConfig(num_sms=0)

    def test_rejects_bad_interleave(self):
        with pytest.raises(ValueError):
            GpuConfig(partition_interleave_bytes=100)

    def test_l2_cache_config_is_sectored(self):
        assert GpuConfig().l2_cache_config().sectored
