"""Parallel execution subsystem: equivalence, sharded cache, crash safety."""

import json

import pytest

from repro.experiments import designs
from repro.experiments.parallel import (
    ParallelRunner,
    ShardedResultCache,
    _simulate_point,
)
from repro.experiments.runner import Runner, config_key, result_to_dict

HORIZON, WARMUP = 1200, 400
BENCHES = ["nw", "bfs"]


def matrix_points():
    base = designs.build_gpu(None, 2)
    secure = designs.build_gpu(designs.direct(40), 2)
    return [(name, config) for config in (base, secure) for name in BENCHES]


def serial_runner(**kwargs):
    kwargs.setdefault("horizon", HORIZON)
    kwargs.setdefault("warmup", WARMUP)
    kwargs.setdefault("benchmarks", BENCHES)
    return Runner(**kwargs)


def parallel_runner(**kwargs):
    kwargs.setdefault("horizon", HORIZON)
    kwargs.setdefault("warmup", WARMUP)
    kwargs.setdefault("benchmarks", BENCHES)
    return ParallelRunner(**kwargs)


class TestEquivalence:
    def test_jobs2_bit_identical_to_serial(self):
        serial = serial_runner()
        par = parallel_runner(jobs=2)
        par.prefetch(matrix_points())
        for name, config in matrix_points():
            assert result_to_dict(par.run(name, config)) == result_to_dict(
                serial.run(name, config)
            )

    def test_jobs1_takes_serial_in_process_path(self):
        par = parallel_runner(jobs=1)
        assert par.prefetch(matrix_points()) == len(matrix_points())
        serial = serial_runner()
        name, config = matrix_points()[0]
        assert result_to_dict(par.run(name, config)) == result_to_dict(
            serial.run(name, config)
        )

    def test_worker_matches_runner_miss_path(self):
        name, config = matrix_points()[0]
        payload = _simulate_point(name, config, HORIZON, WARMUP)
        # the worker's wall time rides back out-of-band and is popped
        # before the payload reaches the cache; the result itself is
        # bit-identical to the serial miss path.
        assert payload.pop("_elapsed_s") >= 0.0
        assert payload == result_to_dict(serial_runner().run(name, config))


class TestPrefetch:
    def test_dedups_and_counts(self):
        par = parallel_runner(jobs=1)
        points = matrix_points()
        assert par.prefetch(points + points) == len(points)
        # everything resident: nothing new simulated, plan counts hits.
        assert par.prefetch(points) == 0
        assert par.stats.points_simulated == len(points)
        assert par.stats.memory_hits >= len(points)

    def test_serial_runner_prefetch_hook(self):
        runner = serial_runner()
        assert runner.prefetch(matrix_points()) == len(matrix_points())
        assert runner.prefetch(matrix_points()) == 0

    def test_run_after_prefetch_hits_memory(self):
        par = parallel_runner(jobs=1)
        par.prefetch(matrix_points())
        before = par.stats.points_simulated
        for name, config in matrix_points():
            par.run(name, config)
        assert par.stats.points_simulated == before


class TestShardedCache:
    def payload(self, n):
        return {"workload": f"w{n}", "ipc": float(n)}

    def test_round_trip_and_reload(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "cache")
        for n in range(40):
            cache.put(f"key-{n}", self.payload(n))
        reloaded = ShardedResultCache(tmp_path / "cache")
        assert len(reloaded) == 40
        for n in range(40):
            assert reloaded.get(f"key-{n}") == self.payload(n)

    def test_spreads_over_shards(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "cache")
        for n in range(64):
            cache.put(f"key-{n}", self.payload(n))
        shards = list((tmp_path / "cache").glob("shard-*.jsonl"))
        assert len(shards) > 1

    def test_overwrite_then_compact(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "cache")
        cache.put("key", self.payload(1))
        cache.put("key", self.payload(2))
        cache.compact()
        reloaded = ShardedResultCache(tmp_path / "cache")
        assert len(reloaded) == 1
        assert reloaded.get("key") == self.payload(2)
        # compacted shard holds exactly one line per live key.
        shard = next((tmp_path / "cache").glob("shard-*.jsonl"))
        assert len(shard.read_text().splitlines()) == 1

    def test_torn_final_line_is_recovered(self, tmp_path):
        cache = ShardedResultCache(tmp_path / "cache", num_shards=1)
        for n in range(5):
            cache.put(f"key-{n}", self.payload(n))
        shard = tmp_path / "cache" / "shard-00.jsonl"
        # chop the file mid-way through the last record, as a kill would.
        text = shard.read_text()
        shard.write_text(text[: len(text) - 7])
        reloaded = ShardedResultCache(tmp_path / "cache", num_shards=1)
        assert len(reloaded) == 4
        for n in range(4):
            assert reloaded.get(f"key-{n}") == self.payload(n)

    def test_garbage_shard_is_skipped_not_fatal(self, tmp_path):
        directory = tmp_path / "cache"
        directory.mkdir()
        (directory / "shard-00.jsonl").write_text("not json at all\n{]\n")
        cache = ShardedResultCache(directory, num_shards=1)
        assert len(cache) == 0
        cache.put("key", self.payload(1))
        assert ShardedResultCache(directory, num_shards=1).get("key") == self.payload(1)

    def test_legacy_single_file_imported(self, tmp_path):
        legacy = tmp_path / "cache.json"
        legacy.write_text(json.dumps({"old-key": self.payload(7)}))
        cache = ShardedResultCache(legacy)
        assert cache.get("old-key") == self.payload(7)
        cache.put("new-key", self.payload(8))
        assert (tmp_path / "cache.json.d").is_dir()
        # the legacy file is untouched and both keys survive a reload.
        assert json.loads(legacy.read_text()) == {"old-key": self.payload(7)}
        reloaded = ShardedResultCache(legacy)
        assert reloaded.get("old-key") == self.payload(7)
        assert reloaded.get("new-key") == self.payload(8)


class TestCrashSafety:
    def test_mid_run_kill_resumes_from_completed_points(self, tmp_path):
        points = matrix_points()
        first = parallel_runner(jobs=1, cache_path=tmp_path / "cache")
        first.prefetch(points)
        # no close()/compact(): simulates a killed run — appends are
        # already durable, so a fresh runner resumes from disk.
        fresh = parallel_runner(jobs=1, cache_path=tmp_path / "cache")
        assert fresh.prefetch(points) == 0
        assert fresh.stats.disk_hits == len(points)
        assert fresh.stats.points_simulated == 0

    def test_partial_shard_only_recomputes_lost_point(self, tmp_path):
        points = matrix_points()
        first = parallel_runner(jobs=1, cache_path=tmp_path / "cache")
        first.prefetch(points)
        shards = sorted((tmp_path / "cache").glob("shard-*.jsonl"))
        # tear the tail of one shard: at most that one record is lost.
        victim = shards[0]
        victim.write_text(victim.read_text()[:-10])
        fresh = parallel_runner(jobs=1, cache_path=tmp_path / "cache")
        assert fresh.prefetch(points) <= 1
        for name, config in points:
            fresh.run(name, config)  # still fully usable

    def test_close_compacts_shards(self, tmp_path):
        runner = parallel_runner(jobs=1, cache_path=tmp_path / "cache")
        runner.prefetch(matrix_points())
        runner.close()
        reloaded = parallel_runner(jobs=1, cache_path=tmp_path / "cache")
        assert reloaded.prefetch(matrix_points()) == 0


class TestSerialRunnerCacheHardening:
    def test_corrupt_cache_warns_and_starts_fresh(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{truncated")
        with pytest.warns(RuntimeWarning, match="corrupt result cache"):
            runner = serial_runner(cache_path=path)
        result = runner.run(*matrix_points()[0])
        assert result.ipc > 0

    def test_non_object_cache_warns(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("[1, 2, 3]")
        with pytest.warns(RuntimeWarning):
            serial_runner(cache_path=path)

    def test_batched_flush_is_atomic_and_on_close(self, tmp_path):
        path = tmp_path / "cache.json"
        with serial_runner(cache_path=path, flush_every=100) as runner:
            runner.run(*matrix_points()[0])
            assert not path.exists()  # batched: not rewritten per point
        assert path.exists()  # context-manager close flushed
        assert not path.with_name(path.name + ".tmp").exists()
        assert json.loads(path.read_text())

    def test_flush_every_triggers_write(self, tmp_path):
        path = tmp_path / "cache.json"
        runner = serial_runner(cache_path=path, flush_every=2)
        runner.run(*matrix_points()[0])
        assert not path.exists()
        runner.run(*matrix_points()[1])
        assert path.exists()


class TestStats:
    def test_throughput_accounting(self):
        par = parallel_runner(jobs=1)
        par.prefetch(matrix_points())
        stats = par.stats
        assert stats.points_simulated == len(matrix_points())
        assert stats.points_per_second > 0
        assert set(stats.phase_seconds) == {"plan", "simulate", "merge"}
        exported = stats.to_dict()
        assert exported["points_simulated"] == len(matrix_points())
        assert json.dumps(exported)  # JSON-exportable
        assert "points/s" in stats.summary()

    def test_config_key_memoized(self):
        config = designs.build_gpu(None, 2)
        assert config_key(config) == config_key(config)
        import dataclasses

        clone = dataclasses.replace(config)
        assert config_key(clone) == config_key(config)
        other = designs.build_gpu(None, 4)
        assert config_key(other) != config_key(config)
