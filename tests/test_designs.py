"""Design-point factories (Tables V and VIII)."""

import pytest

from repro.common import params
from repro.common.config import EncryptionMode, IntegrityMode
from repro.experiments import designs


class TestTable5Designs:
    def test_baseline_is_none(self):
        assert designs.baseline() is None

    def test_secure_mem_is_ctr_mac_bmt(self):
        config = designs.secure_mem()
        assert config.encryption is EncryptionMode.COUNTER
        assert config.integrity is IntegrityMode.MAC_TREE

    def test_secure_mem_default_has_no_mshrs(self):
        assert designs.secure_mem().counter_cache.num_mshrs == 0

    def test_zero_crypto(self):
        assert designs.zero_crypto().zero_crypto_latency

    def test_perfect_mdc(self):
        assert designs.perfect_mdc().perfect_metadata_cache

    def test_large_mdc(self):
        assert designs.large_mdc().infinite_metadata_cache

    def test_mshr_x(self):
        config = designs.mshr_x(32)
        assert config.counter_cache.num_mshrs == 32
        assert config.mac_cache.num_mshrs == 32

    def test_mdc_size(self):
        config = designs.mdc_size(16 * 1024)
        assert config.counter_cache.size_bytes == 16 * 1024
        assert config.counter_cache.num_mshrs == params.DEFAULT_METADATA_MSHRS

    def test_unified_flag(self):
        assert designs.unified().unified_metadata_cache
        assert not designs.separate().unified_metadata_cache

    def test_aes_engines(self):
        assert designs.aes_engines(1).aes_engines == 1
        assert designs.aes_engines(2).aes_engines == 2


class TestTable8Designs:
    def test_ctr_has_no_integrity(self):
        config = designs.ctr()
        assert config.encryption is EncryptionMode.COUNTER
        assert config.integrity is IntegrityMode.NONE
        assert not config.uses_tree
        assert not config.uses_macs

    def test_ctr_bmt(self):
        config = designs.ctr_bmt()
        assert config.integrity is IntegrityMode.BMT
        assert config.uses_tree
        assert not config.uses_macs

    def test_ctr_mac_bmt_equals_separate(self):
        assert designs.ctr_mac_bmt() == designs.separate()

    def test_direct_latency(self):
        assert designs.direct(160).aes_latency == 160
        assert designs.direct().encryption is EncryptionMode.DIRECT

    def test_direct_mac_budget(self):
        config = designs.direct_mac()
        assert config.integrity is IntegrityMode.MAC
        assert config.mac_cache.size_bytes == 6 * 1024

    def test_direct_mac_mt_budget_split(self):
        config = designs.direct_mac_mt()
        assert config.mac_cache.size_bytes == 3 * 1024
        assert config.tree_cache.size_bytes == 3 * 1024
        assert config.uses_tree


class TestGpuAssembly:
    def test_build_gpu_partitions(self):
        config = designs.build_gpu(None, num_partitions=4)
        assert config.num_partitions == 4
        assert not config.secure.enabled

    def test_build_gpu_l2_override(self):
        config = designs.build_gpu(None, num_partitions=2, l2_bank_bytes=64 * 1024)
        assert config.l2_bank_bytes == 64 * 1024

    def test_l2_scaled_gpu_6mb_matches_default(self):
        config = designs.l2_scaled_gpu(None, 6.0, num_partitions=2)
        assert config.l2_bank_bytes == params.PAPER_L2_BANK_SIZE

    def test_l2_scaled_gpu_4mb(self):
        config = designs.l2_scaled_gpu(None, 4.0, num_partitions=2)
        assert config.l2_bank_bytes == pytest.approx(64 * 1024, abs=128)
