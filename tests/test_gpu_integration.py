"""End-to-end simulations: determinism, monotonicity, traffic identities."""

import pytest

from repro import (
    EncryptionMode,
    GpuConfig,
    IntegrityMode,
    MetadataKind,
    SecureMemoryConfig,
    simulate,
)
from repro.experiments import designs
from repro.workloads.suite import get_benchmark

HORIZON = 2500
WARMUP = 1000


def run(secure=None, workload="streamcluster", partitions=2, horizon=HORIZON, **kw):
    config = designs.build_gpu(secure, num_partitions=partitions)
    return simulate(config, get_benchmark(workload), horizon=horizon, **kw)


class TestBasics:
    def test_baseline_reports_progress(self):
        result = run()
        assert result.instructions > 0
        assert result.ipc > 0
        assert result.cycles == HORIZON

    def test_determinism(self):
        a = run(designs.secure_mem(64))
        b = run(designs.secure_mem(64))
        assert a.instructions == b.instructions
        assert a.dram_txn == b.dram_txn

    def test_metadata_trace_capture(self):
        result, trace = run(designs.secure_mem(64), metadata_trace=True)
        assert trace, "expected metadata accesses on partition 0"
        kinds = {kind for kind, _ in trace}
        assert MetadataKind.COUNTER in kinds

    def test_warmup_resets_measurement(self):
        config = designs.build_gpu(None, 2)
        cold = simulate(config, get_benchmark("b+tree"), horizon=2000)
        warm = simulate(config, get_benchmark("b+tree"), horizon=2000, warmup=8000)
        # warm caches -> less DRAM traffic in the measured window
        assert warm.dram_txn["data_read"] < cold.dram_txn["data_read"]


class TestTrafficIdentities:
    def test_baseline_has_no_metadata_traffic(self):
        result = run()
        assert result.dram_txn["ctr"] == 0
        assert result.dram_txn["mac"] == 0
        assert result.dram_txn["bmt"] == 0
        assert result.dram_txn["wb"] == 0

    def test_ctr_only_has_no_mac_or_tree(self):
        result = run(designs.ctr())
        assert result.dram_txn["ctr"] > 0
        assert result.dram_txn["mac"] == 0
        assert result.dram_txn["bmt"] == 0

    def test_ctr_bmt_adds_tree_not_mac(self):
        result = run(designs.ctr_bmt(), workload="bfs")
        assert result.dram_txn["bmt"] > 0
        assert result.dram_txn["mac"] == 0

    def test_direct_has_no_counter_traffic(self):
        result = run(designs.direct_mac_mt())
        assert result.dram_txn["ctr"] == 0
        assert result.dram_txn["mac"] > 0

    def test_traffic_fractions_sum_to_one(self):
        result = run(designs.secure_mem(0))
        assert sum(result.traffic_fractions().values()) == pytest.approx(1.0)

    def test_metadata_fraction_consistency(self):
        result = run(designs.secure_mem(0))
        fractions = result.traffic_fractions()
        assert result.metadata_fraction() == pytest.approx(1 - fractions["data"])


class TestOrderings:
    """Relative orderings the paper establishes (coarse, small windows)."""

    def test_secure_never_beats_baseline(self):
        base = run()
        secure = run(designs.secure_mem(0))
        assert secure.ipc <= base.ipc * 1.02

    def test_mshrs_help_memory_intensive(self):
        no_mshr = run(designs.secure_mem(0))
        with_mshr = run(designs.secure_mem(64))
        assert with_mshr.ipc > no_mshr.ipc

    def test_mshrs_cut_metadata_traffic(self):
        no_mshr = run(designs.secure_mem(0))
        with_mshr = run(designs.secure_mem(64))
        assert with_mshr.dram_txn["ctr"] < no_mshr.dram_txn["ctr"]
        assert with_mshr.dram_txn["mac"] < no_mshr.dram_txn["mac"]

    def test_perfect_mdc_matches_baseline(self):
        base = run()
        perf = run(designs.perfect_mdc(0))
        assert perf.ipc == pytest.approx(base.ipc, rel=0.05)

    def test_direct_beats_ctr_bmt_on_streaming(self):
        direct = run(designs.direct(40))
        ctr_bmt = run(designs.ctr_bmt())
        assert direct.ipc > ctr_bmt.ipc

    def test_direct_latency_monotone(self):
        ipcs = [run(designs.direct(lat), workload="nw").ipc for lat in (40, 160)]
        assert ipcs[1] <= ipcs[0] * 1.02

    def test_non_memory_intensive_barely_affected(self):
        base = run(workload="lavaMD", horizon=4000)
        secure = run(designs.secure_mem(64), workload="lavaMD", horizon=4000)
        assert secure.ipc > 0.9 * base.ipc

    def test_bigger_metadata_cache_no_worse(self):
        small = run(designs.mdc_size(2 * 1024))
        large = run(designs.mdc_size(64 * 1024))
        assert large.ipc >= small.ipc * 0.95


class TestSecondaryMisses:
    def test_streaming_produces_secondary_misses(self):
        result = run(designs.secure_mem(64))
        assert result.secondary_miss_ratio(MetadataKind.COUNTER) > 0.3
        assert result.secondary_miss_ratio(MetadataKind.MAC) > 0.3

    def test_miss_accounting_consistent(self):
        result = run(designs.secure_mem(64))
        for kind in MetadataKind:
            stats = result.metadata[kind]
            assert stats["misses"] == stats["primary_misses"] + stats["secondary_misses"]
            assert stats["hits"] + stats["misses"] == stats["accesses"]


class TestL2:
    def test_streaming_l2_miss_rate_high(self):
        assert run().l2_miss_rate > 0.8

    def test_tiled_l2_behaviour(self):
        # warm the tiles first: lavaMD's reuse shows once tiles are resident
        result = run(workload="lavaMD", horizon=4000, warmup=8000)
        assert result.l2_miss_rate < 0.9
