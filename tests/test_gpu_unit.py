"""Gpu assembly, measurement reset, and result aggregation units."""

import pytest

from repro import GpuConfig, MetadataKind
from repro.experiments import designs
from repro.sim.gpu import Gpu, SimulationResult
from repro.workloads.suite import get_benchmark


def tiny_gpu(secure=None, partitions=2, workload="nw"):
    return Gpu(designs.build_gpu(secure, partitions), get_benchmark(workload))


class TestAssembly:
    def test_partition_and_sm_counts(self):
        gpu = tiny_gpu(partitions=2)
        assert len(gpu.partitions) == 2
        assert len(gpu.sms) == gpu.config.num_sms

    def test_warps_capped_by_config(self):
        config = GpuConfig.scaled(num_partitions=2, warps_per_sm=3)
        gpu = Gpu(config, get_benchmark("srad_v2"))  # spec wants 32
        assert len(gpu.sms[0]._warps) == 3

    def test_layout_is_per_partition_share(self):
        gpu = tiny_gpu(partitions=2)
        expected = gpu.config.secure.protected_bytes // 2
        assert gpu.layout.protected_bytes == expected

    def test_trace_hook_only_on_partition_zero(self):
        seen = []
        gpu = Gpu(
            designs.build_gpu(designs.separate(), 2),
            get_benchmark("nw"),
            metadata_trace_hook=lambda kind, addr: seen.append(addr),
        )
        assert gpu.partitions[0].engine.trace_hook is not None
        assert gpu.partitions[1].engine.trace_hook is None


class TestMeasurementReset:
    def test_reset_zeroes_counters_keeps_cache_state(self):
        gpu = tiny_gpu(workload="b+tree")
        gpu.run(1500)
        resident_before = gpu.partitions[0].l2.resident_lines()
        gpu._reset_measurement()
        assert gpu.partitions[0].l2.stats.get("accesses") == 0
        assert gpu.sms[0].instructions == 0
        assert gpu.partitions[0].dram.channel.busy_cycles == 0.0
        assert gpu.partitions[0].l2.resident_lines() == resident_before

    def test_warmup_window_measures_horizon_only(self):
        gpu = tiny_gpu()
        result = gpu.run(1000, warmup=2000)
        assert result.cycles == 1000
        assert gpu.events.now == pytest.approx(3000)


class TestResultHelpers:
    def test_empty_result_fractions(self):
        result = SimulationResult(
            workload="x",
            cycles=0,
            instructions=0,
            ipc=0.0,
            bandwidth_utilization=0.0,
            dram_txn={k: 0.0 for k in ("data_read", "data_write", "ctr", "mac", "bmt", "wb")},
            l2_accesses=0,
            l2_misses=0,
            metadata={kind: {"accesses": 0.0, "misses": 0.0, "secondary_misses": 0.0}
                      for kind in MetadataKind},
        )
        assert result.l2_miss_rate == 0.0
        assert sum(result.traffic_fractions().values()) == 0.0
        assert result.metadata_miss_rate(MetadataKind.MAC) == 0.0
        assert result.secondary_miss_ratio(MetadataKind.MAC) == 0.0

    def test_aggregation_sums_partitions(self):
        gpu = tiny_gpu(designs.separate(), partitions=2, workload="streamcluster")
        result = gpu.run(1500)
        per_partition = sum(
            p.dram.stats.get("txn_data_read") for p in gpu.partitions
        )
        assert result.dram_txn["data_read"] == per_partition

    def test_instructions_sum_over_sms(self):
        gpu = tiny_gpu()
        result = gpu.run(1200)
        assert result.instructions == sum(sm.instructions for sm in gpu.sms)
