"""ASCII bar rendering."""


from repro.analysis.bars import render_bar, render_bar_chart


class TestRenderBar:
    def test_full_bar(self):
        assert render_bar(1.0, 1.0, width=10) == "#" * 10

    def test_half_bar(self):
        bar = render_bar(0.5, 1.0, width=10)
        assert bar.count("#") == 5
        assert len(bar) == 10

    def test_zero(self):
        assert render_bar(0.0, 1.0, width=8).count("#") == 0

    def test_clamps_above_peak(self):
        assert render_bar(5.0, 1.0, width=8) == "#" * 8

    def test_zero_peak(self):
        assert render_bar(1.0, 0.0, width=8).count("#") == 0

    def test_negative_clamped(self):
        assert render_bar(-1.0, 1.0, width=8).count("#") == 0


class TestRenderBarChart:
    def test_rows_and_columns_rendered(self):
        chart = render_bar_chart({"fdtd2d": {"a": 0.1, "b": 1.0}})
        assert "fdtd2d" in chart
        assert "a" in chart and "b" in chart
        assert "|" in chart

    def test_peak_scaling(self):
        chart = render_bar_chart({"r": {"c": 0.5}}, peak=1.0, width=10)
        assert chart.count("#") == 5

    def test_autoscale_to_max(self):
        chart = render_bar_chart({"r": {"lo": 1.0, "hi": 2.0}}, width=10)
        lines = [l for l in chart.splitlines() if "|" in l]
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_empty(self):
        assert render_bar_chart({}) == "(empty)"

    def test_row_label_only_on_first_line(self):
        chart = render_bar_chart({"bench": {"a": 1.0, "b": 1.0}})
        lines = [l for l in chart.splitlines() if "|" in l]
        assert lines[0].startswith("bench")
        assert not lines[1].startswith("bench")
