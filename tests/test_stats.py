"""StatGroup counter/hierarchy behaviour."""

from repro.common.stats import StatGroup


class TestCounters:
    def test_absent_counter_reads_zero(self):
        assert StatGroup("x").get("nothing") == 0.0

    def test_add_accumulates(self):
        group = StatGroup("x")
        group.add("hits")
        group.add("hits", 2)
        assert group.get("hits") == 3

    def test_set_overwrites(self):
        group = StatGroup("x")
        group.add("v", 10)
        group.set("v", 2)
        assert group["v"] == 2

    def test_counters_snapshot_is_copy(self):
        group = StatGroup("x")
        group.add("a")
        snapshot = group.counters()
        snapshot["a"] = 99
        assert group.get("a") == 1


class TestHierarchy:
    def test_child_is_memoized(self):
        group = StatGroup("root")
        assert group.child("a") is group.child("a")

    def test_total_sums_subtree(self):
        root = StatGroup("root")
        root.add("n", 1)
        root.child("a").add("n", 2)
        root.child("a").child("b").add("n", 4)
        assert root.total("n") == 7

    def test_walk_yields_paths(self):
        root = StatGroup("root")
        root.child("a").add("x", 1)
        entries = list(root.walk())
        assert ("root.a", "x", 1.0) in entries

    def test_merge_from(self):
        left, right = StatGroup("s"), StatGroup("s")
        left.add("n", 1)
        right.add("n", 2)
        right.child("c").add("m", 5)
        left.merge_from(right)
        assert left.get("n") == 3
        assert left.child("c").get("m") == 5

    def test_reset_clears_recursively(self):
        root = StatGroup("root")
        root.add("n", 3)
        root.child("a").add("m", 4)
        root.reset()
        assert root.get("n") == 0
        assert root.child("a").get("m") == 0

    def test_render_contains_values(self):
        root = StatGroup("root")
        root.add("hits", 2)
        assert "root.hits = 2" in root.render()
