"""StatGroup counter/hierarchy behaviour."""

from repro.common.stats import StatGroup


class TestCounters:
    def test_absent_counter_reads_zero(self):
        assert StatGroup("x").get("nothing") == 0.0

    def test_add_accumulates(self):
        group = StatGroup("x")
        group.add("hits")
        group.add("hits", 2)
        assert group.get("hits") == 3

    def test_set_overwrites(self):
        group = StatGroup("x")
        group.add("v", 10)
        group.set("v", 2)
        assert group["v"] == 2

    def test_counters_snapshot_is_copy(self):
        group = StatGroup("x")
        group.add("a")
        snapshot = group.counters()
        snapshot["a"] = 99
        assert group.get("a") == 1


class TestHierarchy:
    def test_child_is_memoized(self):
        group = StatGroup("root")
        assert group.child("a") is group.child("a")

    def test_total_sums_subtree(self):
        root = StatGroup("root")
        root.add("n", 1)
        root.child("a").add("n", 2)
        root.child("a").child("b").add("n", 4)
        assert root.total("n") == 7

    def test_walk_yields_paths(self):
        root = StatGroup("root")
        root.child("a").add("x", 1)
        entries = list(root.walk())
        assert ("root.a", "x", 1.0) in entries

    def test_merge_from(self):
        left, right = StatGroup("s"), StatGroup("s")
        left.add("n", 1)
        right.add("n", 2)
        right.child("c").add("m", 5)
        left.merge_from(right)
        assert left.get("n") == 3
        assert left.child("c").get("m") == 5

    def test_reset_clears_recursively(self):
        root = StatGroup("root")
        root.add("n", 3)
        root.child("a").add("m", 4)
        root.reset()
        assert root.get("n") == 0
        assert root.child("a").get("m") == 0

    def test_render_contains_values(self):
        root = StatGroup("root")
        root.add("hits", 2)
        assert "root.hits = 2" in root.render()


class TestSerialization:
    def test_to_dict_round_trip(self):
        root = StatGroup("gpu")
        root.add("cycles", 100)
        root.child("p1").add("hits", 3)
        root.child("p0").child("dram").add("bytes_total", 64)
        restored = StatGroup.from_dict(root.to_dict())
        assert restored.to_dict() == root.to_dict()
        assert restored.child("p0").child("dram").get("bytes_total") == 64

    def test_to_dict_sorts_keys(self):
        root = StatGroup("gpu")
        root.add("z", 1)
        root.add("a", 2)
        root.child("zeta")
        root.child("alpha")
        tree = root.to_dict()
        assert list(tree["counters"]) == ["a", "z"]
        assert list(tree["children"]) == ["alpha", "zeta"]

    def test_merge_order_does_not_change_serialization(self):
        def shard(names):
            group = StatGroup("gpu")
            for name in names:
                group.child(name).add("n", 1)
            return group

        forward, backward = StatGroup("gpu"), StatGroup("gpu")
        forward.merge_from(shard(["a", "b"]))
        forward.merge_from(shard(["c", "d"]))
        backward.merge_from(shard(["c", "d"]))
        backward.merge_from(shard(["a", "b"]))
        assert forward.to_dict() == backward.to_dict()
        assert list(forward._children) == ["a", "b", "c", "d"]

    def test_round_trip_preserves_merge_normalization(self):
        # Regression: a tree rebuilt by from_dict must keep behaving like
        # the original under merge_from — sorted children at every level
        # and histogram-style bucket counters that keep accumulating —
        # so a cache-restored shard merges identically to a live one.
        def shard(child_name, buckets):
            group = StatGroup("gpu")
            hist = group.child(child_name).child("latency_hist")
            for bucket, count in buckets.items():
                hist.add(f"bucket_{bucket}", count)
            return group

        live = StatGroup("gpu")
        live.merge_from(shard("p1", {3: 2, 0: 1}))
        restored = StatGroup.from_dict(live.to_dict())
        assert restored.to_dict() == live.to_dict()

        # merging *after* the round trip must match merging before it.
        extra = shard("p0", {3: 5, 7: 1})
        live.merge_from(extra)
        restored.merge_from(extra)
        assert restored.to_dict() == live.to_dict()
        assert list(restored._children) == ["p0", "p1"]
        hist = restored.child("p0").child("latency_hist")
        assert hist.get("bucket_3") == 5
        # values come back as floats and keep accumulating.
        hist.add("bucket_3", 1)
        assert hist.get("bucket_3") == 6.0
