"""EventQueue: ordering, horizons, stop conditions."""

import pytest

from repro.sim.event import EventQueue


class TestScheduling:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(5, seen.append, "b")
        queue.schedule_at(1, seen.append, "a")
        queue.schedule_at(9, seen.append, "c")
        queue.run()
        assert seen == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(3, seen.append, 1)
        queue.schedule_at(3, seen.append, 2)
        queue.schedule_at(3, seen.append, 3)
        queue.run()
        assert seen == [1, 2, 3]

    def test_relative_schedule_uses_now(self):
        queue = EventQueue()
        times = []
        queue.schedule_at(10, lambda: queue.schedule(5, lambda: times.append(queue.now)))
        queue.run()
        assert times == [15]

    def test_rejects_past_events(self):
        queue = EventQueue()
        queue.schedule_at(10, lambda: None)
        queue.run()
        with pytest.raises(ValueError):
            queue.schedule_at(5, lambda: None)

    def test_now_advances_with_events(self):
        queue = EventQueue()
        observed = []
        queue.schedule_at(7, lambda: observed.append(queue.now))
        queue.run()
        assert observed == [7]


class TestRunControl:
    def test_until_stops_before_later_events(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(5, seen.append, "early")
        queue.schedule_at(50, seen.append, "late")
        queue.run(until=10)
        assert seen == ["early"]
        assert queue.now == 10
        assert not queue.empty()

    def test_until_advances_clock_when_queue_drains(self):
        queue = EventQueue()
        queue.schedule_at(2, lambda: None)
        queue.run(until=100)
        assert queue.now == 100

    def test_resume_after_until(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(50, seen.append, "late")
        queue.run(until=10)
        queue.run(until=100)
        assert seen == ["late"]

    def test_stop_halts_immediately(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(1, lambda: (seen.append("a"), queue.stop()))
        queue.schedule_at(2, seen.append, "b")
        queue.run()
        assert seen == ["a"]

    def test_max_events(self):
        queue = EventQueue()
        seen = []
        for t in range(5):
            queue.schedule_at(t, seen.append, t)
        processed = queue.run(max_events=3)
        assert processed == 3
        assert seen == [0, 1, 2]

    def test_run_returns_event_count(self):
        queue = EventQueue()
        for t in range(4):
            queue.schedule_at(t, lambda: None)
        assert queue.run() == 4

    def test_events_can_spawn_events(self):
        queue = EventQueue()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 4:
                queue.schedule(1, chain, n + 1)

        queue.schedule_at(0, chain, 0)
        queue.run()
        assert seen == [0, 1, 2, 3, 4]


class TestOccupiedHeapCompaction:
    """The idle fast-forward's lazy occupied-cycle heap stays bounded."""

    def test_stale_entries_are_compacted(self):
        queue = EventQueue()
        seen = []
        # one real pending event, far enough out that _advance has to jump.
        queue.schedule_at(900.0, seen.append, "real")
        # manufacture a large stale backlog: cycles that were once occupied
        # but whose buckets have since drained (lazy deletion leaves their
        # heap entries behind until the front reaches them).
        import heapq

        for cycle in range(100, 800):
            heapq.heappush(queue._occupied, cycle)
        assert len(queue._occupied) > 2 * queue._near
        queue.run()
        assert seen == ["real"]
        # compaction ran during _advance: only entries for genuinely
        # occupied (or already-drained-and-popped) cycles may remain, and
        # the heap obeys the lazy-deletion bound.
        assert len(queue._occupied) <= max(64, 2 * queue._near)

    def test_compaction_preserves_firing_order(self):
        queue = EventQueue()
        seen = []
        for t in (50.0, 700.0, 1200.0, 4100.0):
            queue.schedule_at(t, seen.append, t)
        import heapq

        for cycle in range(60, 600):
            heapq.heappush(queue._occupied, cycle)
        queue.run()
        assert seen == [50.0, 700.0, 1200.0, 4100.0]
        assert len(queue._occupied) <= max(64, 2 * queue._near)
