"""DRAM channel: latency, occupancy, categories, efficiency."""

import pytest

from repro.common.config import DramConfig
from repro.sim.dram import (
    ALL_CATEGORIES,
    CAT_COUNTER,
    CAT_DATA_READ,
    CAT_DATA_WRITE,
    DramChannel,
)


def channel(bandwidth_gbps=27.125, latency=200, efficiency=1.0) -> DramChannel:
    return DramChannel(
        DramConfig(
            bandwidth_gbps=bandwidth_gbps,
            access_latency=latency,
            efficiency=efficiency,
        ),
        core_clock_mhz=1000.0,
    )


class TestReadTiming:
    def test_read_latency_includes_fixed_component(self):
        dram = channel(latency=200)
        ready = dram.read(0.0, 32, CAT_DATA_READ)
        transfer = 32 / dram.bytes_per_cycle
        assert ready == pytest.approx(200 + transfer)

    def test_reads_queue_behind_each_other(self):
        dram = channel(latency=100)
        first = dram.read(0.0, 32, CAT_DATA_READ)
        second = dram.read(0.0, 32, CAT_DATA_READ)
        assert second == pytest.approx(first + 32 / dram.bytes_per_cycle)

    def test_bigger_transfers_occupy_longer(self):
        dram = channel()
        dram.read(0.0, 128, CAT_COUNTER)
        assert dram.backlog(0.0) == pytest.approx(128 / dram.bytes_per_cycle)


class TestWriteTiming:
    def test_write_returns_channel_acceptance(self):
        dram = channel(latency=500)
        done = dram.write(0.0, 32, CAT_DATA_WRITE)
        # no fixed latency for the requester, just occupancy
        assert done == pytest.approx(32 / dram.bytes_per_cycle)

    def test_writes_delay_later_reads(self):
        dram = channel(latency=0)
        dram.write(0.0, 128, CAT_DATA_WRITE)
        ready = dram.read(0.0, 32, CAT_DATA_READ)
        assert ready == pytest.approx(160 / dram.bytes_per_cycle)


class TestAccounting:
    def test_transactions_are_32b_granules(self):
        dram = channel()
        dram.read(0.0, 128, CAT_COUNTER)
        dram.read(0.0, 32, CAT_DATA_READ)
        assert dram.stats.get("txn_ctr") == 4
        assert dram.stats.get("txn_data_read") == 1
        assert dram.stats.get("txn_total") == 5

    def test_bytes_accounting(self):
        dram = channel()
        dram.read(0.0, 128, CAT_COUNTER)
        dram.write(0.0, 32, CAT_DATA_WRITE)
        assert dram.stats.get("bytes_total") == 160

    def test_traffic_breakdown_has_all_categories(self):
        dram = channel()
        dram.read(0.0, 32, CAT_DATA_READ)
        breakdown = dram.traffic_breakdown()
        assert set(breakdown) == set(ALL_CATEGORIES)
        assert breakdown["data_read"] == 1
        assert breakdown["mac"] == 0


class TestEfficiency:
    def test_efficiency_slows_service(self):
        fast = channel(efficiency=1.0)
        slow = channel(efficiency=0.5)
        assert slow.bytes_per_cycle == pytest.approx(fast.bytes_per_cycle * 0.5)

    def test_utilization_reports_achieved_over_peak(self):
        dram = channel(efficiency=0.8)
        # saturate: queue enough work for 100 cycles
        target_bytes = int(dram.bytes_per_cycle * 100)
        dram.write(0.0, target_bytes, CAT_DATA_WRITE)
        assert dram.utilization(100.0) == pytest.approx(0.8)

    def test_idle_utilization_is_zero(self):
        assert channel().utilization(1000.0) == 0.0


class TestValidation:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            DramChannel(DramConfig(bandwidth_gbps=0.0), core_clock_mhz=1000.0)
