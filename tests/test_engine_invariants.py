"""Property-based invariants of the secure engine under random access mixes.

These drive randomized read/write sequences through a bare engine and
check conservation laws that must hold for any input: accounting
consistency, traffic arithmetic, and mode-specific absences.
"""


from hypothesis import given, settings, strategies as st

from repro.common.config import (
    EncryptionMode,
    GpuConfig,
    IntegrityMode,
    MetadataKind,
    SecureMemoryConfig,
)
from repro.common.stats import StatGroup
from repro.secure.engine import SecureEngine
from repro.secure.layout import MetadataLayout
from repro.sim.dram import DramChannel
from repro.sim.event import EventQueue

MB = 1024 * 1024

#: (is_write, line_index, sector_index) operations
ops_strategy = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=4000),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=120,
)

mode_strategy = st.sampled_from(
    [
        (EncryptionMode.COUNTER, IntegrityMode.MAC_TREE, 64),
        (EncryptionMode.COUNTER, IntegrityMode.MAC_TREE, 0),
        (EncryptionMode.COUNTER, IntegrityMode.BMT, 64),
        (EncryptionMode.COUNTER, IntegrityMode.NONE, 64),
        (EncryptionMode.DIRECT, IntegrityMode.MAC, 64),
        (EncryptionMode.DIRECT, IntegrityMode.MAC_TREE, 64),
    ]
)


def run_engine(ops, encryption, integrity, mshrs):
    secure = SecureMemoryConfig(
        encryption=encryption, integrity=integrity
    ).with_metadata_mshrs(mshrs)
    gpu = GpuConfig.scaled(num_partitions=1, secure=secure)
    events = EventQueue()
    dram = DramChannel(gpu.dram, gpu.core_clock_mhz, StatGroup("dram"))
    engine = SecureEngine(secure, gpu, dram, events, MetadataLayout(16 * MB), StatGroup("s"))
    now = 0.0
    for is_write, line, sector in ops:
        addr = line * 128 + sector * 32
        if is_write:
            engine.write_sector(now, addr)
        else:
            engine.read_sector(now, addr)
        now += 3.0
        events.run(until=now)
    events.run()
    return engine, dram


class TestConservation:
    @given(ops_strategy, mode_strategy)
    @settings(max_examples=25, deadline=None)
    def test_metadata_accounting_identities(self, ops, mode):
        engine, dram = run_engine(ops, *mode)
        for kind in MetadataKind:
            stats = engine.kind_stats(kind)
            assert stats.get("hits") + stats.get("misses") == stats.get("accesses")
            assert stats.get("primary_misses") + stats.get("secondary_misses") == (
                stats.get("misses")
            )
            assert stats.get("merged") + stats.get("duplicate_fetches") <= (
                stats.get("secondary_misses")
            ) or stats.get("secondary_misses") == stats.get("merged") + stats.get(
                "duplicate_fetches"
            )
            # every fill corresponds to one primary miss (fills may lag)
            assert stats.get("fills") <= stats.get("primary_misses")

    @given(ops_strategy, mode_strategy)
    @settings(max_examples=25, deadline=None)
    def test_traffic_arithmetic(self, ops, mode):
        engine, dram = run_engine(ops, *mode)
        reads = sum(1 for w, _, _ in ops if not w)
        writes = len(ops) - reads
        assert dram.stats.get("txn_data_read") >= reads  # overflow adds more
        assert dram.stats.get("txn_data_write") >= writes
        for kind, category in (
            (MetadataKind.COUNTER, "ctr"),
            (MetadataKind.MAC, "mac"),
            (MetadataKind.TREE, "bmt"),
        ):
            stats = engine.kind_stats(kind)
            fetches = stats.get("primary_misses") + stats.get("duplicate_fetches")
            assert dram.stats.get(f"txn_{category}") == 4 * fetches

    @given(ops_strategy, mode_strategy)
    @settings(max_examples=15, deadline=None)
    def test_mode_specific_absences(self, ops, mode):
        encryption, integrity, _ = mode
        engine, dram = run_engine(ops, *mode)
        if encryption is EncryptionMode.DIRECT:
            assert dram.stats.get("txn_ctr") == 0
        if integrity is IntegrityMode.NONE:
            assert dram.stats.get("txn_mac") == 0
            assert dram.stats.get("txn_bmt") == 0
        if integrity is IntegrityMode.BMT:
            assert dram.stats.get("txn_mac") == 0

    @given(ops_strategy)
    @settings(max_examples=15, deadline=None)
    def test_mshrs_never_increase_traffic(self, ops):
        _, without = run_engine(ops, EncryptionMode.COUNTER, IntegrityMode.MAC_TREE, 0)
        _, with_mshrs = run_engine(ops, EncryptionMode.COUNTER, IntegrityMode.MAC_TREE, 64)
        assert with_mshrs.stats.get("txn_ctr") <= without.stats.get("txn_ctr")
        assert with_mshrs.stats.get("txn_mac") <= without.stats.get("txn_mac")

    @given(ops_strategy)
    @settings(max_examples=10, deadline=None)
    def test_read_times_nondecreasing_in_integrity(self, ops):
        """Adding protection never makes an individual read earlier... at
        least in aggregate: total DRAM traffic grows with protection."""
        _, none = run_engine(ops, EncryptionMode.COUNTER, IntegrityMode.NONE, 64)
        _, full = run_engine(ops, EncryptionMode.COUNTER, IntegrityMode.MAC_TREE, 64)
        assert full.stats.get("txn_total") >= none.stats.get("txn_total")
