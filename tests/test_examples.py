"""Examples are part of the public API surface: run them (scaled down)."""

import importlib.util
import sys
from pathlib import Path

import pytest


EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def shrink(module, monkeypatch, horizon=1200, warmup=800):
    for attr, value in (("HORIZON", horizon), ("WARMUP", warmup), ("PARTITIONS", 2)):
        if hasattr(module, attr):
            monkeypatch.setattr(module, attr, value)


class TestQuickstart:
    def test_runs_and_reports(self, monkeypatch, capsys):
        module = load_example("quickstart")
        shrink(module, monkeypatch)
        monkeypatch.setattr(sys, "argv", ["quickstart.py", "nw"])
        module.main()
        out = capsys.readouterr().out
        assert "baseline IPC" in out
        assert "normalized IPC" in out
        assert "DRAM traffic breakdown" in out


class TestDesignSpace:
    def test_ranks_designs(self, monkeypatch, capsys):
        module = load_example("design_space")
        shrink(module, monkeypatch)
        # trim the matrix for test speed
        keep = {"baseline", "direct_40", "secureMem + 64 MSHRs"}
        monkeypatch.setattr(
            module,
            "DESIGN_POINTS",
            {k: v for k, v in module.DESIGN_POINTS.items() if k in keep},
        )
        monkeypatch.setattr(sys, "argv", ["design_space.py", "nw"])
        module.main()
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "direct_40" in out


class TestMetadataCacheStudy:
    def test_three_sections(self, monkeypatch, capsys):
        module = load_example("metadata_cache_study")
        shrink(module, monkeypatch)
        monkeypatch.setattr(sys, "argv", ["metadata_cache_study.py", "streamcluster"])
        module.main()
        out = capsys.readouterr().out
        assert "why MSHRs matter" in out
        assert "separate vs unified" in out


class TestAttackDemo:
    @pytest.mark.slow
    def test_attack_narrative(self, capsys):
        module = load_example("attack_demo")
        module.main()
        out = capsys.readouterr().out
        assert "DETECTED" in out
        assert "replay DETECTED" in out
        assert "replay SUCCEEDED" in out  # direct_mac cannot stop replay


class TestCustomWorkload:
    def test_gemm_like_example(self, monkeypatch, capsys):
        module = load_example("custom_workload")
        monkeypatch.setattr(module, "main", module.main)

        # shrink inline: patch simulate windows through module constants is
        # not possible (literals), so just run the generator contract checks
        from repro.workloads.base import WorkloadSpec

        spec = WorkloadSpec(
            name="gemm_like",
            category="medium",
            trace_factory=module.gemm_like,
            warps_per_sm=4,
            working_set=3 * 1024 * 1024,
        )
        import itertools

        ops = list(itertools.islice(spec.warp_trace(0, 1, 2, 4), 200))
        assert any(op.is_write for op in ops)
        assert any(not op.is_write for op in ops)
        for op in ops:
            for addr in op.mem_addrs:
                assert 0 <= addr < spec.working_set
                assert addr % 32 == 0
