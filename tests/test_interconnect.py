"""Crossbar routing and latency."""


from repro.common.config import GpuConfig
from repro.common.stats import StatGroup
from repro.secure.layout import MetadataLayout
from repro.sim.event import EventQueue
from repro.sim.interconnect import Crossbar
from repro.sim.partition import MemoryPartition


def make_crossbar(num_partitions=4):
    config = GpuConfig.scaled(num_partitions=num_partitions)
    events = EventQueue()
    layout = MetadataLayout(16 * 1024 * 1024)
    partitions = [
        MemoryPartition(i, config, events, layout, StatGroup(f"p{i}"))
        for i in range(num_partitions)
    ]
    return Crossbar(config, events, partitions, StatGroup("icnt")), events, partitions


class TestRouting:
    def test_interleave_granularity(self):
        crossbar, _, _ = make_crossbar(4)
        interleave = crossbar.config.partition_interleave_bytes
        assert crossbar.partition_of(0) == 0
        assert crossbar.partition_of(interleave - 1) == 0
        assert crossbar.partition_of(interleave) == 1
        assert crossbar.partition_of(4 * interleave) == 0

    def test_streaming_spreads_evenly(self):
        crossbar, _, _ = make_crossbar(4)
        interleave = crossbar.config.partition_interleave_bytes
        counts = [0, 0, 0, 0]
        for chunk in range(64):
            counts[crossbar.partition_of(chunk * interleave)] += 1
        assert counts == [16, 16, 16, 16]


class TestLatency:
    def test_round_trip_adds_both_directions(self):
        crossbar, events, partitions = make_crossbar(2)
        times = []
        crossbar.send(0.0, 0x40, False, times.append)
        events.run()
        assert len(times) == 1
        # icnt out + L2 miss path + icnt back
        minimum = 2 * crossbar.latency + partitions[0]._hit_latency
        assert times[0] > minimum

    def test_request_arrives_after_latency(self):
        crossbar, events, partitions = make_crossbar(2)
        crossbar.send(0.0, 0x40, True, lambda t: None)
        events.run(until=crossbar.latency - 1)
        assert partitions[0].l2.stats.get("accesses") == 0
        events.run(until=crossbar.latency + 1)
        assert partitions[0].l2.stats.get("accesses") == 1

    def test_requests_counted(self):
        crossbar, events, _ = make_crossbar(2)
        for i in range(5):
            crossbar.send(0.0, i * 256, True, lambda t: None)
        assert crossbar.stats.get("requests") == 5
