"""Counter/MAC geometry and the Table II storage arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common import params
from repro.secure.geometry import CounterGeometry, MacGeometry


class TestCounterGeometry:
    def test_covers_16kb_per_block(self):
        assert CounterGeometry().data_bytes_per_block == 16 * 1024

    def test_coverage_ratio_is_128(self):
        assert CounterGeometry().coverage_ratio == 128

    def test_paper_storage_is_32mb(self):
        storage = CounterGeometry().storage_bytes(params.PROTECTED_MEMORY_BYTES)
        assert storage == params.TABLE2_COUNTER_STORAGE

    def test_minor_limit(self):
        assert CounterGeometry().minor_limit == 128

    def test_packing_fits_line(self):
        geometry = CounterGeometry()
        bits = geometry.major_bits + geometry.minor_bits * geometry.minors_per_block
        assert bits <= geometry.line_bytes * 8

    def test_rejects_overpacked_block(self):
        with pytest.raises(ValueError):
            CounterGeometry(minor_bits=9)

    def test_block_index(self):
        geometry = CounterGeometry()
        assert geometry.block_index(0) == 0
        assert geometry.block_index(16 * 1024 - 1) == 0
        assert geometry.block_index(16 * 1024) == 1

    def test_minor_index(self):
        geometry = CounterGeometry()
        assert geometry.minor_index(0) == 0
        assert geometry.minor_index(128) == 1
        assert geometry.minor_index(16 * 1024 + 256) == 2

    @given(st.integers(min_value=0, max_value=params.PROTECTED_MEMORY_BYTES - 1))
    def test_minor_index_in_range(self, addr):
        geometry = CounterGeometry()
        assert 0 <= geometry.minor_index(addr) < geometry.minors_per_block

    @given(st.integers(min_value=0, max_value=params.PROTECTED_MEMORY_BYTES - 1))
    def test_block_and_minor_identify_line(self, addr):
        """(block, minor) determines the covered 128B line uniquely."""
        geometry = CounterGeometry()
        line = addr // 128 * 128
        block, minor = geometry.block_index(addr), geometry.minor_index(addr)
        reconstructed = block * geometry.data_bytes_per_block + minor * 128
        assert reconstructed == line


class TestMacGeometry:
    def test_16_macs_per_block(self):
        assert MacGeometry().macs_per_block == 16

    def test_covers_2kb_per_block(self):
        assert MacGeometry().data_bytes_per_block == 2 * 1024

    def test_paper_storage_is_256mb(self):
        storage = MacGeometry().storage_bytes(params.PROTECTED_MEMORY_BYTES)
        assert storage == params.TABLE2_MAC_STORAGE

    def test_sector_macs_tile_line_mac(self):
        geometry = MacGeometry()
        sectors = geometry.line_bytes // geometry.sector_bytes
        assert geometry.mac_bytes_per_sector * sectors == geometry.mac_bytes_per_line

    def test_rejects_inconsistent_truncation(self):
        with pytest.raises(ValueError):
            MacGeometry(mac_bytes_per_sector=3)

    def test_slot_index(self):
        geometry = MacGeometry()
        assert geometry.slot_index(0) == 0
        assert geometry.slot_index(128) == 1
        assert geometry.slot_index(2048) == 0  # next block

    @given(st.integers(min_value=0, max_value=params.PROTECTED_MEMORY_BYTES - 1))
    def test_block_and_slot_identify_line(self, addr):
        geometry = MacGeometry()
        line = addr // 128 * 128
        block, slot = geometry.block_index(addr), geometry.slot_index(addr)
        assert block * geometry.data_bytes_per_block + slot * 128 == line

    @given(st.integers(min_value=128, max_value=1 << 34).filter(lambda n: n % 128 == 0))
    def test_storage_proportional_to_protected(self, protected):
        geometry = MacGeometry()
        assert geometry.storage_bytes(protected) == protected // 16
