"""Workload specs and access-pattern generators."""

import itertools

import pytest

from repro.common import params
from repro.workloads import patterns
from repro.workloads.base import WarpOp, WorkloadSpec
from repro.workloads.suite import (
    BENCHMARKS,
    BENCHMARK_ORDER,
    MEDIUM_INTENSIVE,
    MEMORY_INTENSIVE,
    NON_MEMORY_INTENSIVE,
    PAPER_TABLE4,
    get_benchmark,
)

MB = 1024 * 1024


def take(iterator, n):
    return list(itertools.islice(iterator, n))


def spec_for(factory, **overrides):
    defaults = dict(
        name="test",
        category="medium",
        trace_factory=factory,
        working_set=1 * MB,
        insts_per_step=4,
        sectors_per_access=4,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestWarpOp:
    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            WarpOp(n_insts=-1)
        with pytest.raises(ValueError):
            WarpOp(n_insts=1, compute_cycles=-1)

    def test_rejects_unaligned_addresses(self):
        with pytest.raises(ValueError):
            WarpOp(n_insts=1, mem_addrs=(33,))

    def test_sector_aligned_ok(self):
        op = WarpOp(n_insts=1, mem_addrs=(0, 32, 64))
        assert op.mem_addrs == (0, 32, 64)


class TestWorkloadSpec:
    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            spec_for(patterns.streaming, category="huge")

    def test_rejects_bad_write_ratio(self):
        with pytest.raises(ValueError):
            spec_for(patterns.streaming, write_ratio=1.5)

    def test_rejects_unaligned_working_set(self):
        with pytest.raises(ValueError):
            spec_for(patterns.streaming, working_set=1000)

    def test_rng_is_deterministic_per_warp(self):
        spec = spec_for(patterns.streaming)
        assert spec.rng_for(3).random() == spec.rng_for(3).random()
        assert spec.rng_for(3).random() != spec.rng_for(4).random()

    def test_warp_trace_is_deterministic(self):
        spec = spec_for(patterns.random_access, write_ratio=0.3)
        a = take(spec.warp_trace(1, 2, 4, 8), 50)
        b = take(spec.warp_trace(1, 2, 4, 8), 50)
        assert a == b

    def test_different_warps_differ(self):
        spec = spec_for(patterns.random_access)
        a = take(spec.warp_trace(0, 0, 4, 8), 20)
        b = take(spec.warp_trace(0, 1, 4, 8), 20)
        assert a != b


def all_addrs(ops):
    return [a for op in ops for a in op.mem_addrs]


class TestPatternInvariants:
    @pytest.mark.parametrize("name,factory", list(patterns.PATTERNS.items()))
    def test_addresses_are_sector_aligned_and_in_range(self, name, factory):
        spec = spec_for(factory, write_ratio=0.4)
        ops = take(factory(spec, 3, 16), 300)
        for addr in all_addrs(ops):
            assert addr % params.SECTOR_BYTES == 0
            assert 0 <= addr < spec.working_set

    @pytest.mark.parametrize("name,factory", list(patterns.PATTERNS.items()))
    def test_traces_are_infinite(self, name, factory):
        spec = spec_for(factory)
        assert len(take(factory(spec, 0, 4), 1000)) == 1000

    @pytest.mark.parametrize("name,factory", list(patterns.PATTERNS.items()))
    def test_instruction_count_matches_spec(self, name, factory):
        spec = spec_for(factory, insts_per_step=7)
        for op in take(factory(spec, 0, 4), 50):
            assert op.n_insts == 7


class TestStreaming:
    def test_blocked_layout_keeps_warps_in_slices(self):
        spec = spec_for(patterns.streaming, extra={"layout": "blocked"})
        ops = take(patterns.streaming(spec, 0, 8), 40)
        lines = {a // 128 for a in all_addrs(ops)}
        slice_lines = spec.working_set // 128 // 8
        assert max(lines) < slice_lines + 4

    def test_blocked_is_sequential(self):
        spec = spec_for(patterns.streaming, sectors_per_access=4)
        ops = take(patterns.streaming(spec, 0, 8), 10)
        firsts = [op.mem_addrs[0] for op in ops]
        assert firsts == sorted(firsts)

    def test_strided_layout_interleaves_warps(self):
        spec = spec_for(patterns.streaming, extra={"layout": "strided"})
        a0 = take(patterns.streaming(spec, 0, 8), 1)[0].mem_addrs[0]
        a1 = take(patterns.streaming(spec, 1, 8), 1)[0].mem_addrs[0]
        assert a1 - a0 == 128

    def test_write_ratio_zero_means_no_writes(self):
        spec = spec_for(patterns.streaming, write_ratio=0.0)
        assert not any(op.is_write for op in take(patterns.streaming(spec, 0, 4), 100))

    def test_write_ratio_one_means_all_writes(self):
        spec = spec_for(patterns.streaming, write_ratio=1.0)
        assert all(op.is_write for op in take(patterns.streaming(spec, 0, 4), 100))

    def test_eight_sectors_span_two_lines(self):
        spec = spec_for(patterns.streaming, sectors_per_access=8)
        op = take(patterns.streaming(spec, 0, 4), 1)[0]
        assert len(op.mem_addrs) == 8
        assert op.mem_addrs[-1] - op.mem_addrs[0] == 7 * 32


class TestTiled:
    def test_tile_share_groups_warps(self):
        spec = spec_for(patterns.tiled, extra={"tile_lines": 8, "tile_share": 4})
        a = {a for a in all_addrs(take(patterns.tiled(spec, 0, 16), 32))}
        b = {a for a in all_addrs(take(patterns.tiled(spec, 3, 16), 32))}
        c = {a for a in all_addrs(take(patterns.tiled(spec, 4, 16), 32))}
        assert a == b  # same group
        assert a != c  # next group

    def test_tile_revisits_lines(self):
        spec = spec_for(patterns.tiled, extra={"tile_lines": 4})
        ops = take(patterns.tiled(spec, 0, 4), 16)
        lines = [op.mem_addrs[0] for op in ops]
        assert lines[:4] == lines[4:8]


class TestMixed:
    def test_hot_fraction_statistics(self):
        spec = spec_for(
            patterns.mixed,
            working_set=8 * MB,
            extra={"hot_fraction": 0.8, "hot_bytes": 128 * 1024},
        )
        # warp 2's cold slice sits above the hot region, so the address
        # alone classifies the access.
        ops = take(patterns.mixed(spec, 2, 4), 2000)
        hot = sum(1 for op in ops if op.mem_addrs[0] < 128 * 1024)
        assert 0.7 < hot / len(ops) < 0.9

    def test_hot_accesses_never_write(self):
        spec = spec_for(
            patterns.mixed,
            write_ratio=1.0,
            extra={"hot_fraction": 0.5, "hot_bytes": 64 * 1024},
        )
        for op in take(patterns.mixed(spec, 0, 4), 500):
            if op.mem_addrs[0] < 64 * 1024 and not op.is_write:
                break
        else:
            pytest.fail("expected read ops in the hot region")


class TestPointerChase:
    def test_fanout_controls_access_count(self):
        spec = spec_for(patterns.pointer_chase, extra={"fanout": 6})
        for op in take(patterns.pointer_chase(spec, 0, 4), 20):
            assert len(op.mem_addrs) == 6

    def test_hot_fraction_biases_addresses(self):
        spec = spec_for(
            patterns.pointer_chase,
            working_set=8 * MB,
            extra={"fanout": 4, "hot_fraction": 0.9, "hot_bytes": 64 * 1024},
        )
        addrs = all_addrs(take(patterns.pointer_chase(spec, 0, 4), 500))
        hot = sum(1 for a in addrs if a < 64 * 1024)
        assert hot / len(addrs) > 0.8


class TestStencil:
    def test_arrays_partition_working_set(self):
        spec = spec_for(patterns.stencil, extra={"arrays": 4}, write_ratio=1.0)
        ops = take(patterns.stencil(spec, 0, 4), 4)
        array_bytes = spec.working_set // 4
        regions = [op.mem_addrs[0] // array_bytes for op in ops]
        assert regions == [0, 1, 2, 3]

    def test_write_goes_to_last_array(self):
        spec = spec_for(patterns.stencil, extra={"arrays": 3}, write_ratio=1.0)
        ops = take(patterns.stencil(spec, 0, 4), 30)
        array_bytes = (spec.working_set // 3) // 128 * 128
        assert any(op.is_write for op in ops)
        for op in ops:
            if op.is_write:
                assert op.mem_addrs[0] >= 2 * array_bytes


class TestComputeOnly:
    def test_memory_every_n_steps(self):
        spec = spec_for(patterns.compute_only, extra={"mem_every": 5})
        ops = take(patterns.compute_only(spec, 0, 4), 25)
        mem_ops = [i for i, op in enumerate(ops) if op.mem_addrs]
        assert mem_ops == [4, 9, 14, 19, 24]


class TestSuite:
    def test_all_paper_benchmarks_present(self):
        assert set(BENCHMARKS) == set(PAPER_TABLE4)
        assert len(BENCHMARKS) == 14

    def test_order_matches_table4(self):
        assert BENCHMARK_ORDER == list(PAPER_TABLE4)

    def test_categories_partition_suite(self):
        names = set(NON_MEMORY_INTENSIVE) | set(MEDIUM_INTENSIVE) | set(MEMORY_INTENSIVE)
        assert names == set(BENCHMARKS)
        assert not set(NON_MEMORY_INTENSIVE) & set(MEMORY_INTENSIVE)

    def test_get_benchmark(self):
        assert get_benchmark("lbm").name == "lbm"
        with pytest.raises(KeyError):
            get_benchmark("doom")

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_every_benchmark_generates_valid_ops(self, name):
        spec = BENCHMARKS[name]
        ops = take(spec.warp_trace(0, 0, 4, spec.warps_per_sm), 100)
        assert len(ops) == 100
        for op in ops:
            for addr in op.mem_addrs:
                assert 0 <= addr < spec.working_set
                assert addr % 32 == 0
