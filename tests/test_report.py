"""ASCII rendering helpers."""

from repro.analysis.report import render_series_table, render_table


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.500" in out

    def test_column_alignment(self):
        out = render_table(["name", "v"], [["longer-name", 1]])
        header, sep, row = out.splitlines()
        assert len(header) == len(sep) == len(row.rstrip()) or len(sep) >= len("name")

    def test_empty_rows(self):
        out = render_table(["h"], [])
        assert out.splitlines()[0] == "h"


class TestRenderSeriesTable:
    def test_renders_rows_and_columns(self):
        series = {"nw": {"a": 0.5, "b": 1.0}, "Gmean": {"a": 0.7, "b": 0.9}}
        out = render_series_table("Fig X", series)
        assert out.startswith("Fig X")
        assert "nw" in out
        assert "Gmean" in out
        assert "0.500" in out

    def test_missing_cells_are_dashes(self):
        series = {"r1": {"a": 1.0}, "r2": {"b": 2.0}}
        out = render_series_table("t", series)
        assert "-" in out

    def test_row_order_respected(self):
        series = {"z": {"a": 1.0}, "a": {"a": 2.0}}
        out = render_series_table("t", series, row_order=["z", "a"])
        lines = out.splitlines()
        assert lines[3].startswith("z")

    def test_custom_format(self):
        series = {"r": {"c": 0.123456}}
        out = render_series_table("t", series, value_format="{:.1f}")
        assert "0.1" in out
