"""SecureMemory: round trips, confidentiality, and the paper's attack matrix."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.secure.functional import IntegrityError, SecureMemory, SecureMemoryMode

KB = 1024

ALL_MODES = list(SecureMemoryMode)
MAC_MODES = [m for m in ALL_MODES if m.has_macs]
TREE_MODES = [m for m in ALL_MODES if m.has_tree]


@pytest.fixture(scope="module")
def memories():
    """One small memory per mode (init is the expensive part)."""
    return {mode: SecureMemory(protected_bytes=32 * KB, mode=mode) for mode in ALL_MODES}


def fresh(mode, size=32 * KB):
    return SecureMemory(protected_bytes=size, mode=mode)


class TestRoundTrip:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_write_read(self, memories, mode):
        memory = memories[mode]
        memory.write(0, b"The quick brown fox")
        assert memory.read(0, 19) == b"The quick brown fox"

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_unaligned_rmw(self, memories, mode):
        memory = memories[mode]
        memory.write(130, b"abcdef")  # crosses into line 1 interior
        assert memory.read(128, 16) == memory.read(128, 16)
        assert memory.read(130, 6) == b"abcdef"

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_cross_line_write(self, memories, mode):
        memory = memories[mode]
        blob = bytes(range(256))
        memory.write(1024 - 32, blob)
        assert memory.read(1024 - 32, 256) == blob

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_overwrite(self, memories, mode):
        memory = memories[mode]
        memory.write(4096, b"first")
        memory.write(4096, b"second")
        assert memory.read(4096, 6) == b"second"

    def test_out_of_range_rejected(self, memories):
        memory = memories[SecureMemoryMode.CTR]
        with pytest.raises(ValueError):
            memory.read(32 * KB, 1)
        with pytest.raises(ValueError):
            memory.write(-1, b"x")


class TestConfidentiality:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_plaintext_never_stored(self, memories, mode):
        memory = memories[mode]
        secret = b"TOP-SECRET-PAYLOAD-0123456789"
        memory.write(2048, secret)
        assert secret not in bytes(memory.store)

    def test_ciphertext_differs_across_addresses(self):
        memory = fresh(SecureMemoryMode.DIRECT)
        memory.write(0, bytes(128))
        memory.write(128, bytes(128))
        assert memory.store[0:128] != memory.store[128:256]

    def test_counter_mode_rewrites_change_ciphertext(self):
        """Same plaintext re-written to the same line encrypts differently."""
        memory = fresh(SecureMemoryMode.CTR)
        memory.write(0, b"same data")
        first = bytes(memory.store[0:128])
        memory.write(0, b"same data")
        assert bytes(memory.store[0:128]) != first

    def test_direct_rewrites_keep_ciphertext(self):
        """Direct encryption is deterministic per (address, data)."""
        memory = fresh(SecureMemoryMode.DIRECT)
        memory.write(0, b"same data")
        first = bytes(memory.store[0:128])
        memory.write(0, b"same data")
        assert bytes(memory.store[0:128]) == first


class TestTamperDetection:
    @pytest.mark.parametrize("mode", MAC_MODES)
    def test_data_tamper_detected(self, mode):
        memory = fresh(mode)
        memory.write(256, b"payload")
        memory.tamper(260, b"\xff")
        with pytest.raises(IntegrityError):
            memory.read(256, 8)

    @pytest.mark.parametrize("mode", MAC_MODES)
    def test_mac_tamper_detected(self, mode):
        memory = fresh(mode)
        memory.write(256, b"payload")
        lo, _hi = memory._mac_slot(256)
        memory.tamper(lo, b"\x00" * 8)
        with pytest.raises(IntegrityError):
            memory.read(256, 8)

    @pytest.mark.parametrize("mode", [SecureMemoryMode.CTR, SecureMemoryMode.DIRECT])
    def test_unprotected_modes_miss_tampering(self, mode):
        """Encryption alone garbles data but raises nothing (the paper's
        argument for integrity protection)."""
        memory = fresh(mode)
        memory.write(256, b"payload")
        memory.tamper(256, b"\xde\xad\xbe\xef")
        garbled = memory.read(256, 8)
        assert garbled != b"payload\x00"  # corrupted silently

    def test_counter_tamper_detected_with_bmt(self):
        memory = fresh(SecureMemoryMode.CTR_BMT)
        memory.write(0, b"payload")
        memory.tamper(memory.layout.counter_block_addr(0) + 16, b"\x05")
        with pytest.raises(IntegrityError):
            memory.read(0, 8)

    def test_counter_tamper_undetected_without_bmt(self):
        """Section VI-B: without counter integrity, the attacker can alter
        counters unnoticed — which is why ctr-only is not a safe design."""
        memory = fresh(SecureMemoryMode.CTR)
        memory.write(0, b"payload")
        memory.tamper(memory.layout.counter_block_addr(0) + 16, b"\x05")
        memory.read(0, 8)  # silently wrong, no exception

    def test_splice_attack_detected(self):
        """Moving valid ciphertext between addresses breaks address binding."""
        memory = fresh(SecureMemoryMode.DIRECT_MAC)
        memory.write(0, b"AAAAAAAA")
        memory.write(128, b"BBBBBBBB")
        line0 = bytes(memory.store[0:128])
        line1 = bytes(memory.store[128:256])
        memory.tamper(0, line1)
        memory.tamper(128, line0)
        with pytest.raises(IntegrityError):
            memory.read(0, 8)

    def test_tree_node_tamper_detected(self):
        memory = fresh(SecureMemoryMode.CTR_MAC_BMT)
        memory.write(0, b"payload")
        memory.tamper(memory.layout.bmt_base, b"\xff" * 8)
        with pytest.raises(IntegrityError):
            memory.read(0, 8)


class TestReplayAttacks:
    @pytest.mark.parametrize("mode", TREE_MODES)
    def test_full_image_replay_detected(self, mode):
        memory = fresh(mode)
        memory.write(512, b"version-1")
        stale = memory.snapshot()
        memory.write(512, b"version-2")
        memory.restore(stale)
        with pytest.raises(IntegrityError):
            memory.read(512, 9)

    def test_replay_without_tree_succeeds_silently(self):
        """direct_mac cannot catch replay: the stale MAC matches the stale
        ciphertext — the paper's reason the MT exists."""
        memory = fresh(SecureMemoryMode.DIRECT_MAC)
        memory.write(512, b"version-1")
        stale = memory.snapshot()
        memory.write(512, b"version-2")
        memory.restore(stale)
        assert memory.read(512, 9) == b"version-1"

    def test_counter_replay_detected_in_counter_mode(self):
        memory = fresh(SecureMemoryMode.CTR_MAC_BMT)
        memory.write(512, b"version-1")
        stale = memory.snapshot()
        memory.write(512, b"version-2")
        memory.restore(stale)
        with pytest.raises(IntegrityError):
            memory.read(512, 9)


class TestCounterOverflow:
    def test_overflow_preserves_data(self):
        memory = fresh(SecureMemoryMode.CTR_MAC_BMT, size=16 * KB)
        memory.write(128, b"neighbour line")
        for i in range(130):  # minor limit is 128
            memory.write(0, bytes([i]) * 16)
        assert memory.read(0, 16) == bytes([129]) * 16
        assert memory.read(128, 14) == b"neighbour line"

    def test_overflow_bumps_major(self):
        memory = fresh(SecureMemoryMode.CTR, size=16 * KB)
        for _ in range(128):
            memory.write(0, b"x")
        assert memory._counter_block(0).major == 1
        assert memory._counter_block(0).get_minor(0) == 0

    def test_overflow_keeps_integrity_valid(self):
        memory = fresh(SecureMemoryMode.CTR_MAC_BMT, size=16 * KB)
        memory.write(256, b"other")
        for _ in range(129):
            memory.write(0, b"spin")
        memory.read(0, 4)
        memory.read(256, 5)


class TestPropertyRoundTrip:
    @pytest.mark.slow
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=16 * KB - 64),
                st.binary(min_size=1, max_size=64),
            ),
            min_size=1,
            max_size=12,
        ),
        st.sampled_from([SecureMemoryMode.CTR_MAC_BMT, SecureMemoryMode.DIRECT_MAC_MT]),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_reference_model(self, operations, mode):
        """SecureMemory behaves exactly like a plain bytearray."""
        memory = fresh(mode, size=16 * KB)
        reference = bytearray(16 * KB)
        for addr, data in operations:
            memory.write(addr, data)
            reference[addr : addr + len(data)] = data
        for addr, data in operations:
            assert memory.read(addr, len(data) + 8) == bytes(
                reference[addr : addr + len(data) + 8]
            )
