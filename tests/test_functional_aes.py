"""From-scratch AES-128 against FIPS-197 and round-trip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.secure.functional.aes128 import Aes128


class TestFips197Vectors:
    def test_appendix_b_example(self):
        aes = Aes128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = aes.encrypt_block(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_appendix_c_example(self):
        aes = Aes128(bytes(range(16)))
        ct = aes.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_appendix_c_decrypt(self):
        aes = Aes128(bytes(range(16)))
        pt = aes.decrypt_block(bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a"))
        assert pt.hex() == "00112233445566778899aabbccddeeff"

    def test_nist_sp800_38a_ecb_vector(self):
        aes = Aes128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = aes.encrypt_block(bytes.fromhex("6bc1bee22e409f96e93d7e117393172a"))
        assert ct.hex() == "3ad77bb40d7a3660a89ecaf32466ef97"


class TestInterface:
    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            Aes128(b"short")

    def test_rejects_bad_block_sizes(self):
        aes = Aes128(bytes(16))
        with pytest.raises(ValueError):
            aes.encrypt_block(b"123")
        with pytest.raises(ValueError):
            aes.decrypt_block(b"123")

    def test_deterministic(self):
        aes = Aes128(b"0123456789abcdef")
        assert aes.encrypt_block(bytes(16)) == aes.encrypt_block(bytes(16))

    def test_key_sensitivity(self):
        a = Aes128(b"0123456789abcdef").encrypt_block(bytes(16))
        b = Aes128(b"0123456789abcdeF").encrypt_block(bytes(16))
        assert a != b


class TestProperties:
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, key, plaintext):
        aes = Aes128(key)
        assert aes.decrypt_block(aes.encrypt_block(plaintext)) == plaintext

    @given(st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_encryption_changes_data(self, plaintext):
        aes = Aes128(b"fixed-key-16byte")
        assert aes.encrypt_block(plaintext) != plaintext

    @given(st.binary(min_size=16, max_size=16), st.integers(0, 127))
    @settings(max_examples=20, deadline=None)
    def test_avalanche(self, plaintext, bit):
        """Flipping one plaintext bit changes many ciphertext bits."""
        aes = Aes128(b"fixed-key-16byte")
        flipped = bytearray(plaintext)
        flipped[bit // 8] ^= 1 << (bit % 8)
        a = aes.encrypt_block(plaintext)
        b = aes.encrypt_block(bytes(flipped))
        differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert differing >= 30
