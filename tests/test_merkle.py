"""Integrity-tree shapes and node addressing (BMT and MT of Table II)."""

import pytest
from hypothesis import given, strategies as st

from repro.common import params
from repro.secure.merkle import TreeGeometry, bmt_geometry, mt_geometry


class TestPaperTrees:
    def test_bmt_is_6_levels_counting_leaves(self):
        assert bmt_geometry().num_levels_with_leaves == 6

    def test_mt_is_7_levels_counting_leaves(self):
        assert mt_geometry().num_levels_with_leaves == 7

    def test_bmt_leaf_count(self):
        # 4GB / 16KB counter coverage
        assert bmt_geometry().num_leaves == 262144

    def test_mt_leaf_count(self):
        # 4GB / 2KB MAC coverage
        assert mt_geometry().num_leaves == 2097152

    def test_bmt_storage_close_to_2_14_mb(self):
        mb = bmt_geometry().internal_storage_bytes / (1024 * 1024)
        assert mb == pytest.approx(params.TABLE2_BMT_STORAGE_MB, rel=0.01)

    def test_mt_storage_close_to_17_1_mb(self):
        mb = mt_geometry().internal_storage_bytes / (1024 * 1024)
        assert mb == pytest.approx(params.TABLE2_MT_STORAGE_MB, rel=0.01)

    def test_bmt_level_sizes(self):
        assert bmt_geometry().level_sizes == (16384, 1024, 64, 4, 1)

    def test_mt_level_sizes(self):
        assert mt_geometry().level_sizes == (131072, 8192, 512, 32, 2, 1)


class TestTreeGeometry:
    def test_single_leaf_still_has_root(self):
        tree = TreeGeometry(num_leaves=1)
        assert tree.level_sizes == (1,)
        assert tree.root_level == 1

    def test_rejects_zero_leaves(self):
        with pytest.raises(ValueError):
            TreeGeometry(num_leaves=0)

    def test_rejects_unary_tree(self):
        with pytest.raises(ValueError):
            TreeGeometry(num_leaves=4, arity=1)

    def test_parent_of_leaf(self):
        tree = TreeGeometry(num_leaves=256, arity=16)
        assert tree.parent(0, 0) == (1, 0)
        assert tree.parent(0, 17) == (1, 1)
        assert tree.parent(0, 255) == (1, 15)

    def test_root_has_no_parent(self):
        tree = TreeGeometry(num_leaves=256, arity=16)
        with pytest.raises(ValueError):
            tree.parent(tree.root_level, 0)

    def test_parent_rejects_out_of_range(self):
        tree = TreeGeometry(num_leaves=256, arity=16)
        with pytest.raises(ValueError):
            tree.parent(0, 256)

    def test_path_ends_at_root(self):
        tree = TreeGeometry(num_leaves=256, arity=16)
        path = tree.path_to_root(200)
        assert path[-1] == (tree.root_level, 0)
        assert len(path) == tree.num_internal_levels

    def test_nodes_at_validation(self):
        tree = TreeGeometry(num_leaves=256, arity=16)
        with pytest.raises(ValueError):
            tree.nodes_at(0)
        with pytest.raises(ValueError):
            tree.nodes_at(tree.root_level + 1)

    def test_flat_index_level_major(self):
        tree = TreeGeometry(num_leaves=256, arity=16)
        assert tree.flat_index(1, 0) == 0
        assert tree.flat_index(1, 15) == 15
        assert tree.flat_index(2, 0) == 16

    def test_node_offset_scale(self):
        tree = TreeGeometry(num_leaves=256, arity=16)
        assert tree.node_offset(2, 0) == 16 * 128


@st.composite
def tree_and_leaf(draw):
    leaves = draw(st.integers(min_value=1, max_value=5000))
    arity = draw(st.sampled_from([2, 4, 8, 16]))
    tree = TreeGeometry(num_leaves=leaves, arity=arity)
    leaf = draw(st.integers(min_value=0, max_value=leaves - 1))
    return tree, leaf


class TestTreeProperties:
    @given(tree_and_leaf())
    def test_path_is_monotone_up(self, tree_leaf):
        tree, leaf = tree_leaf
        path = tree.path_to_root(leaf)
        levels = [lvl for lvl, _ in path]
        assert levels == sorted(set(levels))
        assert levels[-1] == tree.root_level

    @given(tree_and_leaf())
    def test_path_indices_shrink(self, tree_leaf):
        tree, leaf = tree_leaf
        previous = leaf
        for level, index in tree.path_to_root(leaf):
            assert index == previous // tree.arity
            assert 0 <= index < tree.nodes_at(level)
            previous = index

    @given(tree_and_leaf())
    def test_offset_coords_roundtrip(self, tree_leaf):
        tree, leaf = tree_leaf
        for level, index in tree.path_to_root(leaf):
            offset = tree.node_offset(level, index)
            assert tree.coords_of_offset(offset) == (level, index)

    @given(st.integers(min_value=1, max_value=100000))
    def test_levels_cover_all_leaves(self, leaves):
        tree = TreeGeometry(num_leaves=leaves, arity=16)
        # every level must be able to address all children below it
        assert tree.level_sizes[0] * tree.arity >= leaves
        for below, above in zip(tree.level_sizes, tree.level_sizes[1:]):
            assert above * tree.arity >= below
        assert tree.level_sizes[-1] == 1

    @given(st.integers(min_value=2, max_value=100000))
    def test_storage_is_sum_of_levels(self, leaves):
        tree = TreeGeometry(num_leaves=leaves, arity=16)
        assert tree.internal_storage_bytes == sum(tree.level_sizes) * 128

    def test_coords_of_offset_rejects_unaligned(self):
        tree = TreeGeometry(num_leaves=256, arity=16)
        with pytest.raises(ValueError):
            tree.coords_of_offset(5)

    def test_coords_of_offset_rejects_beyond_end(self):
        tree = TreeGeometry(num_leaves=256, arity=16)
        with pytest.raises(ValueError):
            tree.coords_of_offset(tree.internal_storage_bytes)
