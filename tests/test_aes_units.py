"""AES engine bank and MAC unit timing models."""

import pytest

from repro.secure.aes import AesEngineBank, MacUnit

CORE = 1132.0
DRAM = 850.0


def bank(engines=2, latency=40) -> AesEngineBank:
    return AesEngineBank(engines, latency, CORE, DRAM)


class TestAesBank:
    def test_throughput_gbps_matches_paper(self):
        # one engine: 16B x 850MHz = 13.6 GB/s
        assert bank(engines=1).throughput_gbps == pytest.approx(13.6)
        assert bank(engines=2).throughput_gbps == pytest.approx(27.2)

    def test_latency_applied_once(self):
        engine = bank(latency=40)
        occupancy = 32 * engine.cycles_per_byte
        assert engine.process(0.0, 32) == pytest.approx(occupancy + 40)

    def test_throughput_halves_with_one_engine(self):
        assert bank(engines=1).cycles_per_byte == pytest.approx(
            2 * bank(engines=2).cycles_per_byte
        )

    def test_queueing_under_load(self):
        engine = bank()
        first = engine.process(0.0, 32)
        second = engine.process(0.0, 32)
        assert second == pytest.approx(first + 32 * engine.cycles_per_byte)

    def test_available_floors_completion(self):
        engine = bank(latency=10)
        done = engine.process(0.0, 32, available=500.0)
        assert done == pytest.approx(500.0 + 32 * engine.cycles_per_byte + 10)

    def test_available_does_not_poison_queue(self):
        """A future-available op must not delay an unrelated later op."""
        engine = bank(latency=0)
        engine.process(0.0, 32, available=10_000.0)
        occupancy = 32 * engine.cycles_per_byte
        assert engine.process(0.0, 32) == pytest.approx(2 * occupancy)

    def test_zero_latency(self):
        engine = bank(latency=0)
        assert engine.process(0.0, 16) == pytest.approx(16 * engine.cycles_per_byte)

    def test_rejects_zero_engines(self):
        with pytest.raises(ValueError):
            bank(engines=0)

    def test_stats(self):
        engine = bank()
        engine.process(0.0, 32)
        engine.process(0.0, 32)
        assert engine.stats.get("ops") == 2
        assert engine.stats.get("bytes") == 64


class TestMacUnit:
    def test_latency(self):
        unit = MacUnit(40, CORE, DRAM)
        assert unit.process(0.0) == pytest.approx(unit.cycles_per_op + 40)

    def test_pipelined_throughput(self):
        unit = MacUnit(40, CORE, DRAM)
        first = unit.process(0.0)
        second = unit.process(0.0)
        assert second - first == pytest.approx(unit.cycles_per_op)

    def test_multiple_ops_in_one_call(self):
        unit = MacUnit(0, CORE, DRAM)
        assert unit.process(0.0, n_ops=4) == pytest.approx(4 * unit.cycles_per_op)

    def test_available_floor(self):
        unit = MacUnit(5, CORE, DRAM)
        assert unit.process(0.0, available=300.0) == pytest.approx(
            300.0 + unit.cycles_per_op + 5
        )

    def test_utilization(self):
        unit = MacUnit(40, CORE, DRAM)
        unit.process(0.0)
        assert 0 < unit.utilization(100.0) <= 1.0
