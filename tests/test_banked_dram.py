"""Banked DRAM channel: row-buffer behaviour."""

import pytest

from repro.common.config import DramConfig, GpuConfig
from repro.sim.dram import BankedDramChannel, DramChannel, make_dram_channel
from repro import simulate
from repro.workloads.suite import get_benchmark


def banked(**kw) -> BankedDramChannel:
    defaults = dict(
        bandwidth_gbps=27.125,
        model="banked",
        num_banks=4,
        row_bytes=2048,
        row_hit_latency=100,
        row_miss_latency=300,
    )
    defaults.update(kw)
    return BankedDramChannel(DramConfig(**defaults), core_clock_mhz=1000.0)


class TestFactory:
    def test_simple_by_default(self):
        channel = make_dram_channel(DramConfig(), 1000.0)
        assert type(channel) is DramChannel

    def test_banked_when_configured(self):
        channel = make_dram_channel(DramConfig(model="banked"), 1000.0)
        assert isinstance(channel, BankedDramChannel)

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            DramConfig(model="quantum")

    def test_rejects_silly_geometry(self):
        with pytest.raises(ValueError):
            DramConfig(model="banked", num_banks=0)


class TestRowBuffer:
    def test_first_access_is_a_row_miss(self):
        channel = banked()
        channel.read(0.0, 32, "data_read", addr=0)
        assert channel.stats.get("row_misses") == 1
        assert channel.stats.get("row_hits") == 0

    def test_same_row_hits(self):
        channel = banked()
        channel.read(0.0, 32, "data_read", addr=0)
        channel.read(10.0, 32, "data_read", addr=64)
        assert channel.stats.get("row_hits") == 1

    def test_row_conflict_in_same_bank(self):
        channel = banked(num_banks=4)
        channel.read(0.0, 32, "data_read", addr=0)
        # 4 banks x 2KB rows: addr 8192 maps to bank 0, different row
        channel.read(10.0, 32, "data_read", addr=4 * 2048)
        assert channel.stats.get("row_misses") == 2

    def test_different_banks_do_not_conflict(self):
        channel = banked(num_banks=4)
        channel.read(0.0, 32, "data_read", addr=0)
        channel.read(0.0, 32, "data_read", addr=2048)  # bank 1
        assert channel.stats.get("row_misses") == 2
        assert channel.row_hit_rate() == 0.0

    def test_hit_is_faster_than_miss(self):
        hit_channel, miss_channel = banked(), banked()
        hit_channel.read(0.0, 32, "data_read", addr=0)
        miss_channel.read(0.0, 32, "data_read", addr=0)
        hit = hit_channel.read(500.0, 32, "data_read", addr=64)
        miss = miss_channel.read(500.0, 32, "data_read", addr=4 * 2048)
        assert hit < miss

    def test_row_hit_rate_metric(self):
        channel = banked()
        channel.read(0.0, 32, "data_read", addr=0)
        channel.read(1.0, 32, "data_read", addr=32)
        channel.read(2.0, 32, "data_read", addr=64)
        assert channel.row_hit_rate() == pytest.approx(2 / 3)

    def test_runs_at_raw_peak_rate(self):
        config = DramConfig(model="banked", efficiency=0.85)
        channel = BankedDramChannel(config, 1000.0)
        assert channel.bytes_per_cycle == pytest.approx(
            config.bytes_per_core_cycle(1000.0)
        )


class TestEndToEnd:
    def test_full_simulation_with_banked_dram(self):
        from dataclasses import replace

        config = GpuConfig.scaled(num_partitions=2)
        config = replace(config, dram=replace(config.dram, model="banked"))
        result = simulate(config, get_benchmark("streamcluster"), horizon=2000)
        assert result.ipc > 0
        assert result.dram_txn["data_read"] > 0

    def test_streaming_gets_good_row_locality(self):
        from dataclasses import replace

        config = GpuConfig.scaled(num_partitions=2)
        config = replace(config, dram=replace(config.dram, model="banked"))
        from repro.sim.gpu import Gpu

        gpu = Gpu(config, get_benchmark("streamcluster"))
        gpu.run(3000, warmup=2000)
        hit_rate = gpu.partitions[0].dram.row_hit_rate()
        assert hit_rate > 0.2  # blocked streams reuse open rows
