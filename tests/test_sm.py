"""Streaming multiprocessor: issue, L1, warp blocking."""

from typing import List

from repro.common.config import GpuConfig
from repro.common.stats import StatGroup
from repro.sim.event import EventQueue
from repro.sim.sm import StreamingMultiprocessor
from repro.workloads.base import THREADS_PER_WARP, WarpOp


class FakeMemory:
    """Records requests; responds after a fixed latency via the event queue."""

    def __init__(self, events, latency=100.0):
        self.events = events
        self.latency = latency
        self.requests: List[tuple] = []

    def __call__(self, now, addr, is_write, respond):
        self.requests.append((now, addr, is_write))
        done = now + self.latency
        self.events.schedule_at(done, respond, done)


def make_sm(ops_per_warp, warps=2, latency=100.0, config=None):
    config = config or GpuConfig.scaled(num_partitions=1)
    events = EventQueue()
    memory = FakeMemory(events, latency)
    traces = [iter(list(ops)) for ops in ops_per_warp[:warps]]
    sm = StreamingMultiprocessor(0, config, events, memory, StatGroup("sm"), traces)
    return sm, events, memory


def compute(n=4, cycles=0):
    return WarpOp(n_insts=n, compute_cycles=cycles)


def load(addrs, n=4):
    return WarpOp(n_insts=n, mem_addrs=tuple(addrs))


def store(addrs, n=4):
    return WarpOp(n_insts=n, mem_addrs=tuple(addrs), is_write=True)


class TestInstructionAccounting:
    def test_thread_instructions_counted(self):
        sm, events, _ = make_sm([[compute(10)], [compute(6)]])
        sm.start()
        events.run()
        assert sm.instructions == (10 + 6) * THREADS_PER_WARP

    def test_trace_exhaustion_stops_warp(self):
        sm, events, _ = make_sm([[compute(), compute()]], warps=1)
        sm.start()
        events.run(until=10_000)
        assert sm.instructions == 8 * THREADS_PER_WARP


class TestMemoryFlow:
    def test_load_blocks_until_response(self):
        ops = [load([0x0]), compute(8)]
        sm, events, memory = make_sm([ops], warps=1, latency=500.0)
        sm.start()
        events.run(until=400)
        issued_before = sm.instructions
        events.run(until=2000)
        assert sm.instructions > issued_before  # resumed after response

    def test_multiple_sectors_issue_together(self):
        sm, events, memory = make_sm([[load([0x0, 0x20, 0x40, 0x60])]], warps=1)
        sm.start()
        events.run()
        assert len(memory.requests) == 4

    def test_warp_waits_for_all_sectors(self):
        done_time = []

        class SlowSecond(FakeMemory):
            def __call__(self, now, addr, is_write, respond):
                latency = 1000.0 if addr == 0x20 else 10.0
                self.requests.append((now, addr, is_write))
                self.events.schedule_at(now + latency, respond, now + latency)

        config = GpuConfig.scaled(num_partitions=1)
        events = EventQueue()
        memory = SlowSecond(events)
        trace = iter([load([0x0, 0x20]), compute(1)])
        sm = StreamingMultiprocessor(0, config, events, memory, StatGroup("sm"), [trace])
        sm.start()
        events.run()
        # the trailing compute op issues only after the slow sector returns
        assert sm.instructions == (4 + 1) * THREADS_PER_WARP
        assert events.now >= 1000.0

    def test_stores_are_forwarded_as_writes(self):
        sm, events, memory = make_sm([[store([0x0, 0x20])]], warps=1)
        sm.start()
        events.run()
        assert all(is_write for _, _, is_write in memory.requests)
        assert sm.stats.get("stores") == 2


class TestL1Behavior:
    def test_second_load_hits_l1(self):
        ops = [load([0x0]), load([0x0])]
        sm, events, memory = make_sm([ops], warps=1)
        sm.start()
        events.run()
        assert len(memory.requests) == 1
        assert sm.l1.stats.get("hits") == 1

    def test_concurrent_warp_misses_merge_in_l1(self):
        ops_a = [load([0x0])]
        ops_b = [load([0x0])]
        sm, events, memory = make_sm([ops_a, ops_b], warps=2)
        sm.start()
        events.run()
        assert len(memory.requests) == 1  # merged into one outstanding fill

    def test_different_sectors_do_not_merge(self):
        sm, events, memory = make_sm([[load([0x0])], [load([0x20])]], warps=2)
        sm.start()
        events.run()
        assert len(memory.requests) == 2

    def test_writes_do_not_allocate_l1(self):
        sm, events, memory = make_sm([[store([0x0])]], warps=1)
        sm.start()
        events.run()
        assert sm.l1.resident_lines() == 0


class TestIssuePort:
    def test_issue_port_serializes_heavy_warps(self):
        """Total issue occupancy cannot exceed the port rate."""
        config = GpuConfig.scaled(num_partitions=1)
        ops = [[compute(40) for _ in range(10)] for _ in range(8)]
        sm, events, _ = make_sm(ops, warps=8, config=config)
        sm.start()
        events.run()
        total_winsts = 8 * 10 * 40
        min_cycles = total_winsts / config.sm_issue_width
        assert events.now >= min_cycles * 0.9

    def test_dependent_latency_spreads_issue(self):
        sm, events, _ = make_sm([[compute(4, cycles=300), compute(4)]], warps=1)
        sm.start()
        events.run()
        assert events.now >= 300
