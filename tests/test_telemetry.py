"""Telemetry subsystem: tracer, sampler, traffic classes, persistence."""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.common.config import TelemetryConfig
from repro.experiments import designs
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner, config_key, result_to_dict
from repro.sim.event import EventQueue
from repro.sim.gpu import simulate
from repro.telemetry import (
    ARTIFACT_NAMES,
    NULL_TRACER,
    Sampler,
    Tracer,
    TrafficClass,
    chrome_trace,
    class_bytes_from_result,
    class_shares,
    write_artifacts,
)
from repro.workloads.suite import get_benchmark

FAST = ["--horizon", "1200", "--warmup", "800", "--partitions", "2"]

PARTITIONS = 2
HORIZON = 1_500
WARMUP = 800

TELEMETRY = TelemetryConfig(enabled=True, sample_every=300.0)


def secure_config(telemetry=None):
    config = designs.build_gpu(designs.ctr_mac_bmt(), num_partitions=PARTITIONS)
    if telemetry is not None:
        config = dataclasses.replace(config, telemetry=telemetry)
    return config


def baseline_config(telemetry=None):
    config = designs.build_gpu(None, num_partitions=PARTITIONS)
    if telemetry is not None:
        config = dataclasses.replace(config, telemetry=telemetry)
    return config


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0


class TestTracer:
    def test_null_tracer_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.instant("x", "c", "t")
        NULL_TRACER.span("x", "c", "t", 0.0, 1.0)

    def test_ring_bounds_and_counts_drops(self):
        tracer = Tracer(_Clock(), capacity=4)
        for i in range(10):
            tracer.instant(f"e{i}", "test", "t0")
        assert len(tracer) == 4
        assert tracer.dropped == 6
        names = [e["name"] for e in tracer.events_as_dicts()]
        assert names == ["e6", "e7", "e8", "e9"]  # newest window survives

    def test_instant_stamps_clock(self):
        clock = _Clock()
        tracer = Tracer(clock)
        clock.now = 42.5
        tracer.instant("hit", "cache", "l2", {"addr": 128})
        (event,) = tracer.events_as_dicts()
        assert event["ph"] == "i"
        assert event["ts"] == 42.5
        assert event["args"] == {"addr": 128}

    def test_chrome_trace_shape(self):
        tracer = Tracer(_Clock())
        tracer.instant("miss", "cache", "p0.l2")
        tracer.span("data_read", "dram", "p0.dram", 10.0, 5.0, {"bytes": 32})
        doc = chrome_trace(tracer.events_as_dicts(), meta={"workload": "nw"})
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"p0.l2", "p0.dram"}
        spans = [e for e in events if e["ph"] == "X"]
        assert spans[0]["dur"] == 5.0
        assert all(isinstance(e["tid"], int) for e in events)
        assert doc["otherData"]["workload"] == "nw"

    def test_jsonl_is_one_object_per_line(self):
        tracer = Tracer(_Clock())
        tracer.instant("a", "c", "t")
        tracer.instant("b", "c", "t")
        lines = tracer.to_jsonl().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]


class TestSampler:
    def test_samples_at_epoch_boundaries(self):
        events = EventQueue()
        sampler = Sampler(events, sample_every=10.0)
        ticks = [0]
        sampler.register("ticks", lambda: ticks[0])
        sampler.start()
        events.schedule_at(25.0, lambda: ticks.__setitem__(0, 7))
        events.run(until=45.0)
        assert sampler.columns["cycle"] == [10.0, 20.0, 30.0, 40.0]
        assert sampler.columns["ticks"] == [0.0, 0.0, 7.0, 7.0]

    def test_duplicate_gauge_rejected(self):
        sampler = Sampler(EventQueue(), sample_every=10.0)
        sampler.register("g", lambda: 0)
        with pytest.raises(ValueError):
            sampler.register("g", lambda: 1)

    def test_max_samples_truncates(self):
        events = EventQueue()
        sampler = Sampler(events, sample_every=1.0, max_samples=3)
        sampler.register("g", lambda: 1.0)
        sampler.start()
        events.run(until=100.0)
        assert sampler.num_samples() == 3
        assert sampler.truncated is True

    def test_disabled_without_gauges(self):
        events = EventQueue()
        sampler = Sampler(events, sample_every=10.0)
        assert not sampler.enabled
        sampler.start()
        assert events.empty()


class TestTelemetryConfig:
    def test_defaults_disabled(self):
        config = designs.build_gpu(None, num_partitions=2)
        assert config.telemetry.enabled is False

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(ring_capacity=0)
        with pytest.raises(ValueError):
            TelemetryConfig(sample_every=-1.0)
        with pytest.raises(ValueError):
            TelemetryConfig(max_samples=0)


class TestZeroDrift:
    """Telemetry must never change simulated behaviour."""

    def test_results_identical_on_vs_off(self):
        workload = get_benchmark("nw")
        off = simulate(secure_config(), workload, horizon=HORIZON, warmup=WARMUP)
        on = simulate(
            secure_config(TELEMETRY), workload, horizon=HORIZON, warmup=WARMUP
        )
        assert result_to_dict(off) == result_to_dict(on)
        assert off.telemetry is None
        assert on.telemetry is not None

    def test_config_key_ignores_telemetry(self):
        assert config_key(secure_config()) == config_key(secure_config(TELEMETRY))
        assert config_key(secure_config()) != config_key(baseline_config())

    def test_export_is_deterministic(self):
        workload = get_benchmark("bfs")
        first = simulate(
            secure_config(TELEMETRY), workload, horizon=HORIZON, warmup=WARMUP
        )
        second = simulate(
            secure_config(TELEMETRY), workload, horizon=HORIZON, warmup=WARMUP
        )
        assert first.telemetry == second.telemetry


class TestTrafficClasses:
    def test_conservation_secure(self):
        result = simulate(
            secure_config(TELEMETRY),
            get_benchmark("bfs"),
            horizon=HORIZON,
            warmup=WARMUP,
        )
        class_bytes = class_bytes_from_result(result)
        assert sum(class_bytes.values()) == result.stats.total("bytes_total")
        assert class_bytes["COUNTER"] > 0
        assert class_bytes["MAC"] > 0
        assert class_bytes["TREE"] > 0
        assert class_bytes["DATA"] > 0

    def test_baseline_is_pure_data(self):
        result = simulate(
            baseline_config(), get_benchmark("bfs"), horizon=HORIZON, warmup=WARMUP
        )
        class_bytes = class_bytes_from_result(result)
        assert class_bytes["DATA"] == result.stats.total("bytes_total")
        assert class_bytes["COUNTER"] == 0
        assert class_bytes["MAC"] == 0
        assert class_bytes["TREE"] == 0

    def test_shares_normalize(self):
        shares = class_shares({"DATA": 75.0, "MAC": 25.0})
        assert shares == {"DATA": 0.75, "MAC": 0.25}
        assert class_shares({"DATA": 0.0}) == {"DATA": 0.0}

    def test_every_class_sampled(self):
        result = simulate(
            secure_config(TELEMETRY),
            get_benchmark("bfs"),
            horizon=HORIZON,
            warmup=WARMUP,
        )
        samples = result.telemetry["samples"]
        cycles = samples["cycle"]
        for tclass in TrafficClass:
            column = samples[f"bytes_{tclass.name}"]
            assert len(column) == len(cycles)
            # cumulative gauges never decrease after the warmup stats reset
            post = [v for c, v in zip(cycles, column) if c > WARMUP]
            assert all(b >= a for a, b in zip(post, post[1:]))


class TestArtifacts:
    def test_write_artifacts_layout(self, tmp_path):
        result = simulate(
            secure_config(TELEMETRY),
            get_benchmark("nw"),
            horizon=HORIZON,
            warmup=WARMUP,
        )
        paths = write_artifacts(tmp_path / "point", result.telemetry)
        assert set(paths) == set(ARTIFACT_NAMES)
        doc = json.loads(paths["trace.json"].read_text())
        assert doc["traceEvents"]
        summary = json.loads(paths["summary.json"].read_text())
        assert summary["events_recorded"] == len(result.telemetry["events"])
        samples = json.loads(paths["samples.json"].read_text())
        assert "cycle" in samples["columns"]

    def test_serial_and_parallel_artifacts_byte_identical(self, tmp_path):
        config = secure_config(TELEMETRY)
        points = [("nw", config), ("bfs", config)]
        serial = Runner(
            horizon=HORIZON, warmup=WARMUP, telemetry_dir=tmp_path / "serial"
        )
        serial.prefetch(points)
        parallel = ParallelRunner(
            horizon=HORIZON,
            warmup=WARMUP,
            jobs=2,
            cache_path=tmp_path / "cache",
            telemetry_dir=tmp_path / "parallel",
        )
        parallel.prefetch(points)
        digest = config_key(config)[:12]
        for workload in ("nw", "bfs"):
            for name in ARTIFACT_NAMES:
                a = (tmp_path / "serial" / f"{workload}-{digest}" / name).read_bytes()
                b = (tmp_path / "parallel" / f"{workload}-{digest}" / name).read_bytes()
                assert a == b, (workload, name)

    def test_cached_payloads_free_of_telemetry(self, tmp_path):
        config = secure_config(TELEMETRY)
        runner = ParallelRunner(
            horizon=HORIZON,
            warmup=WARMUP,
            jobs=1,
            cache_path=tmp_path / "cache",
            telemetry_dir=tmp_path / "telemetry",
        )
        runner.prefetch([("nw", config)])
        for shard in (tmp_path / "cache").glob("shard-*.jsonl"):
            for line in shard.read_text().splitlines():
                assert "_telemetry" not in json.loads(line)["result"]

    def test_runner_without_telemetry_dir_writes_nothing(self, tmp_path):
        runner = Runner(horizon=HORIZON, warmup=WARMUP)
        result = runner.run("nw", secure_config(TELEMETRY))
        assert result.telemetry is not None
        assert runner._persist_telemetry("nw", "abc", result.telemetry) is None


class TestCli:
    def test_trace_command(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert (
            main(
                [
                    "trace",
                    "nw",
                    "--design",
                    "ctr_mac_bmt",
                    "--out",
                    str(out),
                    *FAST,
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "COUNTER" in text and "MAC" in text and "TREE" in text
        for name in ARTIFACT_NAMES:
            assert (out / name).exists()
        doc = json.loads((out / "trace.json").read_text())
        breakdown = doc["otherData"]["class_bytes"]
        assert breakdown["COUNTER"] > 0
        assert breakdown["MAC"] > 0
        assert breakdown["TREE"] > 0

    def test_stats_json_command(self, capsys):
        assert main(["stats", "nw", "--design", "baseline", "--json", *FAST]) == 0
        tree = json.loads(capsys.readouterr().out)
        assert tree["name"] == "gpu"
        assert "partition0" in tree["children"]
        counters = tree["children"]["partition0"]["children"]["dram"]["counters"]
        assert counters["bytes_total"] > 0

    def test_stats_text_command(self, capsys):
        assert main(["stats", "nw", "--design", "baseline", *FAST]) == 0
        assert "gpu.partition0.dram.bytes_total" in capsys.readouterr().out
