"""Split-counter block packing and overflow semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.secure.functional.counters import CounterBlock, CounterValue
from repro.secure.geometry import CounterGeometry


def fresh_block():
    store = bytearray(256)
    return CounterBlock(store, 64, CounterGeometry()), store


class TestMajorCounter:
    def test_starts_at_zero(self):
        block, _ = fresh_block()
        assert block.major == 0

    def test_set_get_roundtrip(self):
        block, _ = fresh_block()
        block.major = 123456789123456789
        assert block.major == 123456789123456789

    def test_128bit_values(self):
        block, _ = fresh_block()
        value = (1 << 127) | 12345
        block.major = value
        assert block.major == value

    def test_wraps_at_128_bits(self):
        block, _ = fresh_block()
        block.major = 1 << 128
        assert block.major == 0


class TestMinorCounters:
    def test_all_start_zero(self):
        block, _ = fresh_block()
        assert all(block.get_minor(i) == 0 for i in range(128))

    def test_set_get_single(self):
        block, _ = fresh_block()
        block.set_minor(5, 99)
        assert block.get_minor(5) == 99
        assert block.get_minor(4) == 0
        assert block.get_minor(6) == 0

    def test_rejects_out_of_range_index(self):
        block, _ = fresh_block()
        with pytest.raises(IndexError):
            block.get_minor(128)
        with pytest.raises(IndexError):
            block.set_minor(-1, 0)

    def test_rejects_oversized_value(self):
        block, _ = fresh_block()
        with pytest.raises(ValueError):
            block.set_minor(0, 128)

    @given(
        st.dictionaries(
            st.integers(0, 127), st.integers(0, 127), min_size=1, max_size=40
        )
    )
    @settings(max_examples=40)
    def test_independent_packing(self, assignments):
        """7-bit fields never clobber their neighbours."""
        block, _ = fresh_block()
        for index, value in assignments.items():
            block.set_minor(index, value)
        for index in range(128):
            assert block.get_minor(index) == assignments.get(index, 0)

    def test_packing_stays_inside_line(self):
        block, store = fresh_block()
        for i in range(128):
            block.set_minor(i, 127)
        block.major = (1 << 128) - 1
        # bytes outside [64, 64+128) untouched
        assert store[:64] == bytes(64)
        assert store[192:] == bytes(64)


class TestIncrement:
    def test_normal_increment(self):
        block, _ = fresh_block()
        assert block.increment(3) is False
        assert block.get_minor(3) == 1

    def test_overflow_resets_all_and_bumps_major(self):
        block, _ = fresh_block()
        block.set_minor(3, 127)
        block.set_minor(7, 50)
        assert block.increment(3) is True
        assert block.major == 1
        assert block.get_minor(3) == 0
        assert block.get_minor(7) == 0

    def test_value_for(self):
        block, _ = fresh_block()
        block.major = 9
        block.set_minor(2, 5)
        assert block.value_for(2) == CounterValue(major=9, minor=5)


class TestCounterValue:
    def test_seed_bytes_length(self):
        assert len(CounterValue(1, 2).seed_bytes()) == 10

    def test_seed_differs_by_minor(self):
        assert CounterValue(1, 2).seed_bytes() != CounterValue(1, 3).seed_bytes()

    def test_seed_differs_by_major(self):
        assert CounterValue(1, 2).seed_bytes() != CounterValue(2, 2).seed_bytes()

    def test_combined_concatenates(self):
        assert CounterValue(major=1, minor=0).combined == 128
        assert CounterValue(major=0, minor=5).combined == 5
