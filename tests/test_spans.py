"""Distributed tracing: trace context, span recording, end-to-end sweeps.

The acceptance bar: a sweep submitted over HTTP and drained by several
workers yields **one** correlated timeline — every store row, span
record, and ledger record shares the submit-time trace id, and the
parent links nest request ⊃ claim/execute ⊃ point ⊃ simulate.  Just as
important: with tracing off (the default for direct ``Runner`` use),
ledger output is bit-identical to what it was before spans existed.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.experiments.runner import Runner
from repro.jobs.store import SQLiteJobStore, iter_points, span_sink
from repro.jobs.service import SweepService
from repro.jobs.worker import Worker, backoff_jitter, build_config
from repro.obsv.ledger import canonical_points, ledger_points, read_ledger
from repro.obsv.logging import NULL_LOG, StructuredLogger, read_log
from repro.obsv.metrics import MetricsRegistry, snapshot_value
from repro.obsv.spans import (
    NULL_SPAN,
    NULL_SPANS,
    JsonlSpanSink,
    SpanContext,
    SpanRecorder,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    read_spans,
    span_tree,
    spans_to_chrome,
    validate_links,
)

HORIZON, WARMUP = 1200.0, 800.0
BENCHES = ["nw", "bfs"]
SPECS = [{"design": "baseline", "partitions": 2}]


def submit(store, **kwargs):
    kwargs.setdefault("horizon", HORIZON)
    kwargs.setdefault("warmup", WARMUP)
    return store.submit_sweep(iter_points(BENCHES, SPECS), **kwargs)


# ---------------------------------------------------------------------------
# trace context codec
# ---------------------------------------------------------------------------


class TestTraceparent:
    def test_round_trip(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        text = format_traceparent(trace_id, span_id)
        ctx = parse_traceparent(text)
        assert ctx == SpanContext(trace_id, span_id, sampled=True)
        assert ctx.traceparent() == text

    def test_unsampled_flag_round_trips(self):
        text = format_traceparent(new_trace_id(), new_span_id(), sampled=False)
        assert text.endswith("-00")
        assert parse_traceparent(text).sampled is False

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "garbage",
            "00-xyz-abc-01",
            "01-" + "a" * 32 + "-" + "b" * 16 + "-01",  # unknown version
            "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace id
            "00-" + "a" * 32 + "-" + "b" * 15 + "-01",  # short span id
            "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
            "00-" + "a" * 32 + "-" + "b" * 16 + "-zz",  # bad flags
        ],
    )
    def test_malformed_dropped_not_raised(self, bad):
        assert parse_traceparent(bad) is None

    def test_id_shapes(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        assert new_trace_id() != new_trace_id()


# ---------------------------------------------------------------------------
# recorder + sinks
# ---------------------------------------------------------------------------


class TestRecorder:
    def test_nested_spans_share_trace_and_link_parents(self, tmp_path):
        sink = JsonlSpanSink(tmp_path / "spans.jsonl")
        recorder = SpanRecorder(sink=sink)
        with recorder.start_span("outer", component="test") as outer:
            with recorder.start_span("inner", parent=outer) as inner:
                inner.event("tick", n=1)
        records = read_spans(tmp_path / "spans.jsonl")
        # children end (and emit) first in JSONL order.
        assert [r["name"] for r in records] == ["inner", "outer"]
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["trace_id"] == by_name["outer"]["trace_id"]
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["events"][0]["name"] == "tick"
        assert validate_links(records) == []

    def test_parent_as_traceparent_string(self):
        captured = []
        recorder = SpanRecorder(sink=captured.append)
        parent = format_traceparent(new_trace_id(), new_span_id())
        recorder.start_span("child", parent=parent).end()
        ctx = parse_traceparent(parent)
        assert captured[0]["trace_id"] == ctx.trace_id
        assert captured[0]["parent_id"] == ctx.span_id

    def test_exception_marks_error_status(self):
        captured = []
        recorder = SpanRecorder(sink=captured.append)
        with pytest.raises(RuntimeError):
            with recorder.start_span("boom"):
                raise RuntimeError("x")
        assert captured[0]["status"] == "error"

    def test_premeasured_record(self):
        captured = []
        recorder = SpanRecorder(sink=captured.append)
        record = recorder.record("claim", ts=123.0, duration_s=0.25,
                                 attrs={"seq": 7})
        assert record is captured[0]
        assert record["ts"] == 123.0 and record["duration_s"] == 0.25
        assert record["attrs"] == {"seq": 7}

    def test_sink_errors_are_swallowed(self):
        def bad_sink(record):
            raise OSError("disk full")

        recorder = SpanRecorder(sink=bad_sink)
        recorder.start_span("ok").end()  # must not raise

    def test_end_is_idempotent(self):
        captured = []
        recorder = SpanRecorder(sink=captured.append)
        span = recorder.start_span("once")
        span.end()
        span.end()
        assert len(captured) == 1

    def test_torn_line_skipped(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        recorder = SpanRecorder(sink=JsonlSpanSink(path))
        recorder.start_span("whole").end()
        with open(path, "a") as fh:
            fh.write('{"name": "torn')
        records = read_spans(path)
        assert [r["name"] for r in records] == ["whole"]

    def test_null_recorder_is_inert(self):
        assert NULL_SPANS.enabled is False
        span = NULL_SPANS.start_span("anything", parent="junk")
        assert span is NULL_SPAN
        assert span.context() is None and span.traceparent() is None
        span.set(a=1).event("e")
        with span:
            pass
        assert NULL_SPANS.record("x") is None


# ---------------------------------------------------------------------------
# export + rendering
# ---------------------------------------------------------------------------


def _fake_trace():
    trace = new_trace_id()
    root, child = new_span_id(), new_span_id()
    return [
        {"schema": 1, "event": "span", "trace_id": trace, "span_id": root,
         "parent_id": None, "name": "http.submit", "component": "service",
         "ts": 100.0, "duration_s": 0.5, "status": "ok", "attrs": {},
         "events": []},
        {"schema": 1, "event": "span", "trace_id": trace, "span_id": child,
         "parent_id": root, "name": "worker.execute", "component": "worker:w1",
         "ts": 100.1, "duration_s": 0.3, "status": "ok",
         "attrs": {"workload": "nw"},
         "events": [{"name": "lease.heartbeat", "ts": 100.2}]},
    ]


class TestExport:
    def test_chrome_export_shape(self):
        records = _fake_trace()
        doc = spans_to_chrome(records, meta={"sweep_id": "abc"})
        kinds = [e["ph"] for e in doc["traceEvents"]]
        assert kinds.count("M") == 2  # one lane per component
        assert kinds.count("X") == 2
        assert kinds.count("i") == 1
        x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x[0]["ts"] == 0.0  # relative to earliest span
        assert x[0]["args"]["trace_id"] == records[0]["trace_id"]
        assert x[1]["args"]["workload"] == "nw"
        assert doc["otherData"]["sweep_id"] == "abc"
        assert doc["otherData"]["origin_ts"] == 100.0

    def test_span_tree_nests_and_orphans_become_roots(self):
        records = _fake_trace()
        lines = span_tree(records)
        assert lines[0].startswith("http.submit")
        assert lines[1].startswith("  worker.execute")
        # drop the root: the child surfaces as an orphan root.
        lines = span_tree(records[1:])
        assert lines[0].startswith("worker.execute")

    def test_validate_links(self):
        records = _fake_trace()
        assert validate_links(records) == []
        orphan_only = records[1:]
        problems = validate_links(orphan_only)
        assert len(problems) == 1 and "unrecorded parent" in problems[0]
        assert validate_links(orphan_only,
                              roots=[records[0]["span_id"]]) == []
        mixed = [dict(records[0], trace_id=new_trace_id()), records[1]]
        assert any("multiple trace ids" in p for p in validate_links(mixed))


# ---------------------------------------------------------------------------
# structured logger
# ---------------------------------------------------------------------------


class TestStructuredLogger:
    def test_correlation_fields(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = StructuredLogger(path)
        logger.log("http.request", status=200, trace_id="t1", span_id="s1")
        logger.log("worker.start")
        records = read_log(path)
        assert records[0]["event"] == "http.request"
        assert records[0]["trace_id"] == "t1" and records[0]["span_id"] == "s1"
        assert "trace_id" not in records[1]  # only written when present
        assert all("ts" in r and r["level"] == "info" for r in records)

    def test_rollover(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = StructuredLogger(path, max_bytes=300)
        for i in range(20):
            logger.log("fill", i=i, pad="x" * 40)
        rolled = tmp_path / "log.jsonl.1"
        assert path.exists() and rolled.exists()
        # no line is ever split across the roll.
        for p in (path, rolled):
            for line in p.read_text().splitlines():
                json.loads(line)

    def test_null_logger_is_inert(self):
        NULL_LOG.log("anything", level="error", junk=object())


# ---------------------------------------------------------------------------
# untraced path: golden identity
# ---------------------------------------------------------------------------


class TestUntracedIdentity:
    def test_untraced_ledger_has_no_trace_fields(self, tmp_path):
        runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHES,
                        ledger_path=tmp_path / "plain.jsonl")
        runner.run("nw", build_config(SPECS[0]))
        records = ledger_points(read_ledger(tmp_path / "plain.jsonl"))
        assert records
        for record in records:
            assert "trace_id" not in record and "span_id" not in record

    def test_traced_run_is_canonically_identical(self, tmp_path):
        plain = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHES,
                       ledger_path=tmp_path / "plain.jsonl")
        plain.run("nw", build_config(SPECS[0]))

        sink = JsonlSpanSink(tmp_path / "spans.jsonl")
        recorder = SpanRecorder(sink=sink)
        traced = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHES,
                        ledger_path=tmp_path / "traced.jsonl")
        root = recorder.start_span("test.root", component="test")
        traced.set_trace_context(recorder, root.context())
        traced.run("nw", build_config(SPECS[0]))
        root.end()

        traced_records = ledger_points(read_ledger(tmp_path / "traced.jsonl"))
        assert all(r.get("trace_id") == root.trace_id for r in traced_records)
        assert canonical_points(read_ledger(tmp_path / "plain.jsonl")) == \
            canonical_points(read_ledger(tmp_path / "traced.jsonl"))
        # and the spans themselves nest point ⊃ simulate under the root.
        spans = read_spans(tmp_path / "spans.jsonl")
        by_name = {s["name"]: s for s in spans}
        assert by_name["runner.point"]["parent_id"] == root.span_id
        assert (by_name["runner.simulate"]["parent_id"]
                == by_name["runner.point"]["span_id"])


# ---------------------------------------------------------------------------
# worker mechanics
# ---------------------------------------------------------------------------


class TestWorkerBackoff:
    def test_jitter_deterministic_per_worker(self):
        assert backoff_jitter("w1") == backoff_jitter("w1")
        assert 0.75 <= backoff_jitter("w1") < 1.25
        factors = {backoff_jitter(f"w{i}") for i in range(16)}
        assert len(factors) > 1  # distinct workers desynchronize

    def test_idle_backoff_caps_and_scales(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            worker = Worker(store, worker_id="w1", poll_s=0.1, idle_cap_s=1.0)
            worker._idle_streak = 0
            first = worker._idle_sleep_s()
            worker._idle_streak = 50  # far past the cap
            capped = worker._idle_sleep_s()
            assert first == pytest.approx(0.1 * worker.jitter)
            assert capped == pytest.approx(1.0 * worker.jitter)


# ---------------------------------------------------------------------------
# end-to-end: one trace across store, workers, ledgers
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def test_two_worker_drain_yields_one_timeline(self, tmp_path):
        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            sweep_id = submit(store)
            trace_id = store.progress(sweep_id)["trace_id"]
            root_span = store.progress(sweep_id)["root_span"]
        assert trace_id and root_span

        def drain(worker_id):
            with SQLiteJobStore(path) as store:
                Worker(store, worker_id=worker_id, poll_s=0.01,
                       ledger_dir=tmp_path / "ledgers").run()

        threads = [threading.Thread(target=drain, args=(f"w{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        with SQLiteJobStore(path) as store:
            results = store.results(sweep_id)
            spans = store.spans(sweep_id)
        assert len(results) == len(BENCHES) * len(SPECS)

        # every job row carries the sweep's traceparent.
        for row in results:
            ctx = parse_traceparent(row["traceparent"])
            assert ctx.trace_id == trace_id and ctx.span_id == root_span

        # every persisted span shares the trace; links are consistent.
        assert spans and {s["trace_id"] for s in spans} == {trace_id}
        assert validate_links(spans, roots=[root_span]) == []
        by_id = {s["span_id"]: s for s in spans}
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        assert len(by_name["runner.point"]) == len(results)
        assert len(by_name["runner.simulate"]) == len(results)
        # nesting: execute ⊃ point ⊃ simulate, execute under the root.
        for point in by_name["runner.point"]:
            parent = by_id[point["parent_id"]]
            assert parent["name"] == "worker.execute"
            assert parent["parent_id"] == root_span
        for sim in by_name["runner.simulate"]:
            assert by_id[sim["parent_id"]]["name"] == "runner.point"
        # claim spans are pre-measured against the same root.
        for claim in by_name["worker.claim"]:
            assert claim["parent_id"] == root_span
            assert claim["duration_s"] >= 0.0

        # both workers' ledger records carry the trace and a live span id.
        merged = []
        for ledger in sorted((tmp_path / "ledgers").glob("worker-*.jsonl")):
            merged.extend(ledger_points(read_ledger(ledger)))
        assert len(merged) == len(results)
        for record in merged:
            assert record["trace_id"] == trace_id
            assert record["span_id"] in by_id

    def test_tracing_disabled_worker_records_no_spans(self, tmp_path):
        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            sweep_id = submit(store)
        with SQLiteJobStore(path) as store:
            Worker(store, worker_id="w1", poll_s=0.01, tracing=False).run()
            assert store.spans(sweep_id) == []
            assert store.counts(sweep_id)["done"] == len(BENCHES) * len(SPECS)

    def test_store_survives_v2_reopen(self, tmp_path):
        """A store created before the spans schema upgrades in place."""
        import sqlite3

        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            submit(store)
        # simulate a pre-v3 database: drop the new columns' metadata.
        with sqlite3.connect(path) as conn:
            conn.execute("PRAGMA user_version = 2")
        with SQLiteJobStore(path) as store:  # must not raise
            assert store.counts()["pending"] > 0


# ---------------------------------------------------------------------------
# service: HTTP trace root, /spans endpoint, reaper
# ---------------------------------------------------------------------------


def http_json(url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


class TestService:
    @pytest.fixture()
    def service(self, tmp_path):
        svc = SweepService(tmp_path / "q.sqlite", port=0,
                           access_log=tmp_path / "access.jsonl")
        svc.run_in_thread()
        try:
            yield svc
        finally:
            svc.shutdown()
            svc.server_close()

    def test_http_submit_is_the_trace_root(self, service, tmp_path):
        status, doc = http_json(service.url + "/sweeps", {
            "workloads": BENCHES, "designs": ["baseline"], "partitions": 2,
            "horizon": HORIZON, "warmup": WARMUP,
        })
        assert status == 201 and doc["trace_id"]
        sweep_id = doc["sweep_id"]

        store = SQLiteJobStore(service.store_path)
        Worker(store, worker_id="w1", poll_s=0.01).run()
        store.close()

        status, spans_doc = http_json(service.url + doc["spans"])
        assert status == 200
        assert spans_doc["trace_id"] == doc["trace_id"]
        spans = spans_doc["spans"]
        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["http.submit"]
        assert roots[0]["span_id"] == spans_doc["root_span"]
        assert roots[0]["attrs"]["http.status"] == 201
        assert {s["trace_id"] for s in spans} == {doc["trace_id"]}
        assert validate_links(spans) == []

        # the access log correlates the submit request to the same trace.
        submit_logs = [r for r in read_log(tmp_path / "access.jsonl")
                       if r.get("method") == "POST"]
        assert submit_logs and submit_logs[0]["trace_id"] == doc["trace_id"]
        assert submit_logs[0]["event"] == "http.request"

        # the dashboard renders the timeline from the same spans.
        with urllib.request.urlopen(
            service.url + f"/sweeps/{sweep_id}/dashboard"
        ) as response:
            html = response.read().decode()
        assert "Sweep timeline" in html and "http.submit" in html

    def test_reaper_requeues_without_polling(self, tmp_path):
        svc = SweepService(tmp_path / "q.sqlite", port=0,
                           reaper_interval_s=0.05)
        svc.run_in_thread()
        try:
            with SQLiteJobStore(svc.store_path) as store:
                sweep_id = submit(store)
                assert store.claim("doomed", lease_s=0.01) is not None
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    if store.counts(sweep_id)["running"] == 0:
                        break
                    time.sleep(0.02)
                counts = store.counts(sweep_id)
                assert counts["running"] == 0  # reaped, no HTTP traffic
                assert counts["pending"] == len(BENCHES) * len(SPECS)
            passes = snapshot_value(svc.metrics.snapshot(),
                                    "repro_reaper_passes_total")
            assert passes >= 1
        finally:
            svc.shutdown()
            svc.server_close()

    def test_reaper_disabled_with_zero_interval(self, tmp_path):
        svc = SweepService(tmp_path / "q.sqlite", port=0,
                           reaper_interval_s=0)
        try:
            assert svc._reaper_thread is None
        finally:
            svc.server_close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestSpansCli:
    def test_spans_command_prints_tree_and_writes_chrome(self, tmp_path,
                                                         capsys):
        from repro.cli import main

        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            sweep_id = submit(store)
        with SQLiteJobStore(path) as store:
            Worker(store, worker_id="w1", poll_s=0.01).run()

        chrome = tmp_path / "trace.json"
        code = main(["spans", sweep_id, "--store", str(path),
                     "--chrome", str(chrome)])
        out = capsys.readouterr().out
        assert code == 0
        assert "runner.simulate" in out and "worker.execute" in out
        assert "warning" not in out  # root span is known via progress()
        doc = json.loads(chrome.read_text())
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(x_events) >= len(BENCHES) * len(SPECS)
        assert doc["otherData"]["sweep_id"] == sweep_id

    def test_unknown_sweep_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        with SQLiteJobStore(tmp_path / "q.sqlite"):
            pass
        code = main(["spans", "0" * 12, "--store",
                     str(tmp_path / "q.sqlite")])
        assert code == 1
        assert "unknown sweep" in capsys.readouterr().err
