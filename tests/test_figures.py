"""Figure drivers: structure and sanity of every experiment output.

These run on a micro configuration (2 partitions, short windows, 3
benchmarks) — they validate shapes and invariants, not the paper-scale
numbers (see EXPERIMENTS.md and benchmarks/ for those).
"""

import pytest

from repro.experiments import figures
from repro.experiments.runner import Runner

BENCHES = ["nw", "streamcluster", "heartwall"]
PARTITIONS = 2


@pytest.fixture(scope="module")
def runner():
    return Runner(horizon=2000, warmup=1500, benchmarks=BENCHES)


def assert_series(table, rows, columns):
    for row in rows:
        assert row in table, f"missing row {row}"
        for column in columns:
            assert column in table[row], f"missing column {column} in {row}"
            assert table[row][column] >= 0


class TestTable4(object):
    def test_structure(self, runner):
        table = figures.table4(runner, PARTITIONS)
        assert_series(table, BENCHES, ["bw_util_%", "ipc_%peak", "paper_bw_lo_%"])


class TestFig3:
    def test_columns(self, runner):
        table = figures.fig3(runner, PARTITIONS)
        assert_series(
            table, BENCHES + ["Gmean"], ["secureMem", "0_crypto", "perf_mdc", "large_mdc"]
        )

    def test_perf_mdc_close_to_baseline(self, runner):
        table = figures.fig3(runner, PARTITIONS)
        assert table["Gmean"]["perf_mdc"] > 0.9

    def test_secure_mem_slower_than_ideal(self, runner):
        table = figures.fig3(runner, PARTITIONS)
        assert table["Gmean"]["secureMem"] <= table["Gmean"]["perf_mdc"]

    def test_zero_crypto_does_not_help(self, runner):
        table = figures.fig3(runner, PARTITIONS)
        gap = abs(table["Gmean"]["0_crypto"] - table["Gmean"]["secureMem"])
        assert gap < 0.1


class TestFig4:
    def test_fractions_per_benchmark(self, runner):
        table = figures.fig4(runner, PARTITIONS)
        for bench in BENCHES:
            assert sum(table[bench].values()) == pytest.approx(1.0)

    def test_average_row(self, runner):
        table = figures.fig4(runner, PARTITIONS)
        assert sum(table["Average"].values()) == pytest.approx(1.0)

    def test_metadata_is_substantial(self, runner):
        table = figures.fig4(runner, PARTITIONS)
        assert table["Average"]["ctr"] + table["Average"]["mac"] > 0.15


class TestFig5:
    def test_ratios_in_unit_interval(self, runner):
        table = figures.fig5(runner, PARTITIONS)
        for row in table.values():
            for value in row.values():
                assert 0 <= value <= 1

    def test_streaming_bench_dominated_by_secondary(self, runner):
        table = figures.fig5(runner, PARTITIONS)
        assert table["streamcluster"]["ctr"] > 0.5


class TestFig6:
    def test_monotone_in_mshrs_for_streaming(self, runner):
        table = figures.fig6(runner, PARTITIONS, mshr_counts=(0, 64))
        assert table["streamcluster"]["mshr_64"] >= table["streamcluster"]["mshr_0"]


class TestFig7:
    def test_bigger_caches_no_worse(self, runner):
        table = figures.fig7(runner, PARTITIONS, sizes_kb=(2, 64))
        assert table["Gmean"]["64KB"] >= table["Gmean"]["2KB"] * 0.95


class TestFig8And9:
    def test_fig8_columns(self, runner):
        table = figures.fig8(runner, PARTITIONS)
        assert_series(table, ["Gmean"], ["separate", "unified"])

    def test_fig9_covers_all_kinds(self, runner):
        table = figures.fig9(runner, PARTITIONS)
        assert set(table) == {"ctr", "mac", "bmt", "wb_txn"}
        for kind in ("ctr", "mac", "bmt"):
            assert set(table[kind]) == {"separate", "unified"}
            for value in table[kind].values():
                assert 0 <= value <= 1
        for value in table["wb_txn"].values():
            assert value >= 0


class TestFig10And11:
    def test_histograms(self):
        runner = Runner(horizon=1200, warmup=0, benchmarks=["fdtd2d"])
        out = figures.fig10_11(runner, PARTITIONS)
        assert set(out) == {"fig10_ctr", "fig11_mac"}
        for table in out.values():
            assert set(table) == {"separate", "unified"}
            for histogram in table.values():
                assert sum(histogram.values()) > 0

    def test_zero_distance_dominates_for_streaming(self):
        runner = Runner(horizon=1200, warmup=0, benchmarks=["fdtd2d"])
        out = figures.fig10_11(runner, PARTITIONS)
        histogram = out["fig10_ctr"]["separate"]
        reused = {k: v for k, v in histogram.items() if k != "cold"}
        assert histogram["0"] == max(reused.values())


class TestFig12:
    def test_columns(self, runner):
        table = figures.fig12(runner, PARTITIONS)
        assert_series(table, ["Gmean"], ["aes_1", "aes_2"])

    def test_one_engine_is_close_to_two(self, runner):
        table = figures.fig12(runner, PARTITIONS)
        assert table["Gmean"]["aes_1"] > 0.8 * table["Gmean"]["aes_2"]


class TestFig13And14:
    def test_fig13_l2_sweep(self, runner):
        table = figures.fig13(runner, PARTITIONS, l2_sizes_mb=(4.0, 6.0))
        assert_series(table, ["Gmean"], ["secureMem_4MB", "secureMem_6MB"])

    def test_fig14_miss_rates(self, runner):
        table = figures.fig14(runner, PARTITIONS)
        for bench in BENCHES:
            assert 0 <= table[bench]["l2_miss_rate"] <= 1


class TestFig15To17:
    def test_fig15_latency_ordering(self, runner):
        table = figures.fig15(runner, PARTITIONS, latencies=(40, 160))
        assert table["Gmean"]["direct_160"] <= table["Gmean"]["direct_40"] * 1.02

    def test_fig16_direct_beats_ctr_bmt(self, runner):
        table = figures.fig16(runner, PARTITIONS)
        assert table["Gmean"]["direct_40"] >= table["Gmean"]["ctr_bmt"]

    def test_fig17_columns(self, runner):
        table = figures.fig17(runner, PARTITIONS)
        assert_series(
            table, ["Gmean"], ["ctr_mac_bmt", "direct_mac", "direct_mac_mt"]
        )

    def test_fig17_direct_mac_beats_ctr_mac_bmt(self, runner):
        table = figures.fig17(runner, PARTITIONS)
        assert table["Gmean"]["direct_mac"] >= table["Gmean"]["ctr_mac_bmt"] * 0.9


class TestStaticTables:
    def test_table2_counter_mode_total(self):
        table = figures.table2()
        assert table["total"]["counter_mode_MB"] == pytest.approx(290.14, abs=0.2)

    def test_table2_direct_total(self):
        table = figures.table2()
        assert table["total"]["direct_MB"] == pytest.approx(273.1, abs=0.2)

    def test_table6_7(self):
        table = figures.table6_7()
        assert table["AES engine"]["scaled_12nm_mm2"] == pytest.approx(0.0036, rel=0.01)
        assert table["L2 displaced"]["kb"] == pytest.approx(1526, rel=0.02)

    def test_registry_complete(self):
        paper = {
            "table4", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        }
        extensions = {"ablations", "occupancy"}
        assert paper | extensions == set(figures.ALL_FIGURES)
