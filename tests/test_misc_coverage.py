"""Coverage for paths the focused suites skip: CLI sweep, simulate's trace
return, runner sweep, strided layout, functional edge cases."""


from repro import GpuConfig, MetadataKind, simulate
from repro.cli import main
from repro.experiments import designs
from repro.experiments.runner import Runner
from repro.secure.functional import SecureMemory, SecureMemoryMode
from repro.workloads import patterns
from repro.workloads.base import WorkloadSpec
from repro.workloads.suite import get_benchmark

KB = 1024
FAST = ["--horizon", "1000", "--warmup", "600", "--partitions", "2"]


class TestCliSweep:
    def test_sweep_plain(self, capsys, monkeypatch):
        # restrict the sweep to two benchmarks for speed
        monkeypatch.setattr(
            "repro.workloads.suite.BENCHMARK_ORDER", ["nw", "heartwall"]
        )
        monkeypatch.setattr(
            "repro.experiments.runner.BENCHMARK_ORDER", ["nw", "heartwall"]
        )
        assert main(["sweep", "--design", "baseline", *FAST]) == 0
        out = capsys.readouterr().out
        assert "nw" in out and "ipc" in out

    def test_sweep_normalized(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.experiments.runner.BENCHMARK_ORDER", ["nw"])
        assert main(["sweep", "--design", "direct_40", "--normalize", *FAST]) == 0
        out = capsys.readouterr().out
        assert "norm_ipc" in out
        assert "Gmean" in out

    def test_figure_fig14(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.experiments.runner.BENCHMARK_ORDER", ["nw"])
        assert main(["figure", "fig14", *FAST]) == 0
        assert "l2_miss_rate" in capsys.readouterr().out


class TestSimulateInterfaces:
    def test_metadata_trace_tuple_return(self):
        config = designs.build_gpu(designs.separate(), 2)
        result, trace = simulate(
            config, get_benchmark("nw"), horizon=1200, metadata_trace=True
        )
        assert result.ipc >= 0
        assert all(isinstance(kind, MetadataKind) for kind, _ in trace)

    def test_runner_sweep_covers_benchmarks(self):
        runner = Runner(horizon=800, warmup=400, benchmarks=["nw", "heartwall"])
        results = runner.sweep(designs.build_gpu(None, 2))
        assert set(results) == {"nw", "heartwall"}


class TestStridedLayout:
    def test_strided_streaming_simulates(self):
        spec = WorkloadSpec(
            name="strided",
            category="intensive",
            trace_factory=patterns.streaming,
            working_set=8 * 1024 * 1024,
            warps_per_sm=8,
            extra={"layout": "strided"},
        )
        result = simulate(GpuConfig.scaled(num_partitions=2), spec, horizon=1500)
        assert result.instructions > 0

    def test_strided_lockstep_is_bursty(self):
        """Grid-stride lockstep concentrates accesses on one metadata line,
        so its misses are overwhelmingly secondary (in-flight)."""
        def spec_with(layout):
            return WorkloadSpec(
                name=layout,
                category="intensive",
                trace_factory=patterns.streaming,
                working_set=32 * 1024 * 1024,
                warps_per_sm=16,
                sectors_per_access=8,
                extra={"layout": layout},
            )

        config = designs.build_gpu(designs.separate(), 2)
        strided = simulate(config, spec_with("strided"), horizon=2500, warmup=2000)
        assert strided.metadata[MetadataKind.COUNTER]["accesses"] > 0
        assert strided.secondary_miss_ratio(MetadataKind.COUNTER) > 0.5


class TestFunctionalEdges:
    def test_read_of_never_written_line_is_stable(self):
        memory = SecureMemory(protected_bytes=8 * KB, mode=SecureMemoryMode.CTR_MAC_BMT)
        first = memory.read(512, 32)
        second = memory.read(512, 32)
        assert first == second  # garbage, but verified garbage

    def test_zero_length_write_is_noop(self):
        memory = SecureMemory(protected_bytes=8 * KB, mode=SecureMemoryMode.DIRECT_MAC)
        before = bytes(memory.store)
        memory.write(64, b"")
        assert bytes(memory.store) == before

    def test_whole_range_write(self):
        memory = SecureMemory(protected_bytes=4 * KB, mode=SecureMemoryMode.DIRECT)
        blob = bytes(range(256)) * 16
        memory.write(0, blob)
        assert memory.read(0, 4 * KB) == blob

    def test_snapshot_is_immutable_copy(self):
        memory = SecureMemory(protected_bytes=4 * KB, mode=SecureMemoryMode.CTR)
        snap = memory.snapshot()
        memory.write(0, b"mutate")
        assert snap != memory.snapshot()


class TestReportEdge:
    def test_series_with_empty_rows(self):
        from repro.analysis.report import render_series_table

        out = render_series_table("t", {})
        assert out.startswith("t")


class TestSmallSurfaces:
    def test_engine_finalize_is_safe(self):
        from repro.common.stats import StatGroup
        from repro.secure.engine import SecureEngine
        from repro.secure.layout import MetadataLayout
        from repro.sim.dram import DramChannel
        from repro.sim.event import EventQueue

        secure = designs.separate()
        gpu = GpuConfig.scaled(num_partitions=1, secure=secure)
        engine = SecureEngine(
            secure,
            gpu,
            DramChannel(gpu.dram, gpu.core_clock_mhz),
            EventQueue(),
            MetadataLayout(1024 * 1024),
            StatGroup("s"),
        )
        engine.finalize()  # explicit no-op hook

    def test_package_main_importable(self):
        import importlib

        cli = importlib.import_module("repro.cli")
        assert callable(cli.main)

    def test_version_exported(self):
        import repro

        assert repro.__version__
