"""Latency decomposition: histograms, hop tagging, stalls, bottleneck report."""

import dataclasses
import json

import pytest

from repro.analysis.bottleneck import (
    dominant_overhead,
    hop_rows,
    overhead_components,
    render_bottleneck_report,
    stall_rows,
)
from repro.cli import main
from repro.common.config import (
    EncryptionMode,
    GpuConfig,
    IntegrityMode,
    SecureMemoryConfig,
    TelemetryConfig,
)
from repro.common.stats import StatGroup
from repro.experiments import designs
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import result_to_dict
from repro.secure.layout import MetadataLayout
from repro.sim.event import EventQueue
from repro.sim.gpu import simulate
from repro.sim.partition import MemoryPartition
from repro.telemetry import write_artifacts
from repro.telemetry.latency import (
    ALL_HOPS,
    HOP_E2E,
    NULL_LATENCY,
    LatencyRecorder,
    LogHistogram,
    conservation_check,
)
from repro.telemetry.traffic import class_bytes_from_result
from repro.workloads.suite import get_benchmark

MB = 1024 * 1024
PARTITIONS = 2
HORIZON = 4_000
WARMUP = 2_000

#: latency histograms only — no event ring, no sampler.
LATENCY_ONLY = TelemetryConfig(
    enabled=True, trace_events=False, sample_every=0.0, latency_histograms=True
)


def secure_config(telemetry=None):
    config = designs.build_gpu(designs.secure_mem(64), num_partitions=PARTITIONS)
    if telemetry is not None:
        config = dataclasses.replace(config, telemetry=telemetry)
    return config


_CACHE = {}


def secure_bfs_result():
    """One telemetry-on secure bfs run, shared by the assertion tests."""
    if "bfs" not in _CACHE:
        _CACHE["bfs"] = simulate(
            secure_config(LATENCY_ONLY),
            get_benchmark("bfs"),
            horizon=HORIZON,
            warmup=WARMUP,
        )
    return _CACHE["bfs"]


class TestLogHistogram:
    def test_bucket_boundaries(self):
        hist = LogHistogram()
        expected_bucket = {0.0: 0, 0.5: 0, 1.0: 1, 2.0: 2, 3.9: 2, 4.0: 3, 1024.0: 11}
        for value, bucket in expected_bucket.items():
            hist.record(value)
            assert bucket in hist.buckets, value
            lo, hi = LogHistogram.bucket_bounds(bucket)
            assert lo <= value < hi
        assert hist.n == len(expected_bucket)

    def test_bucket_bounds_partition_the_axis(self):
        # consecutive buckets tile [0, 2^k) with no gap or overlap.
        edges = [LogHistogram.bucket_bounds(i) for i in range(12)]
        assert edges[0] == (0.0, 1.0)
        for (_, hi), (lo, _) in zip(edges, edges[1:]):
            assert hi == lo

    def test_exact_quantiles_on_known_inputs(self):
        hist = LogHistogram()
        for value in [1.0, 2.0, 4.0, 8.0]:
            hist.record(value)
        # each value is alone in its bucket, so bucket means are exact.
        assert hist.quantile(0.50) == 2.0
        assert hist.quantile(0.95) == 8.0
        assert hist.quantile(0.99) == 8.0
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 8.0
        assert hist.mean == pytest.approx(3.75)
        assert (hist.min, hist.max) == (1.0, 8.0)

    def test_empty_quantile_is_zero(self):
        assert LogHistogram().quantile(0.99) == 0.0
        assert LogHistogram().mean == 0.0

    def test_negative_values_clamp_to_zero(self):
        hist = LogHistogram()
        hist.record(-5.0)
        assert hist.buckets == {0: [1.0, 0.0]}
        assert hist.min == 0.0

    def test_merge_is_associative(self):
        def build(values):
            hist = LogHistogram()
            for value in values:
                hist.record(value)
            return hist

        samples = ([0.0, 3.0, 17.0], [1.0, 1.0, 250.0], [4.5, 9.0])
        left = build(samples[0])
        left.merge_from(build(samples[1]))
        left.merge_from(build(samples[2]))
        inner = build(samples[1])
        inner.merge_from(build(samples[2]))
        right = build(samples[0])
        right.merge_from(inner)
        assert left.to_dict() == right.to_dict()
        flat = build([v for group in samples for v in group])
        assert left.to_dict() == flat.to_dict()

    def test_round_trip(self):
        hist = LogHistogram()
        for value in [0.0, 2.5, 100.0]:
            hist.record(value)
        restored = LogHistogram.from_dict(hist.to_dict())
        assert restored.to_dict() == hist.to_dict()
        # and the restored histogram keeps merging correctly.
        extra = LogHistogram()
        extra.record(7.0)
        hist.merge_from(extra)
        restored.merge_from(extra)
        assert restored.to_dict() == hist.to_dict()


class TestRecorder:
    def test_export_shape_and_sorting(self):
        rec = LatencyRecorder()
        rec.record("dram", "MAC", 10.0, 200.0)
        rec.record("dram", "DATA", 0.0, 100.0)
        rec.stall("dram_queue", 10.0)
        rec.account_bytes("MAC", 32.0)
        export = rec.export()
        assert list(export["hops"]["dram"]) == ["DATA", "MAC"]
        assert export["stalls"]["dram_queue"] == {"events": 1.0, "cycles": 10.0}
        assert export["class_bytes"] == {"MAC": 32.0}
        assert export["class_transfers"] == {"MAC": 1.0}

    def test_clear_forgets_everything(self):
        rec = LatencyRecorder()
        rec.record("l2", "DATA", 1.0, 2.0)
        rec.stall("dram_queue", 3.0)
        rec.account_bytes("DATA", 32.0)
        rec.clear()
        assert rec.export() == {
            "hops": {},
            "stalls": {},
            "class_bytes": {},
            "class_transfers": {},
        }

    def test_null_recorder_is_inert(self):
        assert NULL_LATENCY.enabled is False
        NULL_LATENCY.record("l2", "DATA", 1.0, 2.0)
        NULL_LATENCY.stall("dram_queue", 3.0)
        NULL_LATENCY.account_bytes("DATA", 32.0)
        NULL_LATENCY.clear()
        assert NULL_LATENCY.export() is None

    def test_conservation_check_flags_mismatch(self):
        rec = LatencyRecorder()
        rec.account_bytes("DATA", 64.0)
        good = conservation_check(rec.export(), {"DATA": 64.0})
        assert good["ok"] is True
        bad = conservation_check(rec.export(), {"DATA": 96.0})
        assert bad["ok"] is False
        assert bad["classes"]["DATA"]["delta"] == pytest.approx(-32.0)


class TestHopDecomposition:
    """Hand-built scenario: per-hop cycles must sum to end-to-end cycles."""

    @staticmethod
    def make_partition(latency):
        secure = SecureMemoryConfig(
            encryption=EncryptionMode.NONE, integrity=IntegrityMode.NONE
        )
        config = GpuConfig.scaled(num_partitions=PARTITIONS, secure=secure)
        events = EventQueue()
        layout = MetadataLayout(64 * MB)
        partition = MemoryPartition(
            0, config, events, layout, StatGroup("p"), latency=latency
        )
        return partition, events

    def test_two_access_hop_sum_equals_e2e(self):
        rec = LatencyRecorder()
        partition, events = self.make_partition(rec)
        done = []
        partition.access(0.0, 0x40, False, done.append)  # cold miss -> DRAM
        events.run()
        partition.access(events.now, 0x40, False, done.append)  # L2 hit
        events.run()
        assert len(done) == 2

        e2e = rec.histogram(HOP_E2E, "DATA")
        assert e2e is not None and e2e[1].n == 2
        hop_cycles = 0.0
        export = rec.export()
        for hop, classes in export["hops"].items():
            if hop == HOP_E2E:
                continue
            for data in classes.values():
                hop_cycles += data["queue"]["sum"] + data["service"]["sum"]
        assert hop_cycles == pytest.approx(e2e[1].total)
        # the decomposition actually spans L2 and DRAM, not one catch-all.
        assert "l2" in export["hops"] and "dram" in export["hops"]

    def test_disabled_recorder_records_nothing(self):
        partition, events = self.make_partition(None)
        done = []
        partition.access(0.0, 0x40, False, done.append)
        events.run()
        assert len(done) == 1
        assert partition._lat is NULL_LATENCY


class TestSecureWorkload:
    def test_latency_export_present(self):
        result = secure_bfs_result()
        latency = result.telemetry["latency"]
        assert latency is not None
        for hop in ("l2", "mshr", "crypto", "dram", "e2e"):
            assert hop in latency["hops"], hop
        assert set(latency["hops"]).issubset(set(ALL_HOPS))

    def test_dram_queueing_dominates_crypto(self):
        # the paper's causal claim: secure-mode overhead is bandwidth
        # contention (DRAM queueing), not crypto service latency.
        latency = secure_bfs_result().telemetry["latency"]
        stalls = latency["stalls"]
        assert stalls["dram_queue"]["cycles"] > stalls["crypto_serialization"]["cycles"]
        assert dominant_overhead(latency).startswith("dram")

    def test_byte_conservation_is_exact(self):
        result = secure_bfs_result()
        latency = result.telemetry["latency"]
        check = conservation_check(latency, class_bytes_from_result(result))
        assert check["ok"] is True
        assert check["total_observed"] == check["total_expected"]
        # metadata classes actually move bytes on the secure design.
        for cls in ("COUNTER", "MAC", "DATA"):
            assert latency["class_bytes"][cls] > 0

    def test_latency_only_zero_drift(self):
        workload = get_benchmark("bfs")
        off = simulate(secure_config(), workload, horizon=HORIZON, warmup=WARMUP)
        on = secure_bfs_result()
        assert result_to_dict(off) == result_to_dict(on)

    def test_latency_histograms_can_be_disabled(self):
        config = secure_config(
            dataclasses.replace(LATENCY_ONLY, latency_histograms=False)
        )
        result = simulate(
            config, get_benchmark("bfs"), horizon=HORIZON, warmup=WARMUP
        )
        assert result.telemetry["latency"] is None


class TestBottleneckAnalysis:
    def test_hop_rows_pipeline_order(self):
        rec = LatencyRecorder()
        rec.record("dram", "DATA", 1.0, 2.0)
        rec.record("sm_mem", "DATA", 0.0, 3.0)
        rec.record("l2", "DATA", 0.0, 1.0)
        rows = hop_rows(rec.export())
        assert [r["hop"] for r in rows] == ["sm_mem", "l2", "dram"]

    def test_stall_rows_sorted_by_cycles(self):
        rec = LatencyRecorder()
        rec.stall("crypto_serialization", 5.0)
        rec.stall("dram_queue", 50.0)
        rows = stall_rows(rec.export())
        assert [r["cause"] for r in rows] == ["dram_queue", "crypto_serialization"]

    def test_overhead_components_and_dominant(self):
        rec = LatencyRecorder()
        rec.stall("dram_queue", 100.0)
        rec.stall("crypto_serialization", 10.0)
        components = overhead_components(rec.export())
        assert components["dram_queue"] == 100.0
        assert components["crypto"] == 10.0
        assert dominant_overhead(rec.export()) == "dram_queue"
        assert dominant_overhead(LatencyRecorder().export()) == ""

    def test_render_report_sections(self):
        latency = secure_bfs_result().telemetry["latency"]
        report = render_bottleneck_report(
            latency, class_bytes_from_result(secure_bfs_result())
        )
        assert "per-hop latency" in report
        assert "top stall causes" in report
        assert "<-- dominant" in report
        assert "byte conservation vs DRAM stats: OK" in report


class TestArtifacts:
    def test_latency_json_written(self, tmp_path):
        result = secure_bfs_result()
        paths = write_artifacts(tmp_path, result.telemetry)
        doc = json.loads(paths["latency.json"].read_text())
        assert "hops" in doc["latency"]
        assert doc["conservation"]["ok"] is True


class TestHeartbeat:
    def test_one_line_per_completed_point(self, tmp_path):
        heartbeat = tmp_path / "hb.jsonl"
        runner = ParallelRunner(
            horizon=1_200, warmup=800, jobs=1, heartbeat_path=heartbeat
        )
        points = [
            ("bfs", designs.build_gpu(None, PARTITIONS)),
            ("nw", designs.build_gpu(None, PARTITIONS)),
        ]
        simulated = runner.prefetch(points)
        lines = [json.loads(x) for x in heartbeat.read_text().splitlines()]
        assert simulated == 2 and len(lines) == 4
        # the batch opens with a "start" line carrying the planned total,
        # so a consumer knows the denominator before any point lands.
        start_line = lines[0]
        assert start_line["event"] == "start"
        assert start_line["total"] == 2 and start_line["ts"] > 0
        points_lines, done_line = lines[1:3], lines[3]
        assert [line["done"] for line in points_lines] == [1, 2]
        for line in points_lines:
            assert line["total"] == 2
            assert line["elapsed_s"] >= 0.0
            assert set(line) == {
                "ts", "done", "total", "elapsed_s", "points_per_s", "eta_s",
            }
        assert points_lines[-1]["eta_s"] == 0.0
        # the batch closes with a terminal "done" line: a finished sweep
        # is distinguishable from one whose process died mid-batch.
        assert done_line["event"] == "done"
        assert done_line["done"] == done_line["total"] == 2
        assert done_line["status"] == "ok" and done_line["failures"] == 0
        # a fully cached batch simulates nothing and emits no heartbeat.
        assert runner.prefetch(points) == 0
        assert len(heartbeat.read_text().splitlines()) == 4

    def test_disabled_by_default(self, tmp_path):
        runner = ParallelRunner(horizon=1_200, warmup=800, jobs=1)
        assert runner.heartbeat_path is None
        runner.prefetch([("bfs", designs.build_gpu(None, PARTITIONS))])


class TestCli:
    def test_bottleneck_report(self, capsys):
        assert (
            main(
                [
                    "bottleneck", "bfs",
                    "--partitions", str(PARTITIONS),
                    "--horizon", str(HORIZON),
                    "--warmup", str(WARMUP),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "per-hop latency" in out
        assert "dominant overhead component: dram_queue" in out
        assert "byte conservation vs DRAM stats: OK" in out

    def test_bottleneck_json(self, capsys):
        assert (
            main(
                [
                    "bottleneck", "bfs",
                    "--partitions", str(PARTITIONS),
                    "--horizon", "1200", "--warmup", "800",
                    "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert "hops" in doc and "stalls" in doc

    def test_profile_json_and_sort_alias(self, tmp_path, capsys):
        out_json = tmp_path / "profile.json"
        assert (
            main(
                [
                    "profile", "nw",
                    "--design", "direct_40",
                    "--horizon", "1200", "--warmup", "800",
                    "--partitions", str(PARTITIONS),
                    "--top", "5",
                    "--sort", "cumtime",
                    "--json", str(out_json),
                ]
            )
            == 0
        )
        doc = json.loads(out_json.read_text())
        assert doc["workload"] == "nw"
        assert doc["sort"] == "cumulative"
        assert len(doc["rows"]) == 5
        for row in doc["rows"]:
            assert {"function", "ncalls", "tottime", "cumtime"} <= set(row)
