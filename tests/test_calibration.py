"""Baseline calibration against Table IV's bands (coarse, scaled windows).

Full-suite calibration numbers live in EXPERIMENTS.md; these tests pin the
*category structure* — the property every figure in the paper leans on —
with loose tolerances so they stay robust to small model changes.
"""

import pytest

from repro import GpuConfig, simulate
from repro.workloads.suite import BENCHMARKS

HORIZON = 8000
WARMUP = 14000


@pytest.fixture(scope="module")
def results():
    config = GpuConfig.scaled(num_partitions=4)
    return {
        name: simulate(config, spec, horizon=HORIZON, warmup=WARMUP)
        for name, spec in BENCHMARKS.items()
    }


class TestCategoryBands:
    @pytest.mark.parametrize("name", ["heartwall", "lavaMD", "nw"])
    def test_non_memory_intensive_under_20pct(self, results, name):
        assert results[name].bandwidth_utilization < 0.20

    @pytest.mark.parametrize("name", ["b+tree"])
    def test_btree_light_bandwidth(self, results, name):
        assert results[name].bandwidth_utilization < 0.25

    @pytest.mark.parametrize("name", ["backprop", "cfd", "dwt2d", "kmeans", "bfs"])
    def test_medium_band(self, results, name):
        assert 0.10 < results[name].bandwidth_utilization < 0.65

    @pytest.mark.parametrize(
        "name", ["srad_v2", "streamcluster", "2Dconvolution", "fdtd2d", "lbm"]
    )
    def test_memory_intensive_over_45pct(self, results, name):
        assert results[name].bandwidth_utilization > 0.45


class TestIpcStructure:
    def test_lavamd_is_fastest(self, results):
        ipcs = {name: r.ipc for name, r in results.items()}
        assert max(ipcs, key=ipcs.get) == "lavaMD"

    def test_nw_is_slowest(self, results):
        ipcs = {name: r.ipc for name, r in results.items()}
        assert min(ipcs, key=ipcs.get) in ("nw", "kmeans")

    def test_kmeans_low_ipc_despite_bandwidth(self, results):
        """kmeans: ~40% bandwidth with ~1% of peak IPC (Table IV's outlier)."""
        peak = 20 * 4 * 32
        assert results["kmeans"].ipc / peak < 0.05
        assert results["kmeans"].bandwidth_utilization > 0.3

    def test_streaming_benches_have_high_l2_miss(self, results):
        for name in ("streamcluster", "fdtd2d", "lbm", "srad_v2"):
            assert results[name].l2_miss_rate > 0.9

    def test_reuse_benches_have_lower_l2_miss(self, results):
        # heartwall filters its reuse in the L1, so only hot-set benches
        # show it at the L2.
        for name in ("b+tree", "backprop"):
            assert results[name].l2_miss_rate < 0.6
