"""Metadata address-space layout: region boundaries and classification."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import params
from repro.common.config import MetadataKind
from repro.secure.layout import MetadataLayout

MB = 1024 * 1024


@pytest.fixture(scope="module")
def layout():
    return MetadataLayout(protected_bytes=64 * MB)


class TestRegions:
    def test_regions_are_contiguous(self, layout):
        assert layout.counter_base == layout.protected_bytes
        assert layout.mac_base == layout.counter_base + layout.counter_region_bytes
        assert layout.bmt_base == layout.mac_base + layout.mac_region_bytes
        assert layout.mt_base == layout.bmt_base + layout.bmt_region_bytes
        assert layout.end == layout.mt_base + layout.mt_region_bytes

    def test_counter_region_ratio(self, layout):
        assert layout.counter_region_bytes == layout.protected_bytes // 128

    def test_mac_region_ratio(self, layout):
        assert layout.mac_region_bytes == layout.protected_bytes // 16

    def test_rejects_unaligned_protected_range(self):
        with pytest.raises(ValueError):
            MetadataLayout(protected_bytes=1000)

    def test_table2_totals(self):
        paper = MetadataLayout(params.PROTECTED_MEMORY_BYTES)
        ctr_total = paper.total_metadata_bytes(counter_mode=True) / MB
        direct_total = paper.total_metadata_bytes(counter_mode=False) / MB
        assert ctr_total == pytest.approx(290.14, abs=0.2)
        assert direct_total == pytest.approx(273.1, abs=0.2)


class TestAddressMapping:
    def test_counter_block_addr_first_chunk(self, layout):
        assert layout.counter_block_addr(0) == layout.counter_base
        assert layout.counter_block_addr(16 * 1024 - 1) == layout.counter_base

    def test_counter_block_addr_second_chunk(self, layout):
        assert layout.counter_block_addr(16 * 1024) == layout.counter_base + 128

    def test_mac_block_addr(self, layout):
        assert layout.mac_block_addr(0) == layout.mac_base
        assert layout.mac_block_addr(2048) == layout.mac_base + 128

    def test_rejects_out_of_range(self, layout):
        with pytest.raises(ValueError):
            layout.counter_block_addr(layout.protected_bytes)
        with pytest.raises(ValueError):
            layout.mac_block_addr(-1)

    @given(st.integers(min_value=0, max_value=64 * MB - 1))
    @settings(max_examples=50)
    def test_counter_addr_in_counter_region(self, addr):
        layout = MetadataLayout(protected_bytes=64 * MB)
        block = layout.counter_block_addr(addr)
        assert layout.counter_base <= block < layout.mac_base
        assert block % 128 == 0

    @given(st.integers(min_value=0, max_value=64 * MB - 1))
    @settings(max_examples=50)
    def test_mac_addr_in_mac_region(self, addr):
        layout = MetadataLayout(protected_bytes=64 * MB)
        block = layout.mac_block_addr(addr)
        assert layout.mac_base <= block < layout.bmt_base
        assert block % 128 == 0

    @given(st.integers(min_value=0, max_value=64 * MB - 1))
    @settings(max_examples=30)
    def test_bmt_path_in_bmt_region(self, addr):
        layout = MetadataLayout(protected_bytes=64 * MB)
        for node in layout.bmt_path_addrs(addr):
            assert layout.bmt_base <= node < layout.mt_base

    @given(st.integers(min_value=0, max_value=64 * MB - 1))
    @settings(max_examples=30)
    def test_mt_path_in_mt_region(self, addr):
        layout = MetadataLayout(protected_bytes=64 * MB)
        for node in layout.mt_path_addrs(addr):
            assert layout.mt_base <= node < layout.end

    def test_bmt_path_length(self, layout):
        assert len(layout.bmt_path_addrs(0)) == layout.bmt.num_internal_levels

    def test_mt_path_length(self, layout):
        assert len(layout.mt_path_addrs(0)) == layout.mt.num_internal_levels


class TestClassification:
    def test_data_addresses(self, layout):
        assert layout.kind_of(0) is None
        assert layout.kind_of(layout.protected_bytes - 1) is None
        assert not layout.is_metadata(42)

    def test_counter_addresses(self, layout):
        assert layout.kind_of(layout.counter_base) is MetadataKind.COUNTER
        assert layout.kind_of(layout.mac_base - 1) is MetadataKind.COUNTER

    def test_mac_addresses(self, layout):
        assert layout.kind_of(layout.mac_base) is MetadataKind.MAC

    def test_tree_addresses(self, layout):
        assert layout.kind_of(layout.bmt_base) is MetadataKind.TREE
        assert layout.kind_of(layout.mt_base) is MetadataKind.TREE
        assert layout.kind_of(layout.end - 1) is MetadataKind.TREE

    def test_beyond_end_rejected(self, layout):
        with pytest.raises(ValueError):
            layout.kind_of(layout.end)

    @given(st.integers(min_value=0, max_value=64 * MB - 1))
    @settings(max_examples=30)
    def test_metadata_addrs_classify_back(self, addr):
        layout = MetadataLayout(protected_bytes=64 * MB)
        assert layout.kind_of(layout.counter_block_addr(addr)) is MetadataKind.COUNTER
        assert layout.kind_of(layout.mac_block_addr(addr)) is MetadataKind.MAC


class TestSharedCoverage:
    @given(
        st.integers(min_value=0, max_value=64 * MB - 1),
        st.integers(min_value=0, max_value=64 * MB - 1),
    )
    @settings(max_examples=50)
    def test_same_chunk_shares_counter_block(self, a, b):
        layout = MetadataLayout(protected_bytes=64 * MB)
        same_chunk = a // (16 * 1024) == b // (16 * 1024)
        same_block = layout.counter_block_addr(a) == layout.counter_block_addr(b)
        assert same_chunk == same_block

    @given(
        st.integers(min_value=0, max_value=64 * MB - 1),
        st.integers(min_value=0, max_value=64 * MB - 1),
    )
    @settings(max_examples=50)
    def test_same_2kb_shares_mac_block(self, a, b):
        layout = MetadataLayout(protected_bytes=64 * MB)
        assert (a // 2048 == b // 2048) == (
            layout.mac_block_addr(a) == layout.mac_block_addr(b)
        )
