"""The paper's five conclusions, as executable assertions.

This is the reproduction certificate: if these pass, the repository
reproduces the qualitative claims of Section VII on a representative
subset of the suite (two benchmarks per intensity category, scaled
windows).  Quantitative paper-vs-measured tables live in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import designs
from repro.experiments.runner import Runner

BENCHES = ["heartwall", "nw", "backprop", "bfs", "fdtd2d", "lbm"]
PARTITIONS = 2


@pytest.fixture(scope="module")
def runner():
    return Runner(horizon=2500, warmup=5000, benchmarks=BENCHES)


@pytest.fixture(scope="module")
def baseline():
    return designs.build_gpu(None, PARTITIONS)


def gmean_of(runner, baseline, secure):
    return runner.normalized_sweep(designs.build_gpu(secure, PARTITIONS), baseline)[
        "Gmean"
    ]


class TestConclusion1MetadataTrafficIsTheBottleneck:
    def test_secure_memory_is_expensive(self, runner, baseline):
        assert gmean_of(runner, baseline, designs.secure_mem(0)) < 0.7

    def test_memory_intensive_lose_most(self, runner, baseline):
        sweep = runner.normalized_sweep(
            designs.build_gpu(designs.secure_mem(0), PARTITIONS), baseline
        )
        assert sweep["fdtd2d"] < 0.4
        assert sweep["lbm"] < 0.6
        assert sweep["heartwall"] > 0.9  # bandwidth headroom -> no cost

    def test_crypto_latency_is_not_the_cause(self, runner, baseline):
        secure = gmean_of(runner, baseline, designs.secure_mem(0))
        zero = gmean_of(runner, baseline, designs.zero_crypto(0))
        assert zero == pytest.approx(secure, abs=0.05)

    def test_perfect_metadata_caches_recover_performance(self, runner, baseline):
        assert gmean_of(runner, baseline, designs.perfect_mdc(0)) > 0.95


class TestConclusion2DirectEncryptionIsCheap:
    def test_direct_40_nearly_free(self, runner, baseline):
        assert gmean_of(runner, baseline, designs.direct(40)) > 0.85

    def test_direct_beats_counter_mode_for_confidentiality(self, runner, baseline):
        direct = gmean_of(runner, baseline, designs.direct(40))
        ctr_bmt = gmean_of(runner, baseline, designs.ctr_bmt())
        assert direct > ctr_bmt

    def test_direct_mac_beats_full_counter_stack(self, runner, baseline):
        direct_mac = gmean_of(runner, baseline, designs.direct_mac())
        ctr_stack = gmean_of(runner, baseline, designs.ctr_mac_bmt())
        assert direct_mac > ctr_stack

    def test_integrity_is_the_expensive_part(self, runner, baseline):
        plain = gmean_of(runner, baseline, designs.direct(40))
        with_tree = gmean_of(runner, baseline, designs.direct_mac_mt())
        assert with_tree < plain


class TestConclusion3AesThroughput:
    def test_one_engine_per_partition_suffices(self, runner, baseline):
        one = gmean_of(runner, baseline, designs.aes_engines(1))
        two = gmean_of(runner, baseline, designs.aes_engines(2))
        assert one > 0.93 * two


class TestConclusion4SeparateMetadataCaches:
    def test_separate_beats_unified(self, runner, baseline):
        separate = gmean_of(runner, baseline, designs.separate())
        unified = gmean_of(runner, baseline, designs.unified())
        assert separate > unified


class TestConclusion5MshrsAreNecessary:
    def test_mshrs_recover_performance(self, runner, baseline):
        without = gmean_of(runner, baseline, designs.secure_mem(0))
        with_mshrs = gmean_of(runner, baseline, designs.secure_mem(64))
        assert with_mshrs > without + 0.05
