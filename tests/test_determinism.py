"""Determinism contracts for the optimized timing core.

Two guarantees ride on these tests:

1. **Golden stats** — the hot-path rework (calendar-queue scheduler,
   memoized secure-address geometry, telemetry fast path) must be a pure
   data-structure change: simulated results and the full ``StatGroup``
   dump must stay bit-identical to the pre-optimization goldens in
   ``tests/golden/`` for two workloads x {secure on, secure off}.

2. **Scheduler ordering** — events with equal timestamps fire FIFO by
   sequence number, including across the calendar/heap boundary (an event
   parked in the far-future overflow heap must interleave correctly with
   a later-scheduled near event at the same timestamp).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import designs
from repro.experiments.runner import result_to_dict
from repro.sim.event import EventQueue, SchedulingError
from repro.sim.gpu import simulate
from repro.workloads.suite import get_benchmark

GOLDEN_DIR = Path(__file__).parent / "golden"

GOLDEN_CASES = [
    ("bfs", True),
    ("bfs", False),
    ("nw", True),
    ("nw", False),
]


def _golden_path(workload: str, secure: bool) -> Path:
    return GOLDEN_DIR / f"{workload}-{'secure' if secure else 'baseline'}.json"


@pytest.mark.parametrize("workload,secure", GOLDEN_CASES)
def test_golden_stats_bit_identical(workload: str, secure: bool) -> None:
    """A fresh run reproduces the pre-optimization dump exactly."""
    golden = json.loads(_golden_path(workload, secure).read_text())
    config = designs.build_gpu(designs.secure_mem(64) if secure else None, 2)
    result = simulate(config, get_benchmark(workload), horizon=4_000, warmup=2_000)
    assert result_to_dict(result) == golden["result"]
    assert result.stats.to_dict() == golden["stats"]


# --- scheduler ordering ------------------------------------------------------


def test_same_cycle_fifo_within_calendar() -> None:
    q = EventQueue()
    order = []
    for i in range(8):
        q.schedule_at(10.0, order.append, i)
    q.schedule_at(9.5, order.append, "early")
    q.run()
    assert order == ["early", 0, 1, 2, 3, 4, 5, 6, 7]


def test_same_cycle_fifo_across_calendar_heap_boundary() -> None:
    """Equal-timestamp events stay FIFO even when one started in the far heap.

    ``first`` is scheduled while its cycle lies beyond the calendar window
    (so it parks in the overflow heap); ``second`` is scheduled at the same
    timestamp once the window has slid close enough to use a bucket.  The
    migration path must preserve schedule order.
    """
    window = EventQueue.CALENDAR_WINDOW
    t = float(window + 100)
    q = EventQueue()
    order = []
    q.schedule_at(t, order.append, "first")  # beyond window -> far heap
    assert q._far and not q._near

    def reschedule() -> None:
        # now == 200.0: cycle window+100 is now within the calendar window.
        q.schedule_at(t, order.append, "second")

    q.schedule_at(200.0, reschedule)
    q.run()
    assert order == ["first", "second"]
    assert q.now == t


def test_far_event_not_skipped_by_later_near_event() -> None:
    """A far-heap event must fire before a later near event (migration test)."""
    window = EventQueue.CALENDAR_WINDOW
    q = EventQueue()
    order = []
    q.schedule_at(float(window + 10), order.append, "far")

    def mid() -> None:
        # scheduled from cycle 100: window+50 is near now.
        q.schedule_at(float(window + 50), order.append, "near-late")

    q.schedule_at(100.0, mid)
    q.run()
    assert order == ["far", "near-late"]


def test_run_until_does_not_disturb_far_events() -> None:
    q = EventQueue()
    fired = []
    q.schedule_at(5.0, fired.append, "a")
    q.schedule_at(float(EventQueue.CALENDAR_WINDOW * 3), fired.append, "b")
    q.run(until=10.0)
    assert fired == ["a"]
    assert q.now == 10.0
    q.run()
    assert fired == ["a", "b"]
    assert q.now == float(EventQueue.CALENDAR_WINDOW * 3)


# --- typed scheduling errors -------------------------------------------------


def test_schedule_in_past_raises_typed_error_with_callback_name() -> None:
    q = EventQueue()
    q.schedule_at(10.0, lambda: None)
    q.run()

    def late_callback() -> None:  # pragma: no cover - never invoked
        pass

    with pytest.raises(SchedulingError) as excinfo:
        q.schedule_at(5.0, late_callback)
    message = str(excinfo.value)
    assert "late_callback" in message
    assert "5" in message and "10" in message
    # backwards compatible with callers catching the old bare ValueError.
    assert isinstance(excinfo.value, ValueError)
