"""Bit-identity contracts for the batched/pooled/columnar simulation core.

The batched core (grouped crossbar delivery, epoch trace pregeneration),
the object pools (MSHR entries, in-flight records, event tuples), the
columnar delivery lane (regular delivery groups routed around the
per-access event/closure machinery) and the vectorized telemetry fold are
*mechanical* optimizations: every simulated statistic, latency histogram,
and run-ledger record must be bit-identical to the scalar
allocation-per-event path.  These tests pin that claim with golden dumps
of secure + partitioned configurations — a stencil sweep (``fdtd2d``) and
a pointer chase (``bfs``), together exercising all four protected classes
(DATA, COUNTER, MAC, TREE) under both streaming and irregular reuse —
then replay the same points under every combination of the
:mod:`repro.sim.fastpath` switches.

Regenerate the goldens (only after an intentional model change) with::

    PYTHONPATH=src python tests/test_fastpath_identity.py --regen
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.common.config import TelemetryConfig
from repro.experiments import designs
from repro.experiments.runner import Runner, result_to_dict
from repro.obsv.ledger import canonical_points, read_ledger
from repro.sim import fastpath
from repro.sim.gpu import simulate
from repro.workloads.suite import get_benchmark

GOLDEN_DIR = Path(__file__).parent / "golden"

#: golden-pinned workloads: a regular stencil and a pointer chase (the
#: latter drives the columnar lane's irregular/fallback boundaries).
WORKLOADS = ["fdtd2d", "bfs"]
PARTITIONS = 2
HORIZON = 4_000.0
WARMUP = 2_000.0

#: every switch combination the identity claim covers (full 2^3 matrix;
#: columnar requires batching, so the batching-off rows also pin that the
#: lane disengages cleanly rather than half-running).
MODES = [
    ("batched+pooled+columnar", {}),
    ("no-columnar", {"columnar": False}),
    ("unpooled", {"pooling": False}),
    ("unpooled+no-columnar", {"pooling": False, "columnar": False}),
    ("scalar", {"batching": False}),
    ("scalar+no-columnar", {"batching": False, "columnar": False}),
    ("scalar+unpooled", {"batching": False, "pooling": False}),
    (
        "scalar+unpooled+no-columnar",
        {"batching": False, "pooling": False, "columnar": False},
    ),
]


def _golden_path(workload: str) -> Path:
    return GOLDEN_DIR / f"{workload}-secure-telemetry.json"


def _config():
    """Full protection (counters + MAC + BMT) over 2 partitions, telemetry on."""
    config = designs.build_gpu(designs.secure_mem(64), PARTITIONS)
    return dataclasses.replace(
        config, telemetry=TelemetryConfig(enabled=True, sample_every=500.0)
    )


def _dump(workload: str) -> dict:
    """One run's stats + latency export, in golden-file shape."""
    result = simulate(
        _config(), get_benchmark(workload), horizon=HORIZON, warmup=WARMUP
    )
    return {
        "result": result_to_dict(result),
        "stats": result.stats.to_dict(),
        "latency": result.telemetry["latency"],
    }


def _ledger_records(tmp_path: Path, tag: str, workload: str) -> list:
    """Canonical ledger records from one Runner-driven run of the point."""
    ledger_path = tmp_path / f"ledger-{tag}.jsonl"
    runner = Runner(
        horizon=HORIZON,
        warmup=WARMUP,
        benchmarks=[workload],
        ledger_path=ledger_path,
    )
    runner.run(workload, _config())
    return canonical_points(read_ledger(ledger_path))


def _golden(workload: str) -> dict:
    return json.loads(_golden_path(workload).read_text())


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("label,overrides", MODES)
def test_mode_matches_golden(workload: str, label: str, overrides: dict) -> None:
    """Every switch combination reproduces the committed dumps exactly."""
    golden = _golden(workload)
    with fastpath.scoped(**overrides):
        dump = _dump(workload)
    assert dump["result"] == golden["result"], (workload, label)
    assert dump["stats"] == golden["stats"], (workload, label)
    assert dump["latency"] == golden["latency"], (workload, label)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_golden_exercises_all_protected_classes(workload: str) -> None:
    """The pinned points really do carry DATA, COUNTER, MAC and TREE traffic."""
    golden = _golden(workload)
    dram_classes = set()
    for hop_classes in golden["latency"]["hops"].values():
        dram_classes.update(hop_classes)
    assert {"DATA", "COUNTER", "MAC", "TREE"} <= dram_classes
    txn = golden["result"]["dram_txn"]
    assert txn["ctr"] > 0 and txn["mac"] > 0 and txn["bmt"] > 0


@pytest.mark.parametrize("workload", WORKLOADS)
def test_ledger_records_identical_across_modes(
    tmp_path: Path, workload: str
) -> None:
    """All switch combinations write record-equivalent run ledgers."""
    golden = _golden(workload)
    for label, overrides in MODES:
        with fastpath.scoped(**overrides):
            records = _ledger_records(tmp_path, label, workload)
        assert records == golden["ledger"], (workload, label)


def test_columnar_contract_attributes_resolve() -> None:
    """Every attribute the columnar lane binds exists on a live model.

    The lane (:mod:`repro.sim.columnar`) flattens private state of the
    partition, L2 MSHR, DRAM channel and secure engine into slot views at
    construction.  Each owning module declares that surface in a
    ``COLUMNAR_CONTRACT`` tuple next to the class; this test resolves
    every name against freshly built instances so a rename in one layer
    fails here with the contract's name, not as an ``AttributeError``
    mid-simulation (or worse, a silently disengaged lane).
    """
    from repro.secure import engine as engine_mod
    from repro.sim import dram as dram_mod
    from repro.sim import mshr as mshr_mod
    from repro.sim import partition as partition_mod
    from repro.sim.gpu import Gpu

    gpu = Gpu(_config(), get_benchmark(WORKLOADS[0]))
    part = gpu.partitions[0]
    for owner, contract in [
        (part, partition_mod.COLUMNAR_CONTRACT),
        (part.l2_mshr, mshr_mod.COLUMNAR_CONTRACT),
        (part.dram, dram_mod.COLUMNAR_CONTRACT),
        (part.engine, engine_mod.COLUMNAR_CONTRACT),
    ]:
        for name in contract:
            assert hasattr(owner, name), (type(owner).__name__, name)


def _regenerate() -> None:
    import tempfile

    for workload in WORKLOADS:
        dump = _dump(workload)
        with tempfile.TemporaryDirectory() as tmp:
            dump["ledger"] = _ledger_records(Path(tmp), "regen", workload)
        path = _golden_path(workload)
        path.write_text(json.dumps(dump, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
