"""Bit-identity contracts for the batched/pooled simulation core.

The batched core (grouped crossbar delivery, epoch trace pregeneration),
the object pools (MSHR entries, in-flight records, event tuples) and the
vectorized telemetry fold are *mechanical* optimizations: every simulated
statistic, latency histogram, and run-ledger record must be bit-identical
to the scalar allocation-per-event path.  These tests pin that claim with
a golden dump of a secure + partitioned configuration whose traffic
exercises all four protected classes (DATA, COUNTER, MAC, TREE), then
replay the same point under every combination of the
:mod:`repro.sim.fastpath` switches.

Regenerate the golden (only after an intentional model change) with::

    PYTHONPATH=src python tests/test_fastpath_identity.py --regen
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.common.config import TelemetryConfig
from repro.experiments import designs
from repro.experiments.runner import Runner, result_to_dict
from repro.obsv.ledger import canonical_points, read_ledger
from repro.sim import fastpath
from repro.sim.gpu import simulate
from repro.workloads.suite import get_benchmark

GOLDEN_PATH = Path(__file__).parent / "golden" / "fdtd2d-secure-telemetry.json"

WORKLOAD = "fdtd2d"
PARTITIONS = 2
HORIZON = 4_000.0
WARMUP = 2_000.0

#: every switch combination the identity claim covers.
MODES = [
    ("batched+pooled", {}),
    ("scalar", {"batching": False}),
    ("unpooled", {"pooling": False}),
    ("scalar+unpooled", {"batching": False, "pooling": False}),
]


def _config():
    """Full protection (counters + MAC + BMT) over 2 partitions, telemetry on."""
    config = designs.build_gpu(designs.secure_mem(64), PARTITIONS)
    return dataclasses.replace(
        config, telemetry=TelemetryConfig(enabled=True, sample_every=500.0)
    )


def _dump() -> dict:
    """One run's stats + latency export, in golden-file shape."""
    result = simulate(
        _config(), get_benchmark(WORKLOAD), horizon=HORIZON, warmup=WARMUP
    )
    return {
        "result": result_to_dict(result),
        "stats": result.stats.to_dict(),
        "latency": result.telemetry["latency"],
    }


def _ledger_records(tmp_path: Path, tag: str) -> list:
    """Canonical ledger records from one Runner-driven run of the point."""
    ledger_path = tmp_path / f"ledger-{tag}.jsonl"
    runner = Runner(
        horizon=HORIZON,
        warmup=WARMUP,
        benchmarks=[WORKLOAD],
        ledger_path=ledger_path,
    )
    runner.run(WORKLOAD, _config())
    return canonical_points(read_ledger(ledger_path))


def _golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("label,overrides", MODES)
def test_mode_matches_golden(label: str, overrides: dict) -> None:
    """Every switch combination reproduces the committed dump exactly."""
    golden = _golden()
    with fastpath.scoped(**overrides):
        dump = _dump()
    assert dump["result"] == golden["result"], label
    assert dump["stats"] == golden["stats"], label
    assert dump["latency"] == golden["latency"], label


def test_golden_exercises_all_protected_classes() -> None:
    """The pinned point really does carry DATA, COUNTER, MAC and TREE traffic."""
    golden = _golden()
    dram_classes = set()
    for hop_classes in golden["latency"]["hops"].values():
        dram_classes.update(hop_classes)
    assert {"DATA", "COUNTER", "MAC", "TREE"} <= dram_classes
    txn = golden["result"]["dram_txn"]
    assert txn["ctr"] > 0 and txn["mac"] > 0 and txn["bmt"] > 0


def test_ledger_records_identical_across_modes(tmp_path: Path) -> None:
    """Batched/scalar and pooled/unpooled runs write record-equivalent ledgers."""
    golden = _golden()
    for label, overrides in MODES:
        with fastpath.scoped(**overrides):
            records = _ledger_records(tmp_path, label)
        assert records == golden["ledger"], label


def _regenerate() -> None:
    dump = _dump()
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        dump["ledger"] = _ledger_records(Path(tmp), "regen")
    GOLDEN_PATH.write_text(json.dumps(dump, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
