"""Functional hash tree: build, update, verify, tamper detection."""

import pytest

from repro.secure.functional.mac import MacEngine
from repro.secure.functional.tree import HashTree, TreeMismatch
from repro.secure.merkle import TreeGeometry

LINE = 128


def make_tree(num_leaves=64, arity=16):
    geometry = TreeGeometry(num_leaves=num_leaves, arity=arity)
    leaf_region = bytearray(num_leaves * LINE)
    store = bytearray(num_leaves * LINE + geometry.internal_storage_bytes)
    store[: num_leaves * LINE] = leaf_region
    engine = MacEngine(b"tree-test-key-16")

    def leaf_bytes(index):
        return bytes(store[index * LINE : (index + 1) * LINE])

    tree = HashTree(
        store,
        geometry,
        region_base=num_leaves * LINE,
        leaf_bytes=leaf_bytes,
        node_hash=engine.node_hash,
    )
    tree.build()
    return tree, store, geometry


def set_leaf(store, index, payload: bytes):
    store[index * LINE : index * LINE + len(payload)] = payload


class TestBuildVerify:
    def test_all_leaves_verify_after_build(self):
        tree, _, geometry = make_tree()
        for leaf in range(geometry.num_leaves):
            tree.verify_leaf(leaf)

    def test_single_leaf_tree(self):
        tree, store, _ = make_tree(num_leaves=1)
        tree.verify_leaf(0)
        set_leaf(store, 0, b"x")
        with pytest.raises(TreeMismatch):
            tree.verify_leaf(0)

    def test_non_power_leaf_count(self):
        tree, _, geometry = make_tree(num_leaves=37)
        for leaf in (0, 17, 36):
            tree.verify_leaf(leaf)


class TestUpdate:
    def test_update_makes_modified_leaf_verify(self):
        tree, store, _ = make_tree()
        set_leaf(store, 5, b"hello")
        with pytest.raises(TreeMismatch):
            tree.verify_leaf(5)
        tree.update_leaf(5)
        tree.verify_leaf(5)

    def test_update_keeps_other_leaves_valid(self):
        tree, store, geometry = make_tree()
        set_leaf(store, 5, b"hello")
        tree.update_leaf(5)
        for leaf in range(geometry.num_leaves):
            tree.verify_leaf(leaf)

    def test_update_changes_root_register(self):
        tree, store, _ = make_tree()
        before = tree.root_register
        set_leaf(store, 0, b"payload")
        tree.update_leaf(0)
        assert tree.root_register != before


class TestAttacks:
    def test_leaf_tamper_detected(self):
        tree, store, _ = make_tree()
        store[3 * LINE + 7] ^= 0x01
        with pytest.raises(TreeMismatch):
            tree.verify_leaf(3)

    def test_sibling_tamper_not_flagged_on_other_leaf(self):
        tree, store, geometry = make_tree()
        store[3 * LINE] ^= 0x01
        # a different leaf under a different parent still verifies
        other = geometry.arity  # first leaf of the next parent
        tree.verify_leaf(other)

    def test_internal_node_tamper_detected(self):
        tree, store, geometry = make_tree(num_leaves=64)
        node_offset = geometry.node_offset(1, 0)
        store[64 * LINE + node_offset] ^= 0xFF
        with pytest.raises(TreeMismatch):
            tree.verify_leaf(0)

    def test_root_node_tamper_detected(self):
        tree, store, geometry = make_tree(num_leaves=64)
        offset = geometry.node_offset(geometry.root_level, 0)
        store[64 * LINE + offset] ^= 0x80
        with pytest.raises(TreeMismatch):
            tree.verify_leaf(0)

    def test_replay_of_leaf_and_path_detected(self):
        """Restoring a stale leaf *and* its entire stored path still fails,
        because the root register lives on chip."""
        tree, store, geometry = make_tree()
        stale = bytes(store)  # snapshot before the update
        set_leaf(store, 9, b"new value")
        tree.update_leaf(9)
        store[:] = stale  # attacker replays everything off-chip
        with pytest.raises(TreeMismatch):
            tree.verify_leaf(9)

    def test_swap_two_leaves_detected(self):
        tree, store, _ = make_tree()
        set_leaf(store, 1, b"one!")
        tree.update_leaf(1)
        set_leaf(store, 2, b"two!")
        tree.update_leaf(2)
        a = bytes(store[1 * LINE : 2 * LINE])
        b = bytes(store[2 * LINE : 3 * LINE])
        store[1 * LINE : 2 * LINE] = b
        store[2 * LINE : 3 * LINE] = a
        with pytest.raises(TreeMismatch):
            tree.verify_leaf(1)
