"""ThroughputResource queueing arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import StatGroup
from repro.sim.resource import ThroughputResource


class TestAcquire:
    def test_idle_resource_starts_immediately(self):
        res = ThroughputResource("r")
        assert res.acquire(10.0, 5.0) == 10.0

    def test_busy_resource_queues(self):
        res = ThroughputResource("r")
        res.acquire(0.0, 5.0)
        assert res.acquire(1.0, 5.0) == 5.0

    def test_gap_leaves_idle_time(self):
        res = ThroughputResource("r")
        res.acquire(0.0, 2.0)
        assert res.acquire(100.0, 1.0) == 100.0

    def test_zero_occupancy_is_allowed(self):
        res = ThroughputResource("r")
        assert res.acquire(3.0, 0.0) == 3.0
        assert res.next_free == 3.0

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            ThroughputResource("r").acquire(0.0, -1.0)

    def test_busy_cycles_accumulate(self):
        res = ThroughputResource("r")
        res.acquire(0.0, 2.0)
        res.acquire(0.0, 3.0)
        assert res.busy_cycles == 5.0

    def test_stats_mirroring(self):
        stats = StatGroup("s")
        res = ThroughputResource("r", stats)
        res.acquire(0.0, 2.0)
        res.acquire(0.0, 2.0)
        assert stats.get("acquisitions") == 2
        assert stats.get("busy_cycles") == 4.0
        assert stats.get("queue_delay") == 2.0


class TestBacklogUtilization:
    def test_backlog_measures_pending_work(self):
        res = ThroughputResource("r")
        res.acquire(0.0, 10.0)
        assert res.backlog(4.0) == 6.0

    def test_backlog_never_negative(self):
        res = ThroughputResource("r")
        res.acquire(0.0, 1.0)
        assert res.backlog(50.0) == 0.0

    def test_utilization(self):
        res = ThroughputResource("r")
        res.acquire(0.0, 25.0)
        assert res.utilization(100.0) == 0.25

    def test_utilization_capped_at_one(self):
        res = ThroughputResource("r")
        res.acquire(0.0, 500.0)
        assert res.utilization(100.0) == 1.0

    def test_utilization_of_zero_window(self):
        assert ThroughputResource("r").utilization(0.0) == 0.0


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e5),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_service_never_overlaps(self, requests):
        """Service intervals are disjoint regardless of arrival pattern."""
        res = ThroughputResource("r")
        intervals = []
        for now, occupancy in sorted(requests):
            start = res.acquire(now, occupancy)
            assert start >= now
            intervals.append((start, start + occupancy))
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1

    @given(st.lists(st.floats(min_value=0.1, max_value=50), min_size=1, max_size=30))
    def test_busy_equals_sum_of_occupancies(self, occupancies):
        res = ThroughputResource("r")
        for occ in occupancies:
            res.acquire(0.0, occ)
        assert res.busy_cycles == pytest.approx(sum(occupancies))
