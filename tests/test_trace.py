"""Trace recording and replay."""

import itertools
import json

import pytest

from repro import GpuConfig, simulate
from repro.workloads.suite import get_benchmark
from repro.workloads.trace import load_trace, record_trace


@pytest.fixture()
def trace_path(tmp_path):
    spec = get_benchmark("nw")
    return record_trace(spec, tmp_path / "nw.trace", num_sms=2, steps_per_warp=50)


class TestRecord:
    def test_header_line(self, trace_path):
        header = json.loads(trace_path.read_text().splitlines()[0])
        assert header["name"] == "nw"
        assert header["num_sms"] == 2
        assert header["steps_per_warp"] == 50

    def test_op_count(self, trace_path):
        spec = get_benchmark("nw")
        lines = trace_path.read_text().splitlines()
        assert len(lines) == 1 + 2 * spec.warps_per_sm * 50

    def test_ops_are_valid_json_rows(self, trace_path):
        for line in trace_path.read_text().splitlines()[1:]:
            index, n_insts, compute, is_write, addrs = json.loads(line)
            assert n_insts >= 0
            assert is_write in (0, 1)
            assert all(a % 32 == 0 for a in addrs)


class TestReplay:
    def test_replay_matches_recording(self, trace_path):
        spec = get_benchmark("nw")
        original = list(itertools.islice(spec.warp_trace(0, 0, 2, spec.warps_per_sm), 50))
        replayed_spec = load_trace(trace_path)
        replayed = list(
            itertools.islice(replayed_spec.warp_trace(0, 0, 2, spec.warps_per_sm), 50)
        )
        assert replayed == original

    def test_loop_wraps_around(self, trace_path):
        spec = load_trace(trace_path, loop=True)
        ops = list(itertools.islice(spec.warp_trace(0, 0, 2, spec.warps_per_sm), 120))
        assert len(ops) == 120
        assert ops[:50] == ops[50:100]

    def test_no_loop_is_finite(self, trace_path):
        spec = load_trace(trace_path, loop=False)
        ops = list(spec.warp_trace(0, 0, 2, spec.warps_per_sm))
        assert len(ops) == 50

    def test_working_set_covers_addresses(self, trace_path):
        spec = load_trace(trace_path)
        peak = max(
            addr
            for warp in range(spec.warps_per_sm)
            for op in itertools.islice(spec.warp_trace(0, warp, 2, spec.warps_per_sm), 50)
            for addr in op.mem_addrs
        )
        assert spec.working_set > peak

    def test_simulation_runs_on_replayed_trace(self, trace_path):
        spec = load_trace(trace_path)
        result = simulate(GpuConfig.scaled(num_partitions=2), spec, horizon=1500)
        assert result.instructions > 0

    def test_replay_reproduces_simulation(self, tmp_path):
        """A recorded trace produces the same simulation as its source."""
        source = get_benchmark("streamcluster")
        config = GpuConfig.scaled(num_partitions=2)
        path = record_trace(
            source, tmp_path / "sc.trace", num_sms=config.num_sms, steps_per_warp=400
        )
        replayed = load_trace(path)
        a = simulate(config, source, horizon=1200)
        b = simulate(config, replayed, horizon=1200)
        assert b.instructions == a.instructions
        assert b.dram_txn == a.dram_txn
