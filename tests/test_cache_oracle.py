"""Differential testing: SectoredCache vs a naive reference LRU model.

The reference model is deliberately dumb (dicts of sets, linear scans);
hypothesis drives random interleavings of lookups, fills, write-inserts
and dirty-marks through both and requires identical classifications,
identical eviction victims and identical dirty writeback sets.
"""

from typing import Dict, List, Optional, Set, Tuple

from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig
from repro.sim.cache import AccessResult, SectoredCache

LINE = 128
SECTOR = 32


class ReferenceCache:
    """Straightforward LRU sectored cache."""

    def __init__(self, num_sets: int, assoc: int, sectored: bool) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self.sectored = sectored
        # per set: list of line indices in LRU order (front = LRU)
        self.order: Dict[int, List[int]] = {s: [] for s in range(num_sets)}
        self.valid: Dict[int, Set[int]] = {}
        self.dirty: Dict[int, Set[int]] = {}

    def _set(self, line: int) -> int:
        return line % self.num_sets

    def _sector(self, addr: int) -> int:
        return (addr % LINE) // SECTOR if self.sectored else 0

    def lookup(self, addr: int, is_write: bool = False) -> str:
        line = addr // LINE
        group = self.order[self._set(line)]
        if line not in group:
            return "miss"
        group.remove(line)
        group.append(line)
        if self._sector(addr) not in self.valid[line]:
            return "sector_miss"
        if is_write:
            self.dirty[line].add(self._sector(addr))
        return "hit"

    def fill(self, addr: int, dirty: bool = False) -> Optional[Tuple[int, List[int]]]:
        """Returns (victim_line_addr, dirty_sector_addrs) or None."""
        line = addr // LINE
        group = self.order[self._set(line)]
        victim = None
        if line not in group:
            if len(group) >= self.assoc:
                evicted = group.pop(0)
                sectors = sorted(self.dirty.pop(evicted))
                self.valid.pop(evicted)
                victim = (
                    evicted * LINE,
                    [evicted * LINE + s * SECTOR for s in sectors],
                )
            group.append(line)
            self.valid[line] = set()
            self.dirty[line] = set()
        else:
            group.remove(line)
            group.append(line)
        if self.sectored:
            self.valid[line].add(self._sector(addr))
            if dirty:
                self.dirty[line].add(self._sector(addr))
        else:
            self.valid[line].update(range(1))
            if dirty:
                self.dirty[line].add(0)
        return victim


#: op = (kind, line_index, sector_index, flag)
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["lookup", "fill", "write_insert"]),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=3),
        st.booleans(),
    ),
    min_size=1,
    max_size=200,
)

RESULT_NAMES = {
    AccessResult.HIT: "hit",
    AccessResult.SECTOR_MISS: "sector_miss",
    AccessResult.MISS: "miss",
}


class TestDifferential:
    @given(ops_strategy, st.sampled_from([(2, 2), (4, 2), (2, 4), (1, 8)]),
           st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_matches_reference(self, ops, geometry, sectored):
        num_sets, assoc = geometry
        dut = SectoredCache(
            CacheConfig(
                size_bytes=num_sets * assoc * LINE,
                associativity=assoc,
                sectored=sectored,
            )
        )
        ref = ReferenceCache(num_sets, assoc, sectored)
        for kind, line, sector, flag in ops:
            addr = line * LINE + sector * SECTOR
            if kind == "lookup":
                got = RESULT_NAMES[dut.lookup(addr, is_write=flag)]
                expected = ref.lookup(addr, is_write=flag)
                # writes to missing lines don't mutate the reference model
                assert got == expected, (kind, addr)
            elif kind == "fill":
                evictions = dut.fill(addr, dirty=flag)
                expected = ref.fill(addr, dirty=flag)
                if expected is None:
                    assert evictions == []
                else:
                    assert len(evictions) == 1
                    assert evictions[0].line_addr == expected[0]
                    assert evictions[0].dirty_sector_addrs == expected[1]
            else:  # write_insert = fill(dirty=True)
                evictions = dut.write_insert(addr)
                expected = ref.fill(addr, dirty=True)
                if expected is None:
                    assert evictions == []
                else:
                    assert evictions[0].line_addr == expected[0]
                    assert evictions[0].dirty_sector_addrs == expected[1]
