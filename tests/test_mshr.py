"""MSHR table: allocation, merging, caps, release."""

import pytest

from repro.sim.mshr import MshrTable


class TestDisabled:
    def test_zero_entries_is_disabled(self):
        assert not MshrTable(0, 8).enabled

    def test_disabled_never_full(self):
        assert not MshrTable(0, 8).full

    def test_allocate_on_disabled_raises(self):
        with pytest.raises(RuntimeError):
            MshrTable(0, 8).allocate(0x100, 10.0)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            MshrTable(-1, 8)
        with pytest.raises(ValueError):
            MshrTable(4, -1)


class TestAllocateRelease:
    def test_allocate_tracks_line(self):
        table = MshrTable(4, 8)
        entry = table.allocate(0x80, 50.0)
        assert table.get(0x80) is entry
        assert entry.ready_time == 50.0

    def test_get_missing_returns_none(self):
        assert MshrTable(4, 8).get(0x80) is None

    def test_double_allocate_raises(self):
        table = MshrTable(4, 8)
        table.allocate(0x80, 50.0)
        with pytest.raises(RuntimeError):
            table.allocate(0x80, 60.0)

    def test_release_frees_entry(self):
        table = MshrTable(1, 8)
        table.allocate(0x80, 50.0)
        table.release(0x80)
        assert table.get(0x80) is None
        assert not table.full

    def test_full_detection(self):
        table = MshrTable(2, 8)
        table.allocate(0x80, 1.0)
        table.allocate(0x100, 2.0)
        assert table.full

    def test_allocate_when_full_raises(self):
        table = MshrTable(1, 8)
        table.allocate(0x80, 1.0)
        with pytest.raises(RuntimeError):
            table.allocate(0x100, 2.0)

    def test_len(self):
        table = MshrTable(4, 8)
        table.allocate(0x80, 1.0)
        table.allocate(0x100, 1.0)
        assert len(table) == 2


class TestMerging:
    def test_merge_returns_ready_time(self):
        table = MshrTable(4, 8)
        entry = table.allocate(0x80, 77.0)
        assert table.merge(entry) == 77.0
        assert entry.merged == 1

    def test_merge_collects_waiters(self):
        table = MshrTable(4, 8)
        entry = table.allocate(0x80, 1.0, waiter="a")
        table.merge(entry, waiter="b")
        assert entry.waiters == ["a", "b"]

    def test_merge_cap_enforced(self):
        table = MshrTable(4, 2)
        entry = table.allocate(0x80, 1.0)
        table.merge(entry)
        table.merge(entry)
        assert not table.can_merge(entry)
        with pytest.raises(RuntimeError):
            table.merge(entry)

    def test_disabled_cannot_merge(self):
        table = MshrTable(0, 8)
        # entries can't even exist, but can_merge must be safe to ask
        class FakeEntry:
            merged = 0
        assert not table.can_merge(FakeEntry())


class TestEarliestReady:
    def test_earliest_of_empty_is_zero(self):
        assert MshrTable(4, 8).earliest_ready() == 0.0

    def test_earliest_picks_minimum(self):
        table = MshrTable(4, 8)
        table.allocate(0x80, 30.0)
        table.allocate(0x100, 10.0)
        table.allocate(0x180, 20.0)
        assert table.earliest_ready() == 10.0

    def test_earliest_updates_after_release(self):
        table = MshrTable(4, 8)
        table.allocate(0x80, 30.0)
        table.allocate(0x100, 10.0)
        table.release(0x100)
        assert table.earliest_ready() == 30.0
