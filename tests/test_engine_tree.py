"""Secure-engine tree addressing and lazy-update mechanics."""


from repro.common.config import (
    EncryptionMode,
    GpuConfig,
    IntegrityMode,
    MetadataKind,
    SecureMemoryConfig,
)
from repro.common.stats import StatGroup
from repro.secure.engine import SecureEngine
from repro.secure.layout import MetadataLayout
from repro.sim.dram import DramChannel
from repro.sim.event import EventQueue

MB = 1024 * 1024


def make_engine(encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.MAC_TREE,
                protected=64 * MB):
    secure = SecureMemoryConfig(encryption=encryption, integrity=integrity)
    gpu = GpuConfig.scaled(num_partitions=1, secure=secure)
    events = EventQueue()
    dram = DramChannel(gpu.dram, gpu.core_clock_mhz, StatGroup("dram"))
    layout = MetadataLayout(protected)
    engine = SecureEngine(secure, gpu, dram, events, layout, StatGroup("secure"))
    return engine, layout


class TestTreeParentAddr:
    def test_counter_block_parent_is_bmt_level1(self):
        engine, layout = make_engine()
        parent = engine._tree_parent_addr(
            MetadataKind.COUNTER, layout.counter_block_addr(0)
        )
        assert parent == layout.bmt_node_addr(1, 0)

    def test_counter_parent_changes_per_16_blocks(self):
        engine, layout = make_engine()
        addr_a = layout.counter_block_addr(0)
        addr_b = layout.counter_block_addr(16 * layout.counters.data_bytes_per_block)
        assert engine._tree_parent_addr(MetadataKind.COUNTER, addr_a) != (
            engine._tree_parent_addr(MetadataKind.COUNTER, addr_b)
        )

    def test_counter_has_no_parent_in_direct_mode(self):
        engine, layout = make_engine(encryption=EncryptionMode.DIRECT)
        assert (
            engine._tree_parent_addr(MetadataKind.COUNTER, layout.counter_base) is None
        )

    def test_mac_has_no_parent_under_bmt_scheme(self):
        engine, layout = make_engine()
        assert engine._tree_parent_addr(MetadataKind.MAC, layout.mac_base) is None

    def test_mac_parent_is_mt_node_in_direct_mode(self):
        engine, layout = make_engine(encryption=EncryptionMode.DIRECT)
        parent = engine._tree_parent_addr(MetadataKind.MAC, layout.mac_base)
        assert parent == layout.mt_node_addr(1, 0)

    def test_tree_node_parent_walks_up(self):
        engine, layout = make_engine()
        level1 = layout.bmt_node_addr(1, 0)
        parent = engine._tree_parent_addr(MetadataKind.TREE, level1)
        assert parent == layout.bmt_node_addr(2, 0)

    def test_node_below_root_has_no_fetchable_parent(self):
        engine, layout = make_engine()
        top_minus_one = layout.bmt.root_level - 1
        if top_minus_one >= 1:
            addr = layout.bmt_node_addr(top_minus_one, 0)
            assert engine._tree_parent_addr(MetadataKind.TREE, addr) is None

    def test_mt_node_parent_stays_in_mt(self):
        engine, layout = make_engine(encryption=EncryptionMode.DIRECT)
        level1 = layout.mt_node_addr(1, 0)
        parent = engine._tree_parent_addr(MetadataKind.TREE, level1)
        assert parent == layout.mt_node_addr(2, 0)
        assert parent >= layout.mt_base


class TestWalkDepth:
    def test_cold_walk_fetches_multiple_levels(self):
        engine, layout = make_engine()
        events = engine.events
        engine.read_sector(0.0, 0x0)
        events.run()
        tree = engine.kind_stats(MetadataKind.TREE)
        fetchable = layout.bmt.num_internal_levels - 1  # root is on chip
        assert tree.get("accesses") == fetchable

    def test_warm_ancestor_stops_walk(self):
        engine, layout = make_engine()
        events = engine.events
        engine.read_sector(0.0, 0x0)
        events.run()
        accesses_before = engine.kind_stats(MetadataKind.TREE).get("accesses")
        # a counter block under the same level-1 parent: walk stops at level 1
        sibling = 1 * layout.counters.data_bytes_per_block
        engine.read_sector(events.now, sibling)
        events.run()
        tree = engine.kind_stats(MetadataKind.TREE)
        assert tree.get("accesses") == accesses_before + 1
        assert tree.get("hits") >= 1
