"""Reuse-distance analysis vs a naive oracle."""

from typing import List, Optional

from hypothesis import given, settings, strategies as st

from repro.analysis.reuse import (
    reuse_distance_histogram,
    stack_distances,
)


def naive_stack_distances(trace) -> List[Optional[int]]:
    """O(n^2) reference implementation."""
    result = []
    for i, block in enumerate(trace):
        prev = None
        for j in range(i - 1, -1, -1):
            if trace[j] == block:
                prev = j
                break
        if prev is None:
            result.append(None)
        else:
            result.append(len(set(trace[prev + 1 : i])))
    return result


class TestStackDistances:
    def test_empty_trace(self):
        assert stack_distances([]) == []

    def test_first_accesses_are_cold(self):
        assert stack_distances([1, 2, 3]) == [None, None, None]

    def test_immediate_reuse_is_zero(self):
        assert stack_distances([7, 7, 7]) == [None, 0, 0]

    def test_one_intervening_block(self):
        assert stack_distances([1, 2, 1]) == [None, None, 1]

    def test_duplicate_intervening_counts_once(self):
        assert stack_distances([1, 2, 2, 2, 1]) == [None, None, 0, 0, 1]

    def test_classic_example(self):
        trace = [1, 2, 3, 2, 1]
        assert stack_distances(trace) == [None, None, None, 1, 2]

    @given(st.lists(st.integers(min_value=0, max_value=12), max_size=120))
    @settings(max_examples=60)
    def test_matches_naive_oracle(self, trace):
        assert stack_distances(trace) == naive_stack_distances(trace)

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=150))
    @settings(max_examples=30)
    def test_distances_bounded_by_alphabet(self, trace):
        distinct = len(set(trace))
        for distance in stack_distances(trace):
            if distance is not None:
                assert 0 <= distance < distinct


class TestHistogram:
    def test_bucket_labels(self):
        histogram = reuse_distance_histogram([])
        assert "0" in histogram
        assert "[1,8]" in histogram
        assert "[65,512]" in histogram
        assert ">4096" in histogram
        assert "cold" in histogram

    def test_cold_counting(self):
        histogram = reuse_distance_histogram([1, 2, 3])
        assert histogram["cold"] == 3

    def test_zero_bucket(self):
        histogram = reuse_distance_histogram([1, 1, 1])
        assert histogram["0"] == 2

    def test_mid_buckets(self):
        # distance 3 -> [1,8]
        trace = [9, 1, 2, 3, 9]
        histogram = reuse_distance_histogram(trace)
        assert histogram["[1,8]"] == 1

    def test_overflow_bucket(self):
        trace = list(range(5000)) + [0]
        histogram = reuse_distance_histogram(trace)
        assert histogram[">4096"] == 1

    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=200))
    @settings(max_examples=30)
    def test_total_conservation(self, trace):
        histogram = reuse_distance_histogram(trace)
        assert sum(histogram.values()) == len(trace)

    def test_custom_buckets(self):
        histogram = reuse_distance_histogram([1, 1], buckets=((0, 4),))
        assert histogram["[0,4]"] == 1
        assert ">4" in histogram
