"""Memory partition: L2 paths, MSHR merging, writebacks, back-pressure."""


from repro.common.config import EncryptionMode, GpuConfig, IntegrityMode, SecureMemoryConfig
from repro.common.stats import StatGroup
from repro.secure.layout import MetadataLayout
from repro.sim.event import EventQueue
from repro.sim.partition import BACKLOG_WINDOW, MemoryPartition

MB = 1024 * 1024


def make_partition(secure=None, num_partitions=2, index=0):
    if secure is None:
        secure = SecureMemoryConfig(
            encryption=EncryptionMode.NONE, integrity=IntegrityMode.NONE
        )
    config = GpuConfig.scaled(num_partitions=num_partitions, secure=secure)
    events = EventQueue()
    layout = MetadataLayout(64 * MB)
    partition = MemoryPartition(index, config, events, layout, StatGroup("p"))
    return partition, events


class Collector:
    def __init__(self):
        self.times = []

    def __call__(self, time):
        self.times.append(time)


class TestLocalAddressing:
    def test_to_local_drops_interleave_bits(self):
        partition, _ = make_partition(num_partitions=4)
        interleave = partition.config.partition_interleave_bytes
        # chunk 0 -> local chunk 0; chunk 4 -> local chunk 1
        assert partition.to_local(0) == 0
        assert partition.to_local(4 * interleave + 5) == interleave + 5

    def test_to_local_is_dense(self):
        """Partition-p addresses map onto a gapless local space."""
        partition, _ = make_partition(num_partitions=4, index=1)
        interleave = partition.config.partition_interleave_bytes
        locals_seen = [
            partition.to_local((4 * i + 1) * interleave) for i in range(10)
        ]
        assert locals_seen == [i * interleave for i in range(10)]


class TestReadPath:
    def test_miss_then_hit(self):
        partition, events = make_partition()
        first, second = Collector(), Collector()
        partition.access(0.0, 0x40, False, first)
        events.run()
        partition.access(events.now, 0x40, False, second)
        events.run()
        assert len(first.times) == 1
        miss_latency = first.times[0]
        hit_latency = second.times[0] - (second.times[0] - partition._hit_latency)
        assert miss_latency > partition._hit_latency

    def test_sector_miss_fetches_again(self):
        partition, events = make_partition()
        done = Collector()
        partition.access(0.0, 0x40, False, done)
        events.run()
        reads_before = partition.dram.stats.get("txn_data_read")
        partition.access(events.now, 0x60, False, done)  # other sector, same line
        events.run()
        assert partition.dram.stats.get("txn_data_read") == reads_before + 1

    def test_concurrent_same_sector_merges(self):
        partition, events = make_partition()
        first, second = Collector(), Collector()
        partition.access(0.0, 0x40, False, first)
        partition.access(0.0, 0x40, False, second)
        events.run()
        assert partition.dram.stats.get("txn_data_read") == 1
        assert first.times and second.times
        assert partition.stats.get("l2_secondary_misses") == 1

    def test_all_waiters_respond_at_fill(self):
        partition, events = make_partition()
        collectors = [Collector() for _ in range(4)]
        for c in collectors:
            partition.access(0.0, 0x40, False, c)
        events.run()
        times = [c.times[0] for c in collectors]
        assert len(set(times)) == 1  # all released together


class TestWritePath:
    def test_write_completes_at_l2_without_dram_wait(self):
        partition, events = make_partition()
        done = Collector()
        partition.access(0.0, 0x40, True, done)
        events.run()
        assert done.times[0] <= partition._hit_latency + 5

    def test_write_allocates_dirty_without_fetch(self):
        partition, events = make_partition()
        partition.access(0.0, 0x40, True, Collector())
        events.run()
        assert partition.dram.stats.get("txn_data_read") == 0
        assert partition.l2.resident_lines() == 1

    def test_dirty_eviction_reaches_dram(self):
        partition, events = make_partition()
        lines = partition.l2.config.num_lines
        for i in range(lines + partition.l2.config.associativity + 8):
            # distinct lines within this partition (global addresses!)
            addr = i * partition.config.partition_interleave_bytes * 2
            partition.access(float(i), addr, True, Collector())
            events.run(until=float(i) + 0.01)
        events.run()
        assert partition.stats.get("l2_writebacks") > 0
        assert partition.dram.stats.get("txn_data_write") > 0


class TestBackPressure:
    def test_admission_stalls_when_backlogged(self):
        partition, events = make_partition()
        # flood the DRAM channel far beyond the backlog window
        bytes_needed = int((BACKLOG_WINDOW * 4) * partition.dram.bytes_per_cycle)
        partition.dram.write(0.0, bytes_needed, "data_write")
        done = Collector()
        partition.access(0.0, 0x40, False, done)
        events.run()
        assert partition.stats.get("admission_stalls") == 1
        assert done.times[0] > BACKLOG_WINDOW


class TestSecureIntegration:
    def test_read_through_secure_engine_counts_metadata(self):
        secure = SecureMemoryConfig(
            encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.MAC_TREE
        )
        partition, events = make_partition(secure)
        partition.access(0.0, 0x40, False, Collector())
        events.run()
        assert partition.dram.stats.get("txn_ctr") == 4
        assert partition.dram.stats.get("txn_mac") == 4

    def test_secure_writeback_goes_through_engine(self):
        secure = SecureMemoryConfig(
            encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.MAC_TREE
        )
        partition, events = make_partition(secure)
        lines = partition.l2.config.num_lines
        for i in range(lines + 32):
            addr = i * partition.config.partition_interleave_bytes * 2
            partition.access(float(i), addr, True, Collector())
            events.run(until=float(i) + 0.01)
        events.run()
        assert partition.engine.stats.get("writes") > 0
