"""Sweep service: job store, worker protocol, HTTP front end.

The acceptance bar for the subsystem: any number of workers draining one
store must produce a merged sweep bit-identical to the serial
:class:`~repro.experiments.runner.Runner` on the same points — including
after a worker dies mid-point and another worker re-claims the lease.
"""

import json
import sqlite3
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.designs import build_named_gpu
from repro.experiments.runner import Runner, config_key, result_to_dict
from repro.jobs.store import (
    JOB_SCHEMA,
    DEFAULT_MAX_ATTEMPTS,
    SQLiteJobStore,
    iter_points,
)
from repro.jobs.worker import Worker, build_config, default_worker_id
from repro.jobs.service import (
    SweepService,
    sweep_heartbeat_lines,
    sweep_ledger_records,
    validate_submission,
)
from repro.obsv.ledger import canonical_points, read_ledger
from repro.obsv.metrics import (
    MetricsRegistry,
    NULL_METRICS,
    escape_label_value,
    parse_prometheus,
    render_prometheus,
    snapshot_value,
)
from repro.obsv.top import fleet_from_store, render_top

HORIZON, WARMUP = 1200.0, 800.0
BENCHES = ["nw", "bfs"]
SPECS = [{"design": "baseline", "partitions": 2},
         {"design": "direct_40", "partitions": 2}]


def submit(store, points=None, **kwargs):
    kwargs.setdefault("horizon", HORIZON)
    kwargs.setdefault("warmup", WARMUP)
    return store.submit_sweep(points or iter_points(BENCHES, SPECS), **kwargs)


def serial_results():
    """What the pre-subsystem serial path computes for the same points."""
    runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHES)
    out = {}
    for workload, spec in iter_points(BENCHES, SPECS):
        config = build_config(spec)
        out[(workload, json.dumps(spec, sort_keys=True))] = result_to_dict(
            runner.run(workload, config)
        )
    return out


# ---------------------------------------------------------------------------
# store mechanics
# ---------------------------------------------------------------------------


class TestStore:
    def test_submit_creates_pending_rows(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            sweep_id = submit(store)
            assert len(sweep_id) == 12
            counts = store.counts(sweep_id)
            assert counts["pending"] == len(BENCHES) * len(SPECS)
            assert counts["running"] == counts["done"] == counts["failed"] == 0

    def test_empty_sweep_rejected(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            with pytest.raises(ValueError):
                store.submit_sweep([], horizon=HORIZON, warmup=WARMUP)

    def test_claim_report_done_roundtrip(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            sweep_id = submit(store)
            job = store.claim("w1", lease_s=30)
            assert job is not None
            assert job.sweep_id == sweep_id
            assert job.workload == BENCHES[0]  # oldest first (seq order)
            assert job.spec == SPECS[0]
            assert job.horizon == HORIZON and job.warmup == WARMUP
            assert job.attempts == 1
            assert store.report(job.id, "w1", "simulated",
                                result={"ipc": 1.0}, config_digest="abc")
            counts = store.counts(sweep_id)
            assert counts["done"] == 1 and counts["running"] == 0
            row = store.results(sweep_id)[0]
            assert row["status"] == "done"
            assert row["outcome"] == "simulated"
            assert row["result"] == {"ipc": 1.0}
            assert row["config_digest"] == "abc"
            assert row["worker"] == "w1"

    def test_claim_exhausts_then_none(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            submit(store, points=[("nw", SPECS[0])])
            assert store.claim("w1", 30) is not None
            assert store.claim("w1", 30) is None  # only row is running

    def test_report_without_claim_is_refused(self, tmp_path):
        """A worker that lost its lease cannot clobber the re-run."""
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            submit(store, points=[("nw", SPECS[0])])
            job = store.claim("w1", 30)
            assert not store.report(job.id, "imposter", "simulated", result={})
            assert store.report(job.id, "w1", "simulated", result={})
            # the job is terminal now; even the owner cannot re-report.
            assert not store.report(job.id, "w1", "simulated", result={})

    def test_failed_attempt_requeues_with_backoff(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            sweep_id = submit(store, points=[("nw", SPECS[0])])
            job = store.claim("w1", 30)
            assert store.report(job.id, "w1", "failed", error="boom",
                                retry_in_s=3600)
            counts = store.counts(sweep_id)
            assert counts["pending"] == 1 and counts["failed"] == 0
            # the not_before stamp keeps the row out of reach for now.
            assert store.claim("w2", 30) is None

    def test_poison_failed_at_attempt_budget(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            sweep_id = submit(store, points=[("nw", SPECS[0])],
                              max_attempts=2)
            for attempt in (1, 2):
                job = store.claim("w1", 30)
                assert job is not None and job.attempts == attempt
                store.report(job.id, "w1", "failed", error="boom",
                             retry_in_s=0.0)
            counts = store.counts(sweep_id)
            assert counts["failed"] == 1 and counts["pending"] == 0
            assert store.claim("w1", 30) is None
            progress = store.progress(sweep_id)
            assert progress["status"] == "failed"
            assert progress["failures"][0]["error"] == "boom"

    def test_lease_expiry_requeues(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            submit(store, points=[("nw", SPECS[0])])
            job = store.claim("crasher", lease_s=0.01)
            time.sleep(0.05)
            requeued, poisoned = store.requeue_expired()
            assert (requeued, poisoned) == (1, 0)
            job2 = store.claim("rescuer", 30)
            assert job2 is not None and job2.id == job.id
            assert job2.attempts == 2
            # the dead worker's late report must be refused.
            assert not store.report(job.id, "crasher", "simulated", result={})

    def test_lease_expiry_poisons_at_budget(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            sweep_id = submit(store, points=[("nw", SPECS[0])], max_attempts=1)
            store.claim("crasher", lease_s=0.01)
            time.sleep(0.05)
            assert store.requeue_expired() == (0, 1)
            assert store.counts(sweep_id)["failed"] == 1

    def test_heartbeat_extends_lease(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            submit(store, points=[("nw", SPECS[0])])
            job = store.claim("w1", lease_s=0.05)
            assert store.heartbeat(job.id, "w1", lease_s=60)
            time.sleep(0.1)  # original lease would have lapsed
            assert store.requeue_expired() == (0, 0)
            assert not store.heartbeat(job.id, "other", lease_s=60)

    def test_atomic_claim_under_concurrency(self, tmp_path):
        """N threads over one store: every job claimed exactly once."""
        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            submit(store, points=[("nw", dict(SPECS[0], seq=i))
                                  for i in range(24)])
        claimed, errors = [], []

        def grab():
            own = SQLiteJobStore(path)
            try:
                while True:
                    job = own.claim(threading.current_thread().name, 60)
                    if job is None:
                        return
                    claimed.append(job.id)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)
            finally:
                own.close()

        threads = [threading.Thread(target=grab, name=f"t{i}") for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(claimed) == 24
        assert len(set(claimed)) == 24  # no double-claims

    def test_progress_and_sweeps(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            a = submit(store, points=[("nw", SPECS[0])])
            b = submit(store, points=[("bfs", SPECS[0])], label="second")
            progress = store.progress(a)
            assert progress["total"] == 1 and progress["status"] == "running"
            # sweep ids are random, and cross-sweep claim order follows
            # them — claim until sweep a's job comes up.
            job = store.claim("w1", 30)
            if job.sweep_id != a:
                job = store.claim("w1", 30)
            assert job.sweep_id == a
            store.report(job.id, "w1", "simulated", result={})
            assert store.progress(a)["status"] == "done"
            listed = store.sweeps()
            assert [s["sweep_id"] for s in listed] == [a, b]
            assert listed[1]["label"] == "second"
            with pytest.raises(KeyError):
                store.progress("0" * 12)
            with pytest.raises(KeyError):
                store.results("0" * 12)

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "q.sqlite"
        SQLiteJobStore(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute(f"PRAGMA user_version={JOB_SCHEMA + 1}")
        conn.close()
        with pytest.raises(RuntimeError, match="schema"):
            SQLiteJobStore(path)

    def test_iter_points_cross_product(self):
        points = iter_points(["a", "b"], [{"x": 1}, {"x": 2}])
        assert points == [("a", {"x": 1}), ("b", {"x": 1}),
                          ("a", {"x": 2}), ("b", {"x": 2})]

    def test_default_attempt_budget(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            submit(store, points=[("nw", SPECS[0])])
            job = store.claim("w1", 30)
            assert job.max_attempts == DEFAULT_MAX_ATTEMPTS


# ---------------------------------------------------------------------------
# the worker against the store
# ---------------------------------------------------------------------------


class TestWorker:
    def test_build_config_roundtrip(self):
        config = build_config({"design": "direct_40", "partitions": 2})
        assert config_key(config) == config_key(build_named_gpu("direct_40", 2))
        with pytest.raises(ValueError):
            build_config({"partitions": 2})
        with pytest.raises(KeyError):
            build_config({"design": "nope"})

    def test_worker_ids_are_unique(self):
        assert default_worker_id() != default_worker_id()

    def test_single_worker_drains_bit_identical(self, tmp_path):
        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            sweep_id = submit(store)
        store = SQLiteJobStore(path)
        worker = Worker(store, worker_id="w1", poll_s=0.01)
        assert worker.run() == len(BENCHES) * len(SPECS)
        assert worker.executed["simulated"] == len(BENCHES) * len(SPECS)
        expected = serial_results()
        for row in store.results(sweep_id):
            assert row["status"] == "done"
            key = (row["workload"], json.dumps(row["spec"], sort_keys=True))
            assert row["result"] == expected[key]
            assert row["config_digest"] == config_key(build_config(row["spec"]))
        store.close()

    def test_two_workers_merge_bit_identical_to_serial(self, tmp_path):
        """Two concurrent workers, separate connections, one store."""
        path = tmp_path / "q.sqlite"
        ledger_dir = tmp_path / "ledgers"
        with SQLiteJobStore(path) as store:
            sweep_id = submit(store)

        def drain(worker_id):
            own = SQLiteJobStore(path)
            try:
                Worker(own, worker_id=worker_id, poll_s=0.01,
                       ledger_dir=ledger_dir).run()
            finally:
                own.close()

        threads = [threading.Thread(target=drain, args=(f"w{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        store = SQLiteJobStore(path)
        rows = store.results(sweep_id)
        assert all(row["status"] == "done" for row in rows)
        expected = serial_results()
        for row in rows:
            key = (row["workload"], json.dumps(row["spec"], sort_keys=True))
            assert row["result"] == expected[key]
        # merged per-worker ledgers are record-equivalent to a serial run.
        merged = []
        for ledger in sorted(ledger_dir.glob("worker-*.jsonl")):
            merged.extend(read_ledger(ledger))
        serial_ledger = tmp_path / "serial.jsonl"
        runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHES,
                        ledger_path=serial_ledger)
        for workload, spec in iter_points(BENCHES, SPECS):
            runner.run(workload, build_config(spec))
        assert canonical_points(merged) == canonical_points(
            read_ledger(serial_ledger)
        )
        store.close()

    def test_crash_resume_bit_identical(self, tmp_path):
        """A worker dies mid-point; the lease lapses; a rescuer re-claims;
        the merged sweep is still bit-identical to serial."""
        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            sweep_id = submit(store)
            # the "crash": claim a point with a tiny lease and never
            # report — exactly what a killed process leaves behind.
            dead = store.claim("crashed-worker", lease_s=0.01)
            assert dead is not None
            time.sleep(0.05)
        store = SQLiteJobStore(path)
        worker = Worker(store, worker_id="rescuer", poll_s=0.01)
        worker.run()  # requeues the expired lease, then drains everything
        rows = store.results(sweep_id)
        assert all(row["status"] == "done" for row in rows)
        crashed_row = [r for r in rows if r["seq"] == dead.seq][0]
        assert crashed_row["worker"] == "rescuer"
        assert crashed_row["attempts"] == 2  # the crash burned one attempt
        expected = serial_results()
        for row in rows:
            key = (row["workload"], json.dumps(row["spec"], sort_keys=True))
            assert row["result"] == expected[key]
        # the dead worker's late report is refused post-completion too.
        assert not store.report(dead.id, "crashed-worker", "simulated",
                                result={"ipc": 0.0})
        store.close()

    def test_failing_spec_poisons_not_wedges(self, tmp_path):
        """One bad config burns its attempts and fails; the rest complete."""
        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            sweep_id = store.submit_sweep(
                [("nw", SPECS[0]), ("nw", {"design": "no_such_design",
                                           "partitions": 2})],
                horizon=HORIZON, warmup=WARMUP, max_attempts=2,
            )
        store = SQLiteJobStore(path)
        worker = Worker(store, worker_id="w1", poll_s=0.01,
                        backoff_base_s=0.0, backoff_cap_s=0.0)
        worker.run()
        counts = store.counts(sweep_id)
        assert counts["done"] == 1 and counts["failed"] == 1
        assert worker.executed["failed"] == 2  # two attempts, then poison
        progress = store.progress(sweep_id)
        assert progress["status"] == "failed"
        assert "no_such_design" in progress["failures"][0]["error"]
        store.close()

    def test_max_points_caps_claims(self, tmp_path):
        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            submit(store)
        store = SQLiteJobStore(path)
        assert Worker(store, worker_id="w1", max_points=1).run() == 1
        assert store.counts()["done"] == 1
        store.close()

    def test_until_validated(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            with pytest.raises(ValueError):
                Worker(store).run(until="sometimes")


# ---------------------------------------------------------------------------
# the HTTP front end
# ---------------------------------------------------------------------------


def http_json(url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


@pytest.fixture()
def service(tmp_path):
    svc = SweepService(tmp_path / "q.sqlite", port=0)
    svc.run_in_thread()
    try:
        yield svc
    finally:
        svc.shutdown()
        svc.server_close()


class TestService:
    def test_healthz(self, service):
        status, doc = http_json(service.url + "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["counts"]["pending"] == 0
        import repro

        assert doc["version"] == repro.__version__

    def test_submit_drain_results_dashboard(self, service, tmp_path):
        status, doc = http_json(
            service.url + "/sweeps",
            {"design": "baseline", "workloads": BENCHES, "partitions": 2,
             "horizon": HORIZON, "warmup": WARMUP, "label": "smoke"},
        )
        assert status == 201
        sweep_id = doc["sweep_id"]
        assert doc["total"] == len(BENCHES)

        # an external worker over its own connection drains the queue.
        store = SQLiteJobStore(tmp_path / "q.sqlite")
        Worker(store, worker_id="w1", poll_s=0.01).run()
        store.close()

        status, progress = http_json(service.url + f"/sweeps/{sweep_id}")
        assert status == 200
        assert progress["status"] == "done"
        assert progress["counts"]["done"] == len(BENCHES)
        assert progress["workers"] == ["w1"]

        status, listing = http_json(service.url + "/sweeps")
        assert [s["sweep_id"] for s in listing["sweeps"]] == [sweep_id]

        status, results = http_json(service.url + f"/sweeps/{sweep_id}/results")
        assert status == 200
        expected = serial_results()
        for row in results["results"]:
            key = (row["workload"], json.dumps(row["spec"], sort_keys=True))
            assert row["result"] == expected[key]

        with urllib.request.urlopen(
            service.url + f"/sweeps/{sweep_id}/dashboard"
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/html")
            html_text = response.read().decode()
        assert "<html" in html_text
        assert sweep_id in html_text

    def test_unknown_sweep_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_json(service.url + "/sweeps/" + "0" * 12)
        assert excinfo.value.code == 404

    def test_unknown_endpoint_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_json(service.url + "/nope")
        assert excinfo.value.code == 404

    def test_bad_submission_400(self, service):
        for payload in (
            {"design": "no_such_design"},
            {"workloads": ["doom"]},
            {"workloads": []},
            {"partitions": "many"},
            {"horizon": -1},
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_json(service.url + "/sweeps", payload)
            assert excinfo.value.code == 400

    def test_progress_query_requeues_expired_leases(self, service, tmp_path):
        _, doc = http_json(
            service.url + "/sweeps",
            {"design": "baseline", "workloads": ["nw"], "partitions": 2,
             "horizon": HORIZON, "warmup": WARMUP},
        )
        store = SQLiteJobStore(tmp_path / "q.sqlite")
        store.claim("doomed", lease_s=0.01)
        time.sleep(0.05)
        _, progress = http_json(service.url + f"/sweeps/{doc['sweep_id']}")
        assert progress["counts"]["pending"] == 1  # back in the queue
        assert progress["counts"]["running"] == 0
        store.close()


# ---------------------------------------------------------------------------
# the metrics registry and fleet observability
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_concurrent_increments_are_exact(self):
        """4 threads hammering one counter lose nothing."""
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "test", labels=("lane",))
        hist = registry.histogram("t_us", "test")
        per_thread, threads_n = 5_000, 4

        def hammer(lane):
            series = counter.labels(lane)
            for i in range(per_thread):
                series.inc()
                hist.observe(float(i % 7 + 1))

        threads = [threading.Thread(target=hammer, args=(f"l{i % 2}",))
                   for i in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = registry.snapshot()
        assert snapshot_value(snap, "t_total") == per_thread * threads_n
        assert snapshot_value(snap, "t_total", {"lane": "l0"}) == 2 * per_thread
        hist_doc = snap["metrics"]["t_us"]["series"][0]["hist"]
        assert hist_doc["n"] == per_thread * threads_n

    def test_label_cardinality_and_validation(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "test", labels=("outcome",))
        family.labels("a").inc()
        family.labels("b").inc(2)
        family.labels("a").inc(3)
        snap = registry.snapshot()
        series = snap["metrics"]["c_total"]["series"]
        assert len(series) == 2  # one series per distinct label tuple
        assert snapshot_value(snap, "c_total", {"outcome": "a"}) == 4
        assert snapshot_value(snap, "c_total", {"outcome": "b"}) == 2
        with pytest.raises(ValueError):
            family.labels("a", "extra")  # arity mismatch
        with pytest.raises(ValueError):
            registry.gauge("c_total")  # kind mismatch on re-register
        with pytest.raises(ValueError):
            registry.counter("c_total", labels=("other",))  # label mismatch
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            family.labels("a").inc(-1)  # counters only go up
        # idempotent re-registration returns the same family.
        assert registry.counter("c_total", labels=("outcome",)) is family

    def test_prometheus_escaping_roundtrip(self):
        nasty = 'quo"te\\slash\nnewline'
        assert escape_label_value(nasty) == 'quo\\"te\\\\slash\\nnewline'
        registry = MetricsRegistry()
        registry.counter("e_total", "test", labels=("path",)).labels(nasty).inc()
        text = render_prometheus([(registry.snapshot(), None)])
        assert "\n\n" not in text  # escaped newline never splits a sample
        samples = parse_prometheus(text)
        assert samples[("e_total", (("path", nasty),))] == 1.0

    def test_snapshot_merge_roundtrip(self):
        a = MetricsRegistry()
        a.counter("m_total", "test", labels=("k",)).labels("x").inc(3)
        a.gauge("m_gauge", "test").set(7.0)
        a.histogram("m_us", "test").observe(100.0)
        b = MetricsRegistry()
        b.counter("m_total", "test", labels=("k",)).labels("x").inc(2)
        b.merge(a.snapshot())
        b.merge(a.snapshot())
        snap = b.snapshot()
        # counters add per merge; gauges last-write-win.
        assert snapshot_value(snap, "m_total", {"k": "x"}) == 3 + 3 + 2
        assert snapshot_value(snap, "m_gauge") == 7.0
        assert snap["metrics"]["m_us"]["series"][0]["hist"]["n"] == 2
        # extra labels widen the series without touching the original.
        c = MetricsRegistry()
        c.merge(a.snapshot(), extra_labels={"worker": "w1"})
        stamped = c.snapshot()
        assert snapshot_value(stamped, "m_total",
                              {"k": "x", "worker": "w1"}) == 3
        assert snapshot_value(stamped, "m_total", {"worker": "w9"}) == 0

    def test_render_parse_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("r_total", "help text", labels=("op",)).labels("claim").inc(5)
        registry.gauge("r_gauge").set(2.5)
        registry.histogram("r_us", "latency").observe(3.0)
        text = render_prometheus([(registry.snapshot(), None)])
        assert "# TYPE r_total counter" in text
        assert "# HELP r_total help text" in text
        samples = parse_prometheus(text)
        assert samples[("r_total", (("op", "claim"),))] == 5.0
        assert samples[("r_gauge", ())] == 2.5
        assert samples[("r_us_count", ())] == 1.0
        assert samples[("r_us_sum", ())] == 3.0
        # cumulative buckets: value 3 lands in le=4, carried into +Inf.
        assert samples[("r_us_bucket", (("le", "4"),))] == 1.0
        assert samples[("r_us_bucket", (("le", "+Inf"),))] == 1.0

    def test_null_registry_absorbs_everything(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.counter("x_total", labels=("a",)).labels("v").inc()
        NULL_METRICS.gauge("x").set(1.0)
        NULL_METRICS.histogram("x_us").observe(2.0)
        assert NULL_METRICS.snapshot()["metrics"] == {}


class TestProgressEdges:
    def test_zero_completed_has_no_rate_or_eta(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            sweep_id = submit(store)
            progress = store.progress(sweep_id)
            assert progress["points_per_s"] == 0.0
            assert progress["eta_s"] is None

    def test_all_failed_has_no_eta(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            sweep_id = submit(store, points=[("nw", SPECS[0])], max_attempts=1)
            job = store.claim("w1", 30)
            store.report(job.id, "w1", "failed", error="boom", retry_in_s=0.0)
            progress = store.progress(sweep_id)
            assert progress["status"] == "failed"
            assert progress["points_per_s"] == 0.0
            assert progress["eta_s"] is None

    def test_future_created_ts_never_fabricates_rate(self, tmp_path):
        """A submitting host's clock ahead of ours must not yield a
        ~1e9 points/s division artifact."""
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            sweep_id = submit(store, points=[("nw", SPECS[0]),
                                             ("bfs", SPECS[0])])
            job = store.claim("w1", 30)
            store.report(job.id, "w1", "simulated", result={})
            store._conn.execute(
                "UPDATE sweeps SET created_ts=? WHERE id=?",
                (time.time() + 3600.0, sweep_id),
            )
            progress = store.progress(sweep_id)
            assert progress["elapsed_s"] == 0.0
            assert progress["points_per_s"] == 0.0
            assert progress["eta_s"] is None

    def test_done_sweep_has_no_eta(self, tmp_path):
        with SQLiteJobStore(tmp_path / "q.sqlite") as store:
            sweep_id = submit(store, points=[("nw", SPECS[0])])
            job = store.claim("w1", 30)
            store.report(job.id, "w1", "simulated", result={})
            progress = store.progress(sweep_id)
            assert progress["status"] == "done"
            assert progress["eta_s"] is None  # nothing remaining


class TestFleetMetrics:
    def instrumented_drain(self, tmp_path):
        """Mirror ``_worker_main``: store and worker share one registry."""
        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            sweep_id = submit(store)
        registry = MetricsRegistry()
        store = SQLiteJobStore(path, metrics=registry)
        worker = Worker(store, worker_id="w1", poll_s=0.01, metrics=registry)
        worker.run()
        return store, sweep_id, registry

    def test_store_and_worker_counters(self, tmp_path):
        store, _sweep_id, registry = self.instrumented_drain(tmp_path)
        total = len(BENCHES) * len(SPECS)
        snap = registry.snapshot()
        assert snapshot_value(snap, "repro_store_claims_total") == total
        assert snapshot_value(snap, "repro_store_reports_total",
                              {"outcome": "simulated"}) == total
        assert snapshot_value(snap, "repro_worker_points_total",
                              {"outcome": "simulated"}) == total
        hist = snap["metrics"]["repro_worker_point_duration_us"]["series"]
        assert sum(entry["hist"]["n"] for entry in hist) == total
        op_hist = snap["metrics"]["repro_store_op_us"]["series"]
        assert any(entry["labels"]["op"] == "claim" for entry in op_hist)
        store.close()

    def test_worker_snapshot_persists_through_store(self, tmp_path):
        store, sweep_id, _registry = self.instrumented_drain(tmp_path)
        fleet = store.workers_seen()
        assert [entry["worker"] for entry in fleet] == ["w1"]
        entry = fleet[0]
        assert entry["uptime_s"] is not None and entry["age_s"] >= 0
        persisted = entry["metrics"]
        total = len(BENCHES) * len(SPECS)
        assert snapshot_value(persisted, "repro_worker_points_total",
                              {"outcome": "simulated"}) == total
        # the store's own counters travel inside the worker snapshot.
        assert snapshot_value(persisted, "repro_store_claims_total") == total
        # repro top renders the same fleet state from the store.
        text = render_top(fleet_from_store(store))
        assert sweep_id in text
        assert "w1" in text
        store.close()

    def test_default_worker_self_instruments(self, tmp_path):
        """No registry given: the worker makes its own, so the fleet is
        visible even over an un-instrumented store — but the store's
        counters (NULL registry) stay out of the snapshot."""
        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            submit(store, points=[("nw", SPECS[0])])
        store = SQLiteJobStore(path)
        Worker(store, worker_id="w1", poll_s=0.01).run()
        fleet = store.workers_seen()
        assert [entry["worker"] for entry in fleet] == ["w1"]
        persisted = fleet[0]["metrics"]
        assert snapshot_value(persisted, "repro_worker_points_total",
                              {"outcome": "simulated"}) == 1
        assert snapshot_value(persisted, "repro_store_claims_total") == 0
        store.close()

    def test_metrics_endpoint(self, service, tmp_path):
        http_json(
            service.url + "/sweeps",
            {"design": "baseline", "workloads": ["nw"], "partitions": 2,
             "horizon": HORIZON, "warmup": WARMUP},
        )
        registry = MetricsRegistry()
        store = SQLiteJobStore(tmp_path / "q.sqlite", metrics=registry)
        Worker(store, worker_id="w1", poll_s=0.01, metrics=registry).run()
        store.close()
        with urllib.request.urlopen(service.url + "/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        samples = parse_prometheus(text)
        by_name = {}
        for (name, labels), value in samples.items():
            by_name.setdefault(name, []).append((dict(labels), value))
        # the service's own HTTP series.
        assert any(labels.get("endpoint") == "/sweeps"
                   for labels, _ in by_name["repro_http_requests_total"])
        assert "repro_http_request_duration_us_count" in by_name
        # derived store gauges.
        assert sum(v for labels, v in by_name["repro_store_jobs"]
                   if labels.get("status") == "done") == 1
        assert by_name["repro_store_sweeps"][0][1] == 1
        # the drained worker's snapshot, stamped worker="w1".
        assert any(labels.get("worker") == "w1" and
                   labels.get("outcome") == "simulated" and value == 1
                   for labels, value in by_name["repro_worker_points_total"])
        assert by_name["repro_fleet_workers"][0][1] == 1

    def test_events_endpoint(self, service, tmp_path):
        _, doc = http_json(
            service.url + "/sweeps",
            {"design": "baseline", "workloads": BENCHES, "partitions": 2,
             "horizon": HORIZON, "warmup": WARMUP},
        )
        sweep_id = doc["sweep_id"]
        store = SQLiteJobStore(tmp_path / "q.sqlite")
        Worker(store, worker_id="w1", poll_s=0.01).run()
        store.close()
        status, payload = http_json(
            service.url + f"/sweeps/{sweep_id}/events?since=0&timeout=0"
        )
        assert status == 200
        events = payload["events"]
        assert len(events) == len(BENCHES)
        assert all(event["status"] == "done" for event in events)
        assert all("result" not in event for event in events)  # projection
        assert payload["progress"]["status"] == "done"
        # a cursor past the last event long-polls and returns empty
        # immediately because the sweep is terminal.
        last = max(event["done_ts"] for event in events)
        _, tail = http_json(
            service.url + f"/sweeps/{sweep_id}/events?since={last}&timeout=30"
        )
        assert tail["events"] == []
        assert tail["now"] >= last
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_json(service.url + "/sweeps/" + "0" * 12 +
                      "/events?timeout=0")
        assert excinfo.value.code == 404

    def test_access_log(self, tmp_path):
        log_path = tmp_path / "logs" / "access.jsonl"
        svc = SweepService(tmp_path / "q.sqlite", port=0,
                           access_log=log_path)
        svc.run_in_thread()
        try:
            http_json(svc.url + "/healthz")
            with pytest.raises(urllib.error.HTTPError):
                http_json(svc.url + "/nope")
        finally:
            svc.shutdown()
            svc.server_close()
        records = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        assert [r["path"] for r in records] == ["/healthz", "/nope"]
        assert [r["status"] for r in records] == [200, 404]
        for record in records:
            assert record["method"] == "GET"
            assert record["duration_ms"] >= 0
            assert record["ts"] > 0

    def test_live_registry_counts_requests(self, service):
        http_json(service.url + "/healthz")
        # the handler's finally block runs just after the client reads
        # the body — poll briefly rather than racing it.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            snap = service.metrics.snapshot()
            if snapshot_value(snap, "repro_http_requests_total",
                              {"endpoint": "/healthz", "status": "200"}):
                break
            time.sleep(0.01)
        assert snapshot_value(snap, "repro_http_requests_total",
                              {"endpoint": "/healthz", "status": "200"}) == 1


class TestSynthesizedObservability:
    def drained_store(self, tmp_path):
        path = tmp_path / "q.sqlite"
        with SQLiteJobStore(path) as store:
            sweep_id = submit(store)
        store = SQLiteJobStore(path)
        Worker(store, worker_id="w1", poll_s=0.01).run()
        return store, sweep_id

    def test_ledger_records_match_worker_ledger(self, tmp_path):
        """Synthesized records are canonical-equivalent to real ledgers."""
        store, sweep_id = self.drained_store(tmp_path)
        synthesized = sweep_ledger_records(store, sweep_id)
        serial_ledger = tmp_path / "serial.jsonl"
        runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHES,
                        ledger_path=serial_ledger)
        for workload, spec in iter_points(BENCHES, SPECS):
            runner.run(workload, build_config(spec))
        assert canonical_points(synthesized) == canonical_points(
            read_ledger(serial_ledger)
        )
        store.close()

    def test_heartbeat_lines_lead_with_start(self, tmp_path):
        store, sweep_id = self.drained_store(tmp_path)
        lines = sweep_heartbeat_lines(store, sweep_id)
        assert lines[0]["event"] == "start"
        assert lines[0]["total"] == len(BENCHES) * len(SPECS)
        assert lines[-1]["event"] == "done"
        assert lines[-1]["status"] == "ok"
        store.close()

    def test_validate_submission_defaults(self):
        points, options = validate_submission({})
        from repro.workloads.suite import BENCHMARK_ORDER

        assert [w for w, _ in points] == list(BENCHMARK_ORDER)
        assert all(spec == {"design": "secureMem_mshr64", "partitions": 4}
                   for _, spec in points)
        assert options["horizon"] == 10_000
        with pytest.raises(ValueError):
            validate_submission([])
        with pytest.raises(ValueError):
            validate_submission({"designs": []})
