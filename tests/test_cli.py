"""Command-line interface."""

import pytest

from repro.cli import DESIGNS, main

FAST = ["--horizon", "1200", "--warmup", "800", "--partitions", "2"]


class TestStaticCommands:
    def test_designs_lists_everything(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in DESIGNS:
            assert name in out

    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "290.13" in out or "290.14" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        assert "AES engine" in capsys.readouterr().out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        assert main(["run", "nw", "--design", "direct_40", *FAST]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "bandwidth util" in out

    def test_run_secure_prints_metadata(self, capsys):
        assert main(["run", "nw", "--design", "secureMem_mshr64", *FAST]) == 0
        out = capsys.readouterr().out
        assert "mac miss rate" in out

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "doom", *FAST])

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            main(["run", "nw", "--design", "nope", *FAST])


class TestFigure:
    def test_figure_table2(self, capsys):
        assert main(["figure", "table2", *FAST]) == 0
        assert "counter" in capsys.readouterr().out

    def test_figure_table6_7(self, capsys):
        assert main(["figure", "table6_7", *FAST]) == 0
        assert "L2 displaced" in capsys.readouterr().out


class TestAttack:
    def test_attack_matrix(self, capsys):
        assert main(["attack"]) == 0
        out = capsys.readouterr().out
        assert "DETECTED" in out
        assert "missed" in out
        # encryption-only rows miss replay; tree rows catch it
        for line in out.splitlines():
            if line.startswith("ctr_mac_bmt"):
                assert line.count("DETECTED") == 3
            if line.startswith("direct ") or line.startswith("ctr "):
                assert "DETECTED" not in line


class TestDesignRegistryConsistency:
    def test_every_factory_builds(self):
        for name, factory in DESIGNS.items():
            secure = factory()
            if name != "baseline":
                assert secure is not None
