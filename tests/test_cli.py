"""Command-line interface."""

from pathlib import Path

import pytest

import repro
from repro.cli import DESIGNS, main

FAST = ["--horizon", "1200", "--warmup", "800", "--partitions", "2"]


class TestStaticCommands:
    def test_designs_lists_everything(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in DESIGNS:
            assert name in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_version_single_sourced_from_pyproject(self):
        """pyproject declares version dynamic, read from repro.__version__."""
        pyproject = (
            Path(__file__).resolve().parent.parent / "pyproject.toml"
        ).read_text()
        assert 'dynamic = ["version"]' in pyproject
        assert 'version = { attr = "repro.__version__" }' in pyproject

    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "290.13" in out or "290.14" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        assert "AES engine" in capsys.readouterr().out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        assert main(["run", "nw", "--design", "direct_40", *FAST]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "bandwidth util" in out

    def test_run_secure_prints_metadata(self, capsys):
        assert main(["run", "nw", "--design", "secureMem_mshr64", *FAST]) == 0
        out = capsys.readouterr().out
        assert "mac miss rate" in out

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "doom", *FAST])

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            main(["run", "nw", "--design", "nope", *FAST])


class TestFigure:
    def test_figure_table2(self, capsys):
        assert main(["figure", "table2", *FAST]) == 0
        assert "counter" in capsys.readouterr().out

    def test_figure_table6_7(self, capsys):
        assert main(["figure", "table6_7", *FAST]) == 0
        assert "L2 displaced" in capsys.readouterr().out


class TestAttack:
    def test_attack_matrix(self, capsys):
        assert main(["attack"]) == 0
        out = capsys.readouterr().out
        assert "DETECTED" in out
        assert "missed" in out
        # encryption-only rows miss replay; tree rows catch it
        for line in out.splitlines():
            if line.startswith("ctr_mac_bmt"):
                assert line.count("DETECTED") == 3
            if line.startswith("direct ") or line.startswith("ctr "):
                assert "DETECTED" not in line


class TestSweepStore:
    def test_sweep_store_submits_drains_and_prints(self, tmp_path, capsys):
        store = tmp_path / "q.sqlite"
        assert main(["sweep", "--design", "baseline", "--bench", "nw",
                     "--store", str(store), *FAST]) == 0
        out = capsys.readouterr().out
        assert "submitted sweep" in out
        assert "nw" in out
        assert store.exists()

    def test_worker_drains_nothing_cleanly(self, tmp_path, capsys):
        store = tmp_path / "q.sqlite"
        assert main(["worker", "--store", str(store), "--max-points", "1"]) == 0
        assert "0 claim(s)" in capsys.readouterr().out


class TestObservabilityErrors:
    """Missing/empty/misused ledgers die with one line and exit 2."""

    def test_diff_missing_ledger_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["diff", str(missing), str(missing)]) == 2
        err = capsys.readouterr().err
        assert "no such ledger" in err
        assert "Traceback" not in err

    def test_diff_empty_ledger_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n")
        assert main(["diff", str(empty), str(empty)]) == 2
        err = capsys.readouterr().err
        assert "no point records" in err
        assert "repro sweep" in err  # the error tells you how to make one

    def test_diff_directory_exits_2(self, tmp_path, capsys):
        assert main(["diff", str(tmp_path), str(tmp_path)]) == 2
        assert "directory" in capsys.readouterr().err

    def test_scorecard_directory_ledger_exits_2(self, tmp_path, capsys):
        assert main(["scorecard", "--profile", "smoke",
                     "--ledger", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "directory" in err
        assert "Traceback" not in err


class TestDesignRegistryConsistency:
    def test_every_factory_builds(self):
        for name, factory in DESIGNS.items():
            secure = factory()
            if name != "baseline":
                assert secure is not None


class TestBench:
    """`repro bench` wraps the perf harness; wiring tested with a canned
    report so the suite never pays for a real multi-second benchmark."""

    @staticmethod
    def _canned_report():
        import json

        from repro.sim import fastpath

        return {
            "host": {"fastpath": fastpath.switch_state()},
            "events_per_second": 100.0,
            "identical_results": True,
            "telemetry": {"drift_free": True},
        }

    def test_load_perf_smoke_exposes_harness(self):
        from repro import cli

        harness = cli._load_perf_smoke()
        assert callable(harness.core_bench)
        assert callable(harness.regression_guard)

    def test_bench_writes_json_and_guards(self, tmp_path, capsys, monkeypatch):
        import json

        from repro import cli
        from repro.sim import fastpath

        harness = cli._load_perf_smoke()
        monkeypatch.setattr(harness, "core_bench", self._canned_report)
        monkeypatch.setattr(cli, "_load_perf_smoke", lambda: harness)
        monkeypatch.setattr("os.getloadavg", lambda: (0.0, 0.0, 0.0))

        out = tmp_path / "bench.json"
        baseline = tmp_path / "base.json"

        baseline.write_text(json.dumps(
            {"events_per_second": 90.0,
             "host": {"fastpath": fastpath.switch_state()}}))
        assert main(["bench", "--json", str(out), "--check",
                     "--baseline", str(baseline)]) == 0
        assert json.loads(out.read_text())["events_per_second"] == 100.0

        # a baseline taken under different switches is never compared
        flipped = dict(fastpath.switch_state())
        flipped["columnar"] = not flipped["columnar"]
        baseline.write_text(json.dumps(
            {"events_per_second": 90.0, "host": {"fastpath": flipped}}))
        assert main(["bench", "--check", "--baseline", str(baseline)]) == 0
        assert "skipped" in capsys.readouterr().out

        # a real regression against a same-switch baseline fails the check
        baseline.write_text(json.dumps(
            {"events_per_second": 1000.0,
             "host": {"fastpath": fastpath.switch_state()}}))
        assert main(["bench", "--check", "--baseline", str(baseline)]) == 1
