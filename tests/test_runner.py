"""Experiment runner: caching, serialization, aggregates."""

import pytest

from repro.common.config import GpuConfig, MetadataKind
from repro.experiments import designs
from repro.experiments.runner import (
    Runner,
    config_key,
    gmean,
    result_from_dict,
    result_to_dict,
)


def tiny_runner(**kwargs):
    kwargs.setdefault("horizon", 1500)
    kwargs.setdefault("warmup", 500)
    kwargs.setdefault("benchmarks", ["nw"])
    return Runner(**kwargs)


class TestConfigKey:
    def test_stable_for_equal_configs(self):
        assert config_key(GpuConfig.scaled(4)) == config_key(GpuConfig.scaled(4))

    def test_differs_across_configs(self):
        assert config_key(GpuConfig.scaled(4)) != config_key(GpuConfig.scaled(2))

    def test_sensitive_to_secure_settings(self):
        a = GpuConfig.scaled(2, secure=designs.secure_mem(0))
        b = GpuConfig.scaled(2, secure=designs.secure_mem(64))
        assert config_key(a) != config_key(b)


class TestGmean:
    def test_single_value(self):
        assert gmean([4.0]) == pytest.approx(4.0)

    def test_classic(self):
        assert gmean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert gmean([]) == 0.0

    def test_zero_guarded(self):
        assert gmean([0.0, 1.0]) >= 0.0


class TestCaching:
    def test_memoizes_runs(self):
        runner = tiny_runner()
        config = designs.build_gpu(None, 2)
        first = runner.run("nw", config)
        second = runner.run("nw", config)
        assert first is second

    def test_disk_cache_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        config = designs.build_gpu(None, 2)
        with tiny_runner(cache_path=path) as writer:
            r1 = writer.run("nw", config)
        assert path.exists()
        with tiny_runner(cache_path=path) as reader:
            r2 = reader.run("nw", config)
            assert reader.stats.disk_hits == 1
        assert r2.ipc == pytest.approx(r1.ipc)
        assert r2.dram_txn == r1.dram_txn

    def test_normalized_sweep_has_gmean(self):
        runner = tiny_runner()
        base = designs.build_gpu(None, 2)
        secure = designs.build_gpu(designs.direct(40), 2)
        sweep = runner.normalized_sweep(secure, base)
        assert set(sweep) == {"nw", "Gmean"}
        assert 0 < sweep["Gmean"] <= 1.2


class TestResultSerialization:
    def test_roundtrip(self):
        runner = tiny_runner()
        result = runner.run("nw", designs.build_gpu(designs.secure_mem(64), 2))
        restored = result_from_dict(result_to_dict(result))
        assert restored.ipc == result.ipc
        assert restored.metadata[MetadataKind.COUNTER] == result.metadata[
            MetadataKind.COUNTER
        ]
        assert restored.traffic_fractions() == result.traffic_fractions()

    def test_derived_metrics_survive(self):
        runner = tiny_runner()
        result = runner.run("nw", designs.build_gpu(designs.secure_mem(64), 2))
        restored = result_from_dict(result_to_dict(result))
        assert restored.l2_miss_rate == result.l2_miss_rate
        for kind in MetadataKind:
            assert restored.metadata_miss_rate(kind) == result.metadata_miss_rate(kind)
