"""Secure engine timing model: metadata paths, MSHRs, trees, overflow."""

import pytest

from repro.common.config import (
    EncryptionMode,
    GpuConfig,
    IntegrityMode,
    MetadataKind,
    SecureMemoryConfig,
)
from repro.common.stats import StatGroup
from repro.secure.engine import SecureEngine
from repro.secure.layout import MetadataLayout
from repro.sim.dram import DramChannel
from repro.sim.event import EventQueue

MB = 1024 * 1024


def make_engine(secure=None, protected=16 * MB, trace=None):
    """A bare engine on its own DRAM channel and event queue."""
    if secure is None:
        secure = SecureMemoryConfig(
            encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.MAC_TREE
        )
    gpu = GpuConfig.scaled(num_partitions=1, secure=secure)
    events = EventQueue()
    stats = StatGroup("secure")
    dram = DramChannel(gpu.dram, gpu.core_clock_mhz, StatGroup("dram"))
    layout = MetadataLayout(protected)
    engine = SecureEngine(secure, gpu, dram, events, layout, stats, trace_hook=trace)
    return engine, events, dram, layout


def drain(events):
    events.run()


class TestBaselinePassThrough:
    def test_disabled_engine_reads_straight_from_dram(self):
        secure = SecureMemoryConfig(
            encryption=EncryptionMode.NONE, integrity=IntegrityMode.NONE
        )
        engine, events, dram, _ = make_engine(secure)
        ready = engine.read_sector(0.0, 0x40)
        assert ready == pytest.approx(
            dram.access_latency + 32 / dram.bytes_per_cycle
        )
        assert dram.stats.get("txn_data_read") == 1
        assert dram.stats.get("txn_ctr") == 0

    def test_disabled_engine_write(self):
        secure = SecureMemoryConfig(
            encryption=EncryptionMode.NONE, integrity=IntegrityMode.NONE
        )
        engine, events, dram, _ = make_engine(secure)
        engine.write_sector(0.0, 0x40)
        assert dram.stats.get("txn_data_write") == 1


class TestCounterModeRead:
    def test_first_read_fetches_counter_mac_and_tree(self):
        engine, events, dram, layout = make_engine()
        engine.read_sector(0.0, 0x0)
        drain(events)
        assert dram.stats.get("txn_data_read") == 1
        assert dram.stats.get("txn_ctr") == 4  # one 128B counter block
        assert dram.stats.get("txn_mac") == 4
        # BMT walk fetched at least one node (cold tree cache)
        assert dram.stats.get("txn_bmt") >= 4

    def test_counter_hit_after_fill(self):
        engine, events, dram, _ = make_engine()
        engine.read_sector(0.0, 0x0)
        drain(events)
        ctr_txn = dram.stats.get("txn_ctr")
        engine.read_sector(events.now, 0x20)  # same line, same counter block
        drain(events)
        assert dram.stats.get("txn_ctr") == ctr_txn
        ctr = engine.kind_stats(MetadataKind.COUNTER)
        assert ctr.get("hits") == 1

    def test_aes_latency_hidden_behind_data_fetch(self):
        """With a counter-cache hit, response time tracks the data fetch."""
        engine, events, dram, _ = make_engine()
        engine.read_sector(0.0, 0x0)
        drain(events)
        now = events.now
        data_only = dram.access_latency + 32 / dram.bytes_per_cycle
        ready = engine.read_sector(now, 0x20)
        # counter hits; OTP ready ~ hit_lat + occupancy + 40 << data fetch
        assert ready - now == pytest.approx(data_only + 1, rel=0.05)

    def test_secondary_miss_merges_with_mshrs(self):
        engine, events, dram, _ = make_engine()
        r1 = engine.read_sector(0.0, 0x0)
        r2 = engine.read_sector(0.0, 0x20)
        ctr = engine.kind_stats(MetadataKind.COUNTER)
        assert ctr.get("secondary_misses") == 1
        assert ctr.get("merged") == 1
        assert ctr.get("duplicate_fetches") == 0
        assert dram.stats.get("txn_ctr") == 4  # single fetch

    def test_secondary_miss_duplicates_without_mshrs(self):
        secure = SecureMemoryConfig(
            encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.MAC_TREE
        ).with_metadata_mshrs(0)
        engine, events, dram, _ = make_engine(secure)
        engine.read_sector(0.0, 0x0)
        engine.read_sector(0.0, 0x20)
        ctr = engine.kind_stats(MetadataKind.COUNTER)
        assert ctr.get("duplicate_fetches") == 1
        assert dram.stats.get("txn_ctr") == 8  # two full fetches

    def test_merge_cap_forces_duplicates(self):
        secure = SecureMemoryConfig(
            encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.MAC_TREE
        ).with_metadata_mshrs(4)
        from dataclasses import replace

        secure = replace(
            secure, counter_cache=replace(secure.counter_cache, mshr_merge_cap=2)
        )
        engine, events, dram, _ = make_engine(secure)
        for i in range(5):
            engine.read_sector(0.0, i * 32)
        ctr = engine.kind_stats(MetadataKind.COUNTER)
        assert ctr.get("merged") == 2
        assert ctr.get("duplicate_fetches") == 2


class TestCounterModeWrite:
    def test_write_dirties_counter_and_mac(self):
        engine, events, dram, _ = make_engine()
        engine.write_sector(0.0, 0x0)
        drain(events)
        assert dram.stats.get("txn_data_write") == 1
        ctr = engine.kind_stats(MetadataKind.COUNTER)
        mac = engine.kind_stats(MetadataKind.MAC)
        assert ctr.get("accesses") == 1
        assert mac.get("accesses") == 1

    def test_dirty_counter_eviction_writes_back_and_updates_parent(self):
        engine, events, dram, layout = make_engine()
        # dirty many distinct counter blocks to overflow the 2KB (16-line) cache
        for i in range(40):
            engine.write_sector(float(i), i * layout.counters.data_bytes_per_block)
            events.run(until=float(i) + 0.5)
        drain(events)
        ctr = engine.kind_stats(MetadataKind.COUNTER)
        assert ctr.get("writebacks") > 0
        assert dram.stats.get("txn_wb") >= 4 * ctr.get("writebacks")
        # lazy update touched the tree cache
        tree = engine.kind_stats(MetadataKind.TREE)
        assert tree.get("accesses") > 0


class TestCounterOverflow:
    def test_overflow_triggers_chunk_reencryption(self):
        engine, events, dram, layout = make_engine()
        limit = layout.counters.minor_limit
        for i in range(limit):
            engine.write_sector(float(i), 0x0)
            events.run(until=float(i) + 0.5)
        drain(events)
        assert engine.stats.get("counter_overflows") == 1
        chunk_txns = layout.counters.data_bytes_per_block // 32
        assert dram.stats.get("txn_data_read") >= chunk_txns

    def test_no_overflow_below_limit(self):
        engine, events, dram, _ = make_engine()
        for i in range(20):
            engine.write_sector(float(i), 0x0)
        drain(events)
        assert engine.stats.get("counter_overflows") == 0


class TestDirectMode:
    def direct_engine(self, integrity=IntegrityMode.NONE, latency=40):
        secure = SecureMemoryConfig(
            encryption=EncryptionMode.DIRECT, integrity=integrity, aes_latency=latency
        ).with_metadata_mshrs(64)
        return make_engine(secure)

    def test_no_counter_traffic(self):
        engine, events, dram, _ = self.direct_engine(IntegrityMode.MAC_TREE)
        engine.read_sector(0.0, 0x0)
        drain(events)
        assert dram.stats.get("txn_ctr") == 0

    def test_latency_exposed_on_critical_path(self):
        engine40, ev40, _, _ = self.direct_engine(latency=40)
        engine160, ev160, _, _ = self.direct_engine(latency=160)
        r40 = engine40.read_sector(0.0, 0x0)
        r160 = engine160.read_sector(0.0, 0x0)
        assert r160 - r40 == pytest.approx(120)

    def test_mac_only_generates_no_tree_traffic(self):
        engine, events, dram, _ = self.direct_engine(IntegrityMode.MAC)
        engine.read_sector(0.0, 0x0)
        drain(events)
        assert dram.stats.get("txn_mac") == 4
        assert dram.stats.get("txn_bmt") == 0

    def test_mac_tree_walks_mt(self):
        engine, events, dram, _ = self.direct_engine(IntegrityMode.MAC_TREE)
        engine.read_sector(0.0, 0x0)
        drain(events)
        assert dram.stats.get("txn_bmt") >= 4

    def test_pure_encryption_has_zero_metadata_traffic(self):
        engine, events, dram, _ = self.direct_engine(IntegrityMode.NONE)
        engine.read_sector(0.0, 0x0)
        engine.write_sector(1.0, 0x40)
        drain(events)
        assert dram.stats.get("txn_ctr") == 0
        assert dram.stats.get("txn_mac") == 0
        assert dram.stats.get("txn_bmt") == 0


class TestIdealizedCaches:
    def test_perfect_cache_never_misses(self):
        from dataclasses import replace

        secure = replace(
            SecureMemoryConfig(
                encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.MAC_TREE
            ),
            perfect_metadata_cache=True,
        )
        engine, events, dram, _ = make_engine(secure)
        for i in range(50):
            engine.read_sector(float(i), i * 4096)
        drain(events)
        assert dram.stats.get("txn_ctr") == 0
        assert dram.stats.get("txn_mac") == 0
        ctr = engine.kind_stats(MetadataKind.COUNTER)
        assert ctr.get("misses") == 0

    def test_infinite_cache_only_cold_misses(self):
        from dataclasses import replace

        secure = replace(
            SecureMemoryConfig(
                encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.MAC_TREE
            ),
            infinite_metadata_cache=True,
        )
        engine, events, dram, layout = make_engine(secure)
        # touch 100 distinct counter blocks twice
        for rounds in range(2):
            for i in range(100):
                engine.read_sector(events.now, i * layout.counters.data_bytes_per_block)
            drain(events)
        ctr = engine.kind_stats(MetadataKind.COUNTER)
        assert ctr.get("misses") == 100
        assert ctr.get("secondary_misses") == 0
        assert dram.stats.get("txn_ctr") == 400


class TestUnifiedCache:
    def test_kinds_share_one_cache(self):
        from dataclasses import replace

        secure = replace(
            SecureMemoryConfig(
                encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.MAC_TREE
            ),
            unified_metadata_cache=True,
        )
        engine, events, dram, _ = make_engine(secure)
        assert engine._caches[MetadataKind.COUNTER] is engine._caches[MetadataKind.MAC]
        assert engine._caches[MetadataKind.MAC] is engine._caches[MetadataKind.TREE]

    def test_unified_still_counts_per_kind(self):
        from dataclasses import replace

        secure = replace(
            SecureMemoryConfig(
                encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.MAC_TREE
            ),
            unified_metadata_cache=True,
        )
        engine, events, dram, _ = make_engine(secure)
        engine.read_sector(0.0, 0x0)
        drain(events)
        assert engine.kind_stats(MetadataKind.COUNTER).get("accesses") == 1
        assert engine.kind_stats(MetadataKind.MAC).get("accesses") == 1


class TestTraceHook:
    def test_hook_sees_metadata_accesses(self):
        seen = []
        engine, events, dram, layout = make_engine(
            trace=lambda kind, addr: seen.append((kind, addr))
        )
        engine.read_sector(0.0, 0x0)
        drain(events)
        kinds = {k for k, _ in seen}
        assert MetadataKind.COUNTER in kinds
        assert MetadataKind.MAC in kinds
        ctr_addrs = [a for k, a in seen if k is MetadataKind.COUNTER]
        assert ctr_addrs == [layout.counter_block_addr(0x0)]
