"""Sweep observability: run ledger, scorecard, diffing, dashboard."""

import json
from html.parser import HTMLParser
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments import designs
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner, config_key
from repro.obsv.dashboard import SECTIONS, build_dashboard
from repro.obsv.diff import diff_ledgers, mad_outliers
from repro.obsv.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    canonical_points,
    ledger_points,
    read_ledger,
    summarize_ledger,
)
from repro.obsv.scorecard import (
    EXPECTATIONS,
    Expectation,
    build_scorecard,
    evaluate,
    overall_status,
    render_scorecard,
)

HORIZON, WARMUP = 1200, 400
BENCHES = ["nw", "bfs"]

#: the shipped paper-scale result cache (pure reads when present).
PAPER_CACHE = (
    Path(__file__).resolve().parent.parent
    / "results"
    / "experiments_p4_h10000_w30000.json"
)


def matrix_points():
    base = designs.build_gpu(None, 2)
    secure = designs.build_gpu(designs.direct(40), 2)
    return [(name, config) for config in (base, secure) for name in BENCHES]


def parallel_runner(tmp_path, tag, **kwargs):
    kwargs.setdefault("horizon", HORIZON)
    kwargs.setdefault("warmup", WARMUP)
    kwargs.setdefault("benchmarks", BENCHES)
    kwargs.setdefault("cache_path", tmp_path / f"cache-{tag}.d")
    kwargs.setdefault("ledger_path", tmp_path / f"ledger-{tag}.jsonl")
    return ParallelRunner(**kwargs)


def synthetic_point(workload, config="cfgdigest", ipc=1.0, outcome="simulated",
                    **overrides):
    stats = None
    if outcome != "failed":
        stats = {
            "ipc": ipc,
            "cycles": 1000.0 / max(ipc, 1e-9),
            "instructions": 1000.0,
            "bandwidth_utilization": 0.5,
            "l2_miss_rate": 0.2,
            "counter_overflows": 0.0,
            "dram_txn": {"data_read": 100.0, "data_write": 40.0, "ctr": 25.0},
        }
    record = {
        "schema": LEDGER_SCHEMA,
        "event": "point",
        "ts": 1.0,
        "workload": workload,
        "config": config,
        "horizon": 1000,
        "warmup": 500,
        "outcome": outcome,
        "duration_s": 0.1,
        "stats": stats,
        "telemetry_dir": None,
        "error": "RuntimeError: boom" if outcome == "failed" else None,
    }
    record.update(overrides)
    return record


# ---------------------------------------------------------------------------
# ledger
# ---------------------------------------------------------------------------


class TestLedger:
    def test_round_trip_and_dedup(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        assert ledger.record_point("nw", "abc", 1000, 500, "simulated",
                                   duration_s=0.5, stats={"ipc": 1.0})
        # same point again: silently skipped.
        assert not ledger.record_point("nw", "abc", 1000, 500, "simulated")
        records = read_ledger(path)
        assert [r["event"] for r in records] == ["sweep", "point"]
        assert records[0]["schema"] == LEDGER_SCHEMA and "host" in records[0]
        point = records[1]
        assert point["workload"] == "nw" and point["outcome"] == "simulated"
        assert point["duration_s"] == 0.5 and point["stats"] == {"ipc": 1.0}

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record_point("nw", "abc", 1000, 500, "simulated")
        with open(path, "a") as fh:
            fh.write('{"event": "point", "workload": "bfs", "trunc')
        records = read_ledger(path)
        assert len(ledger_points(records)) == 1

    def test_crash_resume_appends_without_duplicates(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first = RunLedger(path)
        first.record_point("nw", "abc", 1000, 500, "simulated")
        first.record_point("bfs", "abc", 1000, 500, "simulated")
        # a killed run tears its final append; the resume must still
        # skip the two intact points and add only the genuinely new one.
        with open(path, "a") as fh:
            fh.write('{"event": "point", "workload": "lbm", "trunc')
        resumed = RunLedger(path)
        assert len(resumed) == 2
        assert not resumed.record_point("nw", "abc", 1000, 500, "cached")
        assert resumed.record_point("lud", "abc", 1000, 500, "simulated")
        points = ledger_points(read_ledger(path))
        assert sorted(p["workload"] for p in points) == ["bfs", "lud", "nw"]

    def test_summarize(self):
        records = [
            synthetic_point("nw"),
            synthetic_point("bfs", outcome="cached", duration_s=None),
            synthetic_point("lbm", outcome="failed"),
        ]
        summary = summarize_ledger(records)
        assert summary["points"] == 3
        assert summary["outcomes"] == {"cached": 1, "failed": 1, "simulated": 1}
        assert summary["failures"] == [
            {"workload": "lbm", "config": "cfgdigest", "error": "RuntimeError: boom"}
        ]
        assert summary["sim_seconds"] == pytest.approx(0.2)


class TestLedgerRunnerIntegration:
    def test_serial_and_parallel_ledgers_record_equivalent(self, tmp_path):
        serial = parallel_runner(tmp_path, "serial", jobs=1)
        serial.prefetch(matrix_points())
        serial.close()
        parallel = parallel_runner(tmp_path, "parallel", jobs=2)
        parallel.prefetch(matrix_points())
        parallel.close()

        a = read_ledger(tmp_path / "ledger-serial.jsonl")
        b = read_ledger(tmp_path / "ledger-parallel.jsonl")
        assert canonical_points(a) == canonical_points(b)
        assert len(canonical_points(a)) == len(matrix_points())
        assert all(p["outcome"] == "simulated" for p in canonical_points(a))
        # and the diff between the two sweeps is clean.
        report = diff_ledgers(a, b)
        assert report["identical"] and not report["regressions"]
        assert report["points_compared"] == len(matrix_points())

    def test_cached_points_recorded_once(self, tmp_path):
        first = parallel_runner(tmp_path, "warm", jobs=1)
        first.prefetch(matrix_points())
        first.close()
        # same cache, fresh ledger: every point is a disk hit.
        rerun = parallel_runner(
            tmp_path, "warm", ledger_path=tmp_path / "ledger-rerun.jsonl", jobs=1
        )
        rerun.prefetch(matrix_points())
        rerun.prefetch(matrix_points())  # memory hits: never re-recorded
        rerun.close()
        points = ledger_points(read_ledger(tmp_path / "ledger-rerun.jsonl"))
        assert len(points) == len(matrix_points())
        assert all(p["outcome"] == "cached" for p in points)

    def test_serial_runner_records_simulated_and_cached(self, tmp_path):
        cache = tmp_path / "cache.json"
        first = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHES,
                       cache_path=cache, ledger_path=tmp_path / "l1.jsonl")
        first.run("nw", designs.build_gpu(None, 2))
        first.close()
        second = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHES,
                        cache_path=cache, ledger_path=tmp_path / "l2.jsonl")
        second.run("nw", designs.build_gpu(None, 2))
        p1 = ledger_points(read_ledger(tmp_path / "l1.jsonl"))
        p2 = ledger_points(read_ledger(tmp_path / "l2.jsonl"))
        assert [p["outcome"] for p in p1] == ["simulated"]
        assert [p["outcome"] for p in p2] == ["cached"]
        assert p1[0]["stats"] == p2[0]["stats"]

    def test_failed_point_recorded_and_batch_survives(self, tmp_path, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        real = parallel_mod._simulate_point

        def flaky(workload_name, config, horizon, warmup):
            if workload_name == "bfs":
                raise RuntimeError("injected fault")
            return real(workload_name, config, horizon, warmup)

        monkeypatch.setattr(parallel_mod, "_simulate_point", flaky)
        heartbeat = tmp_path / "hb.jsonl"
        runner = parallel_runner(tmp_path, "flaky", jobs=1, heartbeat_path=heartbeat)
        base = designs.build_gpu(None, 2)
        with pytest.raises(RuntimeError, match="injected fault"):
            runner.prefetch([("nw", base), ("bfs", base)])
        runner.close()

        points = ledger_points(read_ledger(tmp_path / "ledger-flaky.jsonl"))
        by_workload = {p["workload"]: p for p in points}
        assert by_workload["nw"]["outcome"] == "simulated"
        failed = by_workload["bfs"]
        assert failed["outcome"] == "failed"
        assert failed["error"] == "RuntimeError: injected fault"
        assert failed["stats"] is None
        # the completed point survived into the durable cache ...
        rerun = parallel_runner(
            tmp_path, "flaky", ledger_path=tmp_path / "l-rerun.jsonl", jobs=1
        )
        assert rerun.plan([("nw", base)]) == []
        # ... and the heartbeat closed the batch with a failed status.
        done = json.loads(heartbeat.read_text().splitlines()[-1])
        assert done["event"] == "done"
        assert done["status"] == "failed" and done["failures"] == 1

    def test_run_failure_recorded_by_serial_runner(self, tmp_path, monkeypatch):
        import repro.experiments.runner as runner_mod

        def boom(*args, **kwargs):
            raise ValueError("sim exploded")

        monkeypatch.setattr(runner_mod, "simulate", boom)
        runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHES,
                        ledger_path=tmp_path / "ledger.jsonl")
        with pytest.raises(ValueError, match="sim exploded"):
            runner.run("nw", designs.build_gpu(None, 2))
        points = ledger_points(read_ledger(tmp_path / "ledger.jsonl"))
        assert [p["outcome"] for p in points] == ["failed"]
        assert points[0]["error"] == "ValueError: sim exploded"


# ---------------------------------------------------------------------------
# scorecard
# ---------------------------------------------------------------------------


class TestExpectationEdges:
    def test_band_boundaries_closed_on_pass_side(self):
        # binary-exact target/tolerance/grace so the closed-boundary
        # semantics are tested, not float rounding.
        exp = Expectation(id="x", claim="", metric="m", mode="band",
                          target=0.5, tolerance=0.125, grace=0.0625)
        assert exp.status(0.5) == "pass"
        assert exp.status(0.625) == "pass"  # exactly on the tolerance edge
        assert exp.status(0.375) == "pass"
        assert exp.status(0.6875) == "warn"  # exactly on the grace edge
        assert exp.status(0.6876) == "fail"
        assert exp.status(0.3125) == "warn"
        assert exp.status(0.3) == "fail"
        assert exp.status(None) == "skip"

    def test_at_least_and_at_most(self):
        lo = Expectation(id="x", claim="", metric="m", mode="at_least",
                         target=0.875, grace=0.0625)
        assert lo.status(0.875) == "pass" and lo.status(1.5) == "pass"
        assert lo.status(0.8125) == "warn" and lo.status(0.8) == "fail"
        hi = Expectation(id="x", claim="", metric="m", mode="at_most",
                         target=0.125, grace=0.0625)
        assert hi.status(0.125) == "pass" and hi.status(0.0) == "pass"
        assert hi.status(0.1875) == "warn" and hi.status(0.1876) == "fail"

    def test_unknown_mode_raises(self):
        exp = Expectation(id="x", claim="", metric="m", mode="exactly",
                          target=1.0, grace=0.0)
        with pytest.raises(ValueError, match="unknown expectation mode"):
            exp.violation(1.0)

    def test_overall_status_is_worst(self):
        rows = evaluate({"m": 0.9}, [
            Expectation(id="a", claim="", metric="m", mode="at_least",
                        target=0.5, grace=0.0),
            Expectation(id="b", claim="", metric="missing", mode="at_least",
                        target=0.5, grace=0.0),
        ])
        assert [r["status"] for r in rows] == ["pass", "skip"]
        assert overall_status(rows) == "pass"
        rows[0]["status"] = "warn"
        assert overall_status(rows) == "warn"
        rows[1]["status"] = "fail"
        assert overall_status(rows) == "fail"


class TestScorecard:
    @pytest.mark.skipif(not PAPER_CACHE.exists(), reason="paper cache not present")
    def test_paper_profile_passes_from_shipped_cache(self):
        runner = ParallelRunner(
            horizon=10_000, warmup=30_000, cache_path=PAPER_CACHE, jobs=1
        )
        doc = build_scorecard(runner, "paper", 4)
        # the shipped cache covers the whole scorecard matrix: nothing may
        # simulate, and every Section-V conclusion must reproduce.
        assert doc["points_simulated"] == 0
        assert doc["status"] == "pass"
        assert {r["status"] for r in doc["results"]} == {"pass"}
        assert len(doc["results"]) == len(EXPECTATIONS["paper"])
        rendered = render_scorecard(doc)
        assert "overall: PASS" in rendered
        assert "c2_lbm_ipc_loss" in rendered

    def test_build_scorecard_with_injected_metrics(self, tmp_path):
        runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHES)
        metrics = {exp.metric: None for exp in EXPECTATIONS["smoke"]}
        metrics = {}  # all skip
        doc = build_scorecard(runner, "smoke", 2, metrics=metrics)
        assert doc["status"] == "pass"  # skips never fail a scorecard
        assert {r["status"] for r in doc["results"]} == {"skip"}
        assert doc["schema"] == 1 and doc["profile"] == "smoke"


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------


class TestDiff:
    def test_identical_synthetic_sweeps(self):
        a = [synthetic_point(w, ipc=1.0 + i) for i, w in enumerate("abcde")]
        report = diff_ledgers(a, [dict(r) for r in a])
        assert report["identical"]
        assert report["points_compared"] == 5
        assert not report["regressions"] and not report["anomalies"]

    def test_regressed_sweep_flags_metric_and_anomaly(self):
        workloads = [f"w{i}" for i in range(12)]
        a = [synthetic_point(w, ipc=2.0) for w in workloads]
        b = [synthetic_point(w, ipc=2.0) for w in workloads]
        # one workload regresses 20% while the rest sit still: both the
        # per-metric regression and the MAD outlier must fire.
        b[3] = synthetic_point("w3", ipc=1.6)
        report = diff_ledgers(a, b)
        assert not report["identical"]
        regressed = {r["key"].split(":")[0] for r in report["regressions"]}
        assert regressed == {"w3"}
        assert [x["key"].split(":")[0] for x in report["anomalies"]] == ["w3"]
        assert report["anomalies"][0]["delta"] == pytest.approx(-0.2)

    def test_direction_signs(self):
        a = [synthetic_point(w) for w in "abc"]
        b = [dict(r, stats=dict(r["stats"])) for r in a]
        b[0]["stats"]["ipc"] = 1.5  # higher ipc: improvement
        b[1]["stats"]["l2_miss_rate"] = 0.9  # neutral metric: change
        report = diff_ledgers(a, b)
        assert {r["metric"] for r in report["improvements"]} >= {"ipc"}
        assert {r["metric"] for r in report["changes"]} == {"l2_miss_rate"}

    def test_match_by_workload_joins_different_configs(self):
        a = [synthetic_point(w, config="aaa", ipc=2.0) for w in "abc"]
        b = [synthetic_point(w, config="bbb", ipc=1.0) for w in "abc"]
        keyed = diff_ledgers(a, b, match="key")
        assert keyed["points_compared"] == 0 and len(keyed["only_in_a"]) == 3
        by_workload = diff_ledgers(a, b, match="workload")
        assert by_workload["points_compared"] == 3
        ipc_regressions = [
            r for r in by_workload["regressions"] if r["metric"] == "ipc"
        ]
        assert len(ipc_regressions) == 3

    def test_failed_points_excluded(self):
        a = [synthetic_point("x"), synthetic_point("y", outcome="failed")]
        report = diff_ledgers(a, a)
        assert report["points_compared"] == 1

    def test_mad_outliers_zero_spread(self):
        deltas = {f"w{i}": 0.0 for i in range(6)}
        deltas["w5"] = -0.3
        out = mad_outliers(deltas, floor=1e-9)
        assert len(out) == 1 and out[0]["key"] == "w5" and out[0]["z"] is None

    def test_mad_outliers_too_few_points(self):
        assert mad_outliers({"a": 0.0, "b": 5.0}) == []


# ---------------------------------------------------------------------------
# dashboard
# ---------------------------------------------------------------------------


class _SectionParser(HTMLParser):
    def __init__(self):
        super().__init__()
        self.section_ids = []
        self.external = []

    def handle_starttag(self, tag, attrs):
        d = dict(attrs)
        if tag == "section" and "id" in d:
            self.section_ids.append(d["id"])
        for attr in ("src", "href"):
            value = d.get(attr, "")
            if value.startswith(("http", "//")):
                self.external.append(value)


class TestDashboard:
    def _parse(self, html_text):
        parser = _SectionParser()
        parser.feed(html_text)
        return parser

    def test_empty_inputs_render_every_section(self):
        html_text = build_dashboard()
        parser = self._parse(html_text)
        assert parser.section_ids == list(SECTIONS)
        assert not parser.external
        assert "<!DOCTYPE html>" in html_text

    def test_populated_dashboard_is_self_contained(self):
        records = [synthetic_point(w, ipc=1.0 + i) for i, w in enumerate("abc")]
        records.append(synthetic_point("bad", outcome="failed"))
        heartbeat = [
            {"ts": 1.0, "done": 1, "total": 4, "elapsed_s": 1.0,
             "points_per_s": 1.0, "eta_s": 3.0},
            {"event": "done", "ts": 4.0, "done": 4, "total": 4,
             "elapsed_s": 4.0, "points_per_s": 1.0, "status": "ok",
             "failures": 0},
        ]
        scorecard = {
            "profile": "smoke", "status": "warn",
            "results": [{"id": "c1", "status": "warn", "observed": 0.5,
                         "mode": "band", "target": 0.4, "tolerance": 0.05,
                         "grace": 0.05, "paper": "Fig. 3"}],
        }
        html_text = build_dashboard(
            ledger_records=records,
            heartbeat_lines=heartbeat,
            scorecard=scorecard,
        )
        parser = self._parse(html_text)
        assert parser.section_ids == list(SECTIONS)
        assert not parser.external
        # status is never conveyed by color alone: glyph + word.
        assert "! warn" in html_text
        assert "RuntimeError: boom" in html_text
        assert "no benchmark data provided" in html_text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_diff_identical_exit_zero(self, tmp_path, capsys):
        ledger = tmp_path / "a.jsonl"
        ledger.write_text(
            "\n".join(json.dumps(synthetic_point(w)) for w in "abc") + "\n"
        )
        out_json = tmp_path / "diff.json"
        code = main(["diff", str(ledger), str(ledger), "--json", str(out_json)])
        assert code == 0
        assert "metric-identical" in capsys.readouterr().out
        assert json.loads(out_json.read_text())["identical"]

    def test_diff_regression_exit_one(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text(json.dumps(synthetic_point("w", ipc=2.0)) + "\n")
        b.write_text(json.dumps(synthetic_point("w", ipc=1.0)) + "\n")
        assert main(["diff", str(a), str(b)]) == 1

    def test_diff_missing_ledger_exit_two(self, tmp_path):
        a = tmp_path / "a.jsonl"
        a.write_text(json.dumps(synthetic_point("w")) + "\n")
        assert main(["diff", str(a), str(tmp_path / "missing.jsonl")]) == 2

    def test_dashboard_writes_self_contained_html(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        ledger.write_text(json.dumps(synthetic_point("nw")) + "\n")
        out = tmp_path / "report.html"
        code = main([
            "dashboard", "-o", str(out), "--ledger", str(ledger),
            "--title", "test sweep",
        ])
        assert code == 0 and out.exists()
        parser = _SectionParser()
        parser.feed(out.read_text())
        assert parser.section_ids == list(SECTIONS)
        assert not parser.external
        assert "self-contained" in capsys.readouterr().out

    @pytest.mark.skipif(not PAPER_CACHE.exists(), reason="paper cache not present")
    def test_scorecard_paper_profile_cli(self, tmp_path, capsys):
        out_json = tmp_path / "scorecard.json"
        code = main([
            "scorecard", "--profile", "paper",
            "--cache", str(PAPER_CACHE), "--json", str(out_json),
        ])
        assert code == 0
        assert "overall: PASS" in capsys.readouterr().out
        doc = json.loads(out_json.read_text())
        assert doc["status"] == "pass" and doc["points_simulated"] == 0

    def test_bottleneck_json_to_file(self, tmp_path, capsys):
        out = tmp_path / "latency.json"
        code = main([
            "bottleneck", "bfs", "--partitions", "2",
            "--horizon", "1200", "--warmup", "400", "--json", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert "hops" in doc and "stalls" in doc
        # the table report is still printed when writing to a file.
        assert "per-hop latency" in capsys.readouterr().out

    def test_trace_json_to_file(self, tmp_path):
        out = tmp_path / "trace-summary.json"
        code = main([
            "trace", "bfs", "--partitions", "2",
            "--horizon", "1200", "--warmup", "400",
            "--out", str(tmp_path / "artifacts"), "--json", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["workload"] == "bfs"
        assert "DATA" in doc["class_bytes"]
