"""Cross-layer validation: workload streams against the functional memory.

The timing layer only moves addresses; the functional layer moves real
bytes.  These tests drive the *same* warp-op streams the simulator uses
into a :class:`SecureMemory` and check that the secure layer stays
consistent (read-your-writes, no spurious integrity errors), i.e. that the
address streams the experiments run are semantically valid programs.
"""


import pytest
from hypothesis import given, settings, strategies as st

from repro.secure.functional import SecureMemory, SecureMemoryMode
from repro.workloads.suite import get_benchmark

KB = 1024


def drive(memory: SecureMemory, spec, warps, steps, reference):
    """Apply each warp op to the functional memory, checking consistency."""
    streams = [
        spec.warp_trace(0, warp, 1, warps) for warp in range(warps)
    ]
    for step in range(steps):
        for warp, stream in enumerate(streams):
            op = next(stream)
            for addr in op.mem_addrs:
                addr %= memory.layout.protected_bytes - 32
                addr -= addr % 32
                if op.is_write:
                    payload = bytes([warp % 251 + 1, step % 255] * 16)
                    memory.write(addr, payload)
                    reference[addr] = payload
                else:
                    data = memory.read(addr, 32)
                    if addr in reference:
                        assert data == reference[addr], f"mismatch at {addr:#x}"


class TestWorkloadStreamsAreValidPrograms:
    @pytest.mark.parametrize(
        "mode", [SecureMemoryMode.CTR_MAC_BMT, SecureMemoryMode.DIRECT_MAC_MT]
    )
    def test_nw_stream(self, mode):
        memory = SecureMemory(protected_bytes=32 * KB, mode=mode)
        drive(memory, get_benchmark("nw"), warps=1, steps=40, reference={})

    def test_streaming_stream(self):
        memory = SecureMemory(protected_bytes=32 * KB, mode=SecureMemoryMode.CTR_MAC_BMT)
        drive(memory, get_benchmark("streamcluster"), warps=2, steps=15, reference={})

    def test_random_stream(self):
        memory = SecureMemory(protected_bytes=32 * KB, mode=SecureMemoryMode.CTR_MAC_BMT)
        drive(memory, get_benchmark("bfs"), warps=2, steps=20, reference={})


class TestModeEquivalence:
    """Every mode implements the same memory semantics."""

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8 * KB - 40),
                st.binary(min_size=1, max_size=40),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_ctr_and_direct_agree(self, operations):
        ctr = SecureMemory(protected_bytes=8 * KB, mode=SecureMemoryMode.CTR_MAC_BMT)
        direct = SecureMemory(
            protected_bytes=8 * KB, mode=SecureMemoryMode.DIRECT_MAC_MT
        )
        for addr, data in operations:
            ctr.write(addr, data)
            direct.write(addr, data)
        for addr, data in operations:
            assert ctr.read(addr, len(data)) == direct.read(addr, len(data))

    def test_ciphertexts_differ_between_modes(self):
        ctr = SecureMemory(protected_bytes=8 * KB, mode=SecureMemoryMode.CTR)
        direct = SecureMemory(protected_bytes=8 * KB, mode=SecureMemoryMode.DIRECT)
        ctr.write(0, b"same plaintext bytes")
        direct.write(0, b"same plaintext bytes")
        assert bytes(ctr.store[0:32]) != bytes(direct.store[0:32])
