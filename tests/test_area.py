"""Die-area model reproduces Tables VI and VII."""

import pytest

from repro.analysis.area import AreaModel, scale_area


class TestScaling:
    def test_quadratic(self):
        assert scale_area(1.0, 32, 16) == pytest.approx(0.25)

    def test_identity(self):
        assert scale_area(0.5, 12, 12) == 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_area(1.0, 0, 12)


class TestTable7:
    def test_aes_engine_at_12nm(self):
        # Table VII: 0.0049 mm^2 @ 14nm -> 0.0036 mm^2 @ 12nm
        assert AreaModel().aes_area_mm2 == pytest.approx(0.0036, rel=0.01)

    def test_cache_64kb_at_12nm(self):
        assert AreaModel().cache64_area_mm2 == pytest.approx(0.01769, rel=0.01)

    def test_cache_96kb_at_12nm(self):
        assert AreaModel().cache96_area_mm2 == pytest.approx(0.01801, rel=0.01)

    def test_table7_structure(self):
        table = AreaModel().table7()
        assert set(table) == {"AES engine", "64KB cache", "96KB cache"}


class TestL2Displacement:
    def test_32_engines_area(self):
        # paper: total area for 32 AES engines is 0.1152 mm^2
        assert AreaModel().aes_total_area(1) == pytest.approx(0.1152, rel=0.01)

    def test_64_engines_area(self):
        assert AreaModel().aes_total_area(2) == pytest.approx(0.2304, rel=0.01)

    def test_aes_displaces_614kb(self):
        model = AreaModel()
        kb = model.l2_equivalent_kb(model.aes_total_area(1))
        assert kb == pytest.approx(614, rel=0.01)

    def test_metadata_caches_displace_283kb(self):
        model = AreaModel()
        kb = model.l2_equivalent_kb(model.metadata_cache_area())
        assert kb == pytest.approx(283, rel=0.01)

    def test_total_reduction_about_1_5mb(self):
        # paper reports 1526 KB (24.84%); their cache term carries a small
        # rounding discrepancy (298 vs 283), so allow a 2% corridor.
        model = AreaModel()
        assert model.l2_reduction_kb() == pytest.approx(1526, rel=0.02)
        assert model.l2_reduction_fraction() == pytest.approx(0.2484, rel=0.02)


class TestTable6:
    def test_datapoints_present(self):
        table = AreaModel().table6()
        assert table["JSSC'11"]["tech_nm"] == 45
        assert table["JSSC'20"]["area_mm2"] == pytest.approx(0.0049)
