"""Ablation knobs: blocking verification, eager update, selective
encryption, non-sectored L2."""

from dataclasses import replace

import pytest

from repro import simulate
from repro.common.config import (
    EncryptionMode,
    GpuConfig,
    IntegrityMode,
    MetadataKind,
    SecureMemoryConfig,
)
from repro.common.stats import StatGroup
from repro.experiments import designs, figures
from repro.experiments.runner import Runner
from repro.secure.engine import SecureEngine
from repro.secure.layout import MetadataLayout
from repro.sim.dram import DramChannel
from repro.sim.event import EventQueue
from repro.workloads.suite import get_benchmark

MB = 1024 * 1024


def make_engine(secure):
    gpu = GpuConfig.scaled(num_partitions=1, secure=secure)
    events = EventQueue()
    dram = DramChannel(gpu.dram, gpu.core_clock_mhz, StatGroup("dram"))
    engine = SecureEngine(
        secure, gpu, dram, events, MetadataLayout(64 * MB), StatGroup("s")
    )
    return engine, events, dram


class TestConfigValidation:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            SecureMemoryConfig(protected_fraction=1.5)
        with pytest.raises(ValueError):
            SecureMemoryConfig(protected_fraction=-0.1)

    def test_defaults_match_paper(self):
        config = SecureMemoryConfig()
        assert config.speculative_verification
        assert config.lazy_update
        assert config.protected_fraction == 1.0
        assert GpuConfig().l2_sectored


class TestBlockingVerification:
    def test_blocking_read_waits_for_checks(self):
        spec_engine, _, _ = make_engine(designs.separate())
        block_engine, _, _ = make_engine(designs.blocking_verification())
        fast = spec_engine.read_sector(0.0, 0x0)
        slow = block_engine.read_sector(0.0, 0x0)
        assert slow > fast  # MAC fetch + check now on the critical path

    def test_blocking_hits_are_cheap(self):
        engine, events, _ = make_engine(designs.blocking_verification())
        engine.read_sector(0.0, 0x0)
        events.run()
        now = events.now
        warm = engine.read_sector(now, 0x20) - now
        assert warm < 400  # metadata cached: check costs one MAC latency


class TestEagerUpdate:
    def test_eager_write_touches_parent(self):
        engine, events, _ = make_engine(designs.eager_update())
        engine.write_sector(0.0, 0x0)
        events.run()
        assert engine.stats.get("eager_updates") == 1
        assert engine.kind_stats(MetadataKind.TREE).get("accesses") >= 1

    def test_lazy_write_does_not(self):
        engine, events, _ = make_engine(designs.separate())
        engine.write_sector(0.0, 0x0)
        events.run()
        assert engine.stats.get("eager_updates") == 0

    def test_eager_update_in_direct_mt_mode(self):
        secure = replace(designs.direct_mac_mt(), lazy_update=False)
        engine, events, _ = make_engine(secure)
        engine.write_sector(0.0, 0x0)
        events.run()
        assert engine.stats.get("eager_updates") == 1


class TestSelectiveEncryption:
    def test_fraction_zero_is_plain_dram(self):
        engine, events, dram = make_engine(designs.selective(0.0))
        engine.read_sector(0.0, 0x0)
        engine.write_sector(1.0, 0x40)
        events.run()
        assert dram.stats.get("txn_ctr") == 0
        assert dram.stats.get("txn_mac") == 0

    def test_fraction_one_protects_everything(self):
        engine, events, dram = make_engine(designs.selective(1.0))
        engine.read_sector(0.0, 0x0)
        events.run()
        assert dram.stats.get("txn_ctr") > 0

    def test_partial_fraction_splits_lines(self):
        engine, _, _ = make_engine(designs.selective(0.5))
        window = SecureEngine._SELECTIVE_WINDOW
        flags = [engine._is_protected(i * 128) for i in range(window)]
        assert abs(sum(flags) - window // 2) <= 1

    def test_protection_is_line_granular(self):
        engine, _, _ = make_engine(designs.selective(0.5))
        assert engine._is_protected(0) == engine._is_protected(96)

    def test_selective_reduces_metadata_traffic(self):
        full = simulate(
            designs.build_gpu(designs.selective(1.0), 2),
            get_benchmark("streamcluster"),
            horizon=2000,
            warmup=2000,
        )
        half = simulate(
            designs.build_gpu(designs.selective(0.5), 2),
            get_benchmark("streamcluster"),
            horizon=2000,
            warmup=2000,
        )
        assert half.metadata_fraction() < full.metadata_fraction()


class TestNonSectoredL2:
    def test_config_plumbs_through(self):
        config = designs.non_sectored_gpu(designs.separate(), 2)
        assert not config.l2_cache_config().sectored

    def test_non_sectored_cuts_secondary_misses(self):
        workload = get_benchmark("streamcluster")
        sectored = simulate(
            designs.build_gpu(designs.secure_mem(0), 2), workload,
            horizon=2500, warmup=2500,
        )
        flat = simulate(
            designs.non_sectored_gpu(designs.secure_mem(0), 2), workload,
            horizon=2500, warmup=2500,
        )
        assert flat.secondary_miss_ratio(MetadataKind.COUNTER) < (
            sectored.secondary_miss_ratio(MetadataKind.COUNTER)
        )

    def test_non_sectored_fetches_whole_lines(self):
        workload = get_benchmark("streamcluster")
        flat = simulate(
            designs.non_sectored_gpu(None, 2), workload, horizon=2000
        )
        # 4 transactions (128B) per L2 miss instead of 1
        assert flat.dram_txn["data_read"] >= 4
        assert flat.dram_txn["data_read"] % 4 == 0


class TestAblationsDriver:
    def test_structure_and_orderings(self):
        runner = Runner(horizon=2000, warmup=2000, benchmarks=["streamcluster"])
        table = figures.ablations(runner, 2)
        gmean = table["Gmean"]
        assert set(gmean) == {
            "secureMem", "blocking_verify", "eager_update",
            "selective_50", "selective_25", "non_sectored",
        }
        assert gmean["selective_25"] >= gmean["selective_50"] >= gmean["secureMem"]


class TestOccupancyStudy:
    def test_latency_tolerance_grows_with_warps(self):
        runner = Runner(horizon=2000, warmup=2500, benchmarks=["streamcluster"])
        table = figures.occupancy_study(runner, 2, warp_counts=(2, 16))
        assert table["warps_16"]["normalized"] > table["warps_2"]["normalized"]
        assert table["warps_16"]["baseline_ipc"] > table["warps_2"]["baseline_ipc"]

    def test_rows_have_expected_columns(self):
        runner = Runner(horizon=1200, warmup=800, benchmarks=["streamcluster"])
        table = figures.occupancy_study(runner, 2, warp_counts=(4,))
        assert set(table["warps_4"]) == {"baseline_ipc", "direct_ipc", "normalized"}
