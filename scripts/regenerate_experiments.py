#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: every table and figure, paper vs. measured.

Runs the full experiment matrix at the documentation scale (4 partitions /
10 SMs, 10k-cycle measured window after a 30k-cycle warmup — large enough
for steady-state L2 churn) and writes the paper-vs-measured record the
repository ships.  A sharded, crash-safe result cache under ``results/``
makes re-runs incremental: each completed point is appended durably, so a
killed run resumes from where it stopped.

Usage:  python scripts/regenerate_experiments.py [--fast] [--jobs N]
                                                 [--stats-json PATH]

``--jobs N`` fans independent simulation points out over N worker
processes (0 = one per core); ``--jobs 1`` (default) runs serially.  A
throughput summary (points simulated, points/sec, cache hit-rate,
per-phase wall time) is printed at the end and, with ``--stats-json``,
exported as JSON so the perf trajectory is comparable across changes.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

import json

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.experiments.parallel import ParallelRunner
from repro.workloads.suite import BENCHMARK_ORDER

PARTITIONS = 4
HORIZON = 10_000
WARMUP = 30_000

ORDER = BENCHMARK_ORDER + ["Gmean", "Average"]

#: (title, paper-expectation text) per experiment, in paper order.
NARRATIVE = {
    "table2": (
        "Table II — metadata organization and storage",
        "Paper: counters 32 MB, MACs 256 MB, BMT 2.14 MB (total 290.14 MB "
        "counter-mode); MACs 256 MB + MT 17.1 MB (total 273.1 MB direct). "
        "Exact arithmetic — matches to rounding.",
    ),
    "table4": (
        "Table IV — baseline characterization",
        "Paper bands reproduced per benchmark (bw_util within or near each "
        "band; relative IPC structure preserved: lavaMD fastest, nw/kmeans "
        "slowest, three clean intensity categories).",
    ),
    "fig3": (
        "Figure 3 — counter-mode + BMT overhead, idealized designs",
        "Paper: secureMem loses 65.9% on average (up to 91% for lbm); "
        "0_crypto does not help; perfect/unlimited metadata caches recover "
        "nearly all of it. Shape check: secureMem << large_mdc ~ perf_mdc "
        "~ 1.0, 0_crypto ~= secureMem.",
    ),
    "fig4": (
        "Figure 4 — memory-request distribution under secureMem",
        "Paper: MACs 25.6% and counters 21.8% of traffic on average; "
        "non-memory-intensive benchmarks show 62-75% metadata traffic yet "
        "no slowdown (bandwidth headroom).",
    ),
    "fig5": (
        "Figure 5 — secondary misses in metadata caches",
        "Paper: 65.0% / 59.7% / 85.6% of ctr/MAC/BMT misses are secondary; "
        ">90% for streaming workloads like streamcluster.",
    ),
    "fig6": (
        "Figure 6 — IPC vs metadata-cache MSHRs",
        "Paper: monotone improvement, 64 MSHRs a good cost/performance "
        "point.",
    ),
    "fig7": (
        "Figure 7 — IPC vs metadata cache size",
        "Paper: bigger helps, but 46.2% mean loss remains at 64 KB/kind "
        "(6 MB total): kmeans/srad_v2/lbm stay heavily degraded.",
    ),
    "fig8": (
        "Figure 8 — unified vs separate metadata caches",
        "Paper: separate wins on GPUs (streaming thrash), the opposite of "
        "the CPU conclusion of Lehman et al.",
    ),
    "fig9": (
        "Figure 9 — metadata miss rates, unified vs separate",
        "Paper: unified raises every kind's miss rate (ctr 22.8->24.0%, "
        "mac 31.75->31.82%, bmt 4.0->5.9%) and produces 1.47x the metadata "
        "writebacks. At our scaled per-partition pressure ctr/mac run "
        "near-saturated in both organizations; the BMT rate and the "
        "writeback traffic carry the signal.",
    ),
    "fig10_11": (
        "Figures 10-11 — reuse distance of fdtd2d counter/MAC accesses",
        "Paper: mass concentrates at distance 0 (sectored-L2 bursts); the "
        "unified cache shifts reuse from short [1,8] distances toward "
        "[65,512], i.e. it needs more capacity to catch the same reuse.",
    ),
    "fig12": (
        "Figure 12 — 1 vs 2 AES engines per partition",
        "Paper: one pipelined engine per partition is enough; metadata "
        "traffic, not AES throughput, is the bottleneck.",
    ),
    "fig13": (
        "Figure 13 — L2 capacity sensitivity (die-area tradeoff)",
        "Paper: shrinking L2 from 6 MB to 4 MB barely moves most "
        "benchmarks; medium-intensity ones with L2-resident hot sets "
        "degrade most.",
    ),
    "fig14": (
        "Figure 14 — baseline L2 miss rate",
        "Paper: streaming memory-intensive benchmarks near 100% (e.g. "
        "streamcluster 97%); compute/tiled ones low.",
    ),
    "fig15": (
        "Figure 15 — direct-encryption latency sweep",
        "Paper: 1.33% / 3.02% / 5.93% mean slowdown at 40/80/160 cycles; "
        "nw, b+tree and streamcluster exceed 10% at 160.",
    ),
    "fig16": (
        "Figure 16 — direct vs counter-mode (confidentiality only)",
        "Paper: direct is nearly free; ctr costs 33.1% on average (66.4% "
        "for lbm); ctr+BMT 43.9%.",
    ),
    "fig17": (
        "Figure 17 — integrity protection comparison (6 KB budget)",
        "Paper mean slowdowns: ctr_mac_bmt 63.5%, direct_mac 42.7%, "
        "direct_mac_mt 71.9% — direct+MAC wins; the 7-level MT is what "
        "makes full direct-mode integrity expensive. Measured deviation: "
        "direct_mac_mt lands at ~ctr_mac_bmt rather than clearly below it; "
        "the scaled per-partition MT is one level shallower than the "
        "paper's global tree, muting the tree-height penalty.",
    ),
    "ablations": (
        "Extension — ablations of the adopted design choices",
        "Beyond the paper: speculative verification and lazy update are "
        "nearly free on GPUs (latency tolerance absorbs blocking checks); "
        "selective encryption (Zuo et al.) scales the cost smoothly with "
        "the protected fraction; and on a non-sectored L2 (normalized to a "
        "non-sectored baseline) much of the secondary-miss amplification "
        "disappears — confirming Section V-B's causal mechanism.",
    ),
    "occupancy": (
        "Extension — latency tolerance vs occupancy (mechanism of Fig. 15)",
        "Direct encryption's 160-cycle latency on streamcluster, at "
        "different warps-per-SM caps: the slowdown shrinks as occupancy "
        "grows, the TLP argument made explicit.",
    ),
    "table6_7": (
        "Tables VI-VII — die area and L2 displacement",
        "Paper: AES 0.0036 mm^2 at 12 nm; security hardware displaces "
        "~1526 KB (24.84%) of the 6 MB L2. Exact arithmetic.",
    ),
}


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true", help="small windows (smoke run)")
    parser.add_argument("--output", default=str(ROOT / "EXPERIMENTS.md"))
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for simulation points (0 = all cores; 1 = serial)",
    )
    parser.add_argument(
        "--stats-json", default=None, help="write the throughput summary as JSON"
    )
    parser.add_argument(
        "--heartbeat",
        default=None,
        metavar="PATH",
        help="append per-point progress lines (JSONL) here; tail -f to watch",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="append one run-ledger record per point here (JSONL); feeds "
        "`repro diff` and `repro dashboard`",
    )
    args = parser.parse_args()

    horizon, warmup = (3000, 6000) if args.fast else (HORIZON, WARMUP)
    # a legacy single-file cache at the .json path is imported read-only;
    # the sharded cache lives in the ``<name>.json.d/`` directory either way.
    legacy = ROOT / "results" / f"experiments_p{PARTITIONS}_h{horizon}_w{warmup}.json"
    cache = legacy if legacy.is_file() else legacy.with_name(legacy.name + ".d")
    runner = ParallelRunner(
        horizon=horizon,
        warmup=warmup,
        cache_path=cache,
        jobs=args.jobs or None,
        heartbeat_path=args.heartbeat,
        ledger_path=args.ledger,
    )

    sections = []
    started = time.time()

    def render(table, fmt="{:.3f}"):
        rows = [r for r in ORDER if r in table]
        rows += [r for r in table if r not in ORDER]
        return render_series_table("", table, value_format=fmt, row_order=rows)

    for key, (title, expectation) in NARRATIVE.items():
        t0 = time.time()
        if key == "table2":
            body = render(figures.table2(), fmt="{:.2f}")
        elif key == "table6_7":
            body = render(figures.table6_7(), fmt="{:.5f}")
        elif key == "fig10_11":
            out = figures.fig10_11(runner, PARTITIONS)
            body = (
                render_series_table("counters (Fig 10):", out["fig10_ctr"], "{:.0f}")
                + "\n\n"
                + render_series_table("MACs (Fig 11):", out["fig11_mac"], "{:.0f}")
            )
        elif key == "fig9":
            body = render(figures.fig9(runner, PARTITIONS), fmt="{:.4f}")
        elif key == "table4":
            body = render(figures.table4(runner, PARTITIONS), fmt="{:.1f}")
        elif key == "occupancy":
            body = render(figures.occupancy_study(runner, PARTITIONS), fmt="{:.3f}")
        else:
            body = render(figures.ALL_FIGURES[key](runner, PARTITIONS))
        elapsed = time.time() - t0
        print(f"[{elapsed:7.1f}s] {title}", flush=True)
        sections.append(f"## {title}\n\n{expectation}\n\n```\n{body}\n```\n")

    header = f"""# EXPERIMENTS — paper vs. measured

Generated by `python scripts/regenerate_experiments.py` on a scaled GPU
({PARTITIONS} memory partitions / {PARTITIONS * 80 // 32} SMs, preserving the paper's
per-partition bandwidth, L2 share, metadata caches and SM:partition ratio),
measuring a {horizon:,}-cycle window after a {warmup:,}-cycle cache warmup.
Workloads are the calibrated proxies of `repro.workloads.suite` (see
DESIGN.md for the substitution rationale).  Normalized-IPC tables are
relative to the insecure baseline GPU at the same scale; `Gmean` is the
geometric mean the paper uses.

Absolute numbers are not expected to match the paper (different substrate,
different scale); the claim reproduced is the *shape*: who wins, by
roughly what factor, and where the crossovers fall.  Each section states
the paper's result next to the measured table.

Regeneration accepts `--jobs N` (0 = one worker per core) to fan the
independent simulation points out over a process pool — results are
bit-identical to a serial run — and keeps a sharded, crash-safe result
cache under `results/` (append-only JSONL shards, compacted atomically on
close), so an interrupted run resumes from its completed points.  On an
N-core machine a cold full regeneration speeds up near-linearly until the
figure-level batches are smaller than the pool.  `--stats-json PATH`
exports points/sec, cache hit-rate and per-phase wall time.

Any point here can be re-examined under the telemetry subsystem
(`python -m repro trace <bench> --design <name>`): it emits a Chrome
`trace_event` file (chrome://tracing / Perfetto), an epoch time-series of
MSHR occupancy, DRAM backlog and crypto-engine utilization, and the
per-traffic-class (DATA/COUNTER/MAC/TREE) byte breakdown whose shares are
Figure 4's request distribution.  Telemetry never changes simulated
behaviour, so the traced point matches the cached numbers below exactly.

Total regeneration time: {{TOTAL}} minutes.

## Sweep observability

Every regeneration can leave an audit trail and be checked against the
paper after the fact (`src/repro/obsv/`):

- **Run ledger** — `--ledger PATH` appends one schema-versioned JSON
  line per `(workload, config)` point: config digest, measurement
  window, outcome (`simulated` / `cached` / `failed`), wall-clock
  duration, the key statistics (IPC, cycles, bandwidth utilization, L2
  miss rate, per-class DRAM transactions), the telemetry-artifact path,
  and — for failed points — the exception string.  Appends are single
  writes to a file opened in append mode, so a killed run loses at most
  one torn final line (skipped at read); re-running against the same
  cache resumes without duplicate records, and a serial and a parallel
  run of the same sweep produce record-equivalent ledgers.
- **Fidelity scorecard** — `python -m repro scorecard` re-evaluates the
  paper's five Section-V conclusions (mean secure-memory IPC loss, lbm
  as the worst case, separate-beats-unified metadata caches, cheap
  direct encryption, one-AES-engine sufficiency) as declarative
  expectations with pass/warn/fail tolerance bands, reading this cache
  (`--profile paper`, pure cache hits) or the small CI scale
  (`--profile smoke`).  `--json scorecard.json` exports the document;
  the command exits 1 when any conclusion FAILs its band.
- **Sweep diffing** — `python -m repro diff A B` joins two ledgers
  point-by-point (`--match workload` to compare different configs),
  compares each key statistic under a noise-aware relative tolerance
  with a direction (lower IPC regresses, fewer cycles improve), flags
  per-workload outliers with a robust MAD z-score, and merges each
  sweep's persisted latency histograms for an end-to-end tail
  comparison.  Exit 1 on any regression.
- **Dashboard** — `python -m repro dashboard -o report.html` renders
  ledger, heartbeat progress, scorecard, per-class traffic, bottleneck
  stalls and the `BENCH_*.json` perf trajectory into one self-contained
  HTML file (inline CSS/JS/SVG, no external requests) suitable for CI
  artifacts.

Observability is strictly passive: ledger and heartbeat writes are
best-effort and never fail the sweep they observe, and none of these
artifacts participate in result caching.

## Sweep service

Sweeps can also run as *rows in a shared job store* drained by any
number of workers (`src/repro/jobs/`), decoupling submission from
execution: `repro sweep --store sweeps.sqlite ...` (or a `POST /sweeps`
against `repro serve`) inserts one row per `(workload, design)` point,
and every `repro worker --store sweeps.sqlite` — local or on another
host sharing the filesystem — claims rows, simulates them through the
same `Runner` stack (process-warm state, the sharded result cache opened
read-only, a per-worker run ledger), and reports results back into the
row.  The simulator is deterministic, so any number of workers produce a
merged sweep bit-identical to a serial run — the tests assert it,
including after a worker is killed mid-point.

**Store schema** (SQLite, WAL mode, versioned via `PRAGMA
user_version`): a `sweeps` table — `id`, `created_ts`, `horizon`,
`warmup`, `total`, `label` — and a `jobs` table — `sweep_id`, `seq`,
`workload`, JSON `spec` (`{{"design": ..., "partitions": N}}`), `status`
(`pending`/`running`/`done`/`failed`), `attempts`, `max_attempts`,
`not_before`, `worker`, `lease_deadline`, timings, `outcome`,
`config_digest`, JSON `result`, `error`.  The store class is a thin
DB-API mapping; another backend subclasses `SQLiteJobStore._connect`
plus the statement templates.

**Worker lifecycle**: claim the oldest eligible pending row (atomic
`UPDATE ... WHERE status='pending'` — of N racing workers exactly one
wins), heartbeat the lease forward at a third of its period while the
point simulates, then report `simulated`/`cached` with the full result
payload, or `failed` with capped exponential backoff stamped into
`not_before`.  A killed worker stops heartbeating; the next worker
iteration or service progress query returns the lapsed lease to
`pending`, and a row that keeps failing is poison-failed after
`max_attempts` claims so one bad config cannot wedge a sweep.  A late
report from a worker whose lease was reassigned is refused.

**HTTP front end** (stdlib `http.server`, JSON, no frameworks):

```bash
python -m repro serve --store sweeps.sqlite --workers 2 &
curl -s localhost:8076/healthz
curl -s -X POST localhost:8076/sweeps -H 'Content-Type: application/json' \\
  -d '{{"design": "secureMem_mshr64", "workloads": ["bfs", "nw"],
       "partitions": 2, "horizon": 10000, "warmup": 30000}}'
curl -s localhost:8076/sweeps/<id>              # counts, rate, ETA, failures
curl -s localhost:8076/sweeps/<id>/results      # terminal rows + payloads
curl -s localhost:8076/sweeps/<id>/dashboard > report.html
```

The dashboard endpoint synthesizes ledger-shaped records and heartbeat
lines from store rows, so the self-contained HTML report works even when
the workers' ledger files are on another machine.  CLI sweeps
(`repro sweep --store`) and HTTP sweeps are rows in the same table —
one execution path either way.  `scripts/serve_smoke.py` exercises the
whole loop (serve → submit over HTTP → drain → dashboard) and runs in CI.

## Fleet observability

Every process in the sweep fleet carries a **metrics registry**
(`src/repro/obsv/metrics.py` — dependency-free counters, gauges, and
log2-bucket histograms built on the telemetry layer's `LogHistogram`):
the store counts claims/reports/requeues/poison-fails and times each
SQLite op (`repro_store_op_us{{op=...}}`), the worker counts points by
outcome and buckets per-point wall time, and the service labels every
HTTP request by method/endpoint/status (sweep ids folded to `{{id}}` so
the label set stays bounded).  Workers persist a JSON snapshot of their
registry into the store's `workers` table on the heartbeat path, so the
service sees throughput for worker processes on other hosts with no
network path between them — the store is the only rendezvous.

```bash
curl -s localhost:8076/metrics                               # Prometheus text
curl -s "localhost:8076/sweeps/<id>/events?since=0&timeout=25"   # long-poll
repro top --url http://localhost:8076                        # live fleet screen
repro top --store sweeps.sqlite --once                       # one frame, no server
repro serve --store sweeps.sqlite --access-log access.jsonl  # structured log
```

`GET /metrics` merges three sources into one exposition: the service's
own registry (request counters and duration histograms rendered as
cumulative `_bucket`/`_sum`/`_count` series), gauges derived from store
rows (`repro_store_jobs{{status=...}}`, `repro_store_sweeps`,
`repro_fleet_workers`, per-worker last-seen age), and every persisted
worker snapshot stamped with a `worker="<id>"` label — one scrape shows
`repro_worker_points_total{{outcome=...}}` and `repro_worker_points_per_s`
for the whole fleet.  Worker snapshots are plain JSON,
`{{"schema": 1, "metrics": {{name: {{kind, help, labels, series: [...]}}}}}}`
— counter/gauge series carry a `value`, histogram series carry the
log2-bucket `hist` dict the telemetry layer already persists.

`GET /sweeps/<id>/events?since=<ts>&timeout=<s>` long-polls terminal
events: it returns as soon as a point finishes after the `since` cursor
(result payloads omitted — follow up with `/results`), immediately when
the sweep is already terminal, or with an empty list at the timeout.
`repro top` renders the same fleet state as text, reading the store
directly (`--store`) or scraping `/sweeps` + `/metrics` over HTTP
(`--url`); `--once` prints one frame (CI-friendly), otherwise it
redraws every `--interval` seconds:

```
repro top — sweeps.sqlite
1 sweep(s), 0 running · 1 worker(s), 0 busy · 10:38:35

sweep         label  status  done  fail  pts/s  eta
------------  -----  ------  ----  ----  -----  ---
3725a9b57bb9  demo   done    2/2   0     5.50   -

worker      state  sim  cached  fail  pts/s  seen
----------  -----  ---  ------  ----  -----  ----
host1-3021  idle   2    0       0     95.21  0s
```

`--access-log PATH` writes through the structured logger
(`src/repro/obsv/logging.py`): one JSON line per request — `{{"ts":
1786185400.873, "level": "info", "event": "http.request", "method":
"GET", "path": "/healthz", "status": 200, "duration_ms": 0.4,
"trace_id": "..."}}` — rolled to `<path>.1` before it would exceed
`--access-log-max-bytes` (default 64 MiB); off by default.  All of it
is strictly passive:
the simulation core never touches the registry (the default
`NULL_METRICS` stub absorbs everything behind one attribute load, and
the runner guards even that), golden dumps stay bit-identical, and
`scripts/perf_smoke.py` records the instrumented-vs-null worker-drain
overhead in `BENCH_parallel.json` under `metrics_registry` to keep it
honest.  `scripts/serve_smoke.py` scrapes `/metrics` mid-CI and asserts
the worker's claim/report counters made it through the store.

## Distributed tracing

A sweep that crosses three process kinds — service, workers, simulator
— gets one correlated timeline (`src/repro/obsv/spans.py`).  `POST
/sweeps` opens an `http.submit` request span and mints the sweep's
trace id; the store persists the id with the sweep and stamps every job
row with a W3C-style `traceparent`
(`00-<32 hex trace>-<16 hex span>-<flags>`), so trace context crosses
hosts the same way results do — through the SQLite store, with no
network path between workers required.  Workers parse the job's
traceparent (malformed context is dropped and the point simply runs
untraced, per the W3C processing model), record a pre-measured
`worker.claim` span, wrap execution in a `worker.execute` span whose
lease heartbeats ride along as instant events, and hand the context to
the `Runner`, which nests `runner.point` ⊃ `runner.simulate` spans
underneath and stamps `trace_id`/`span_id` into its ledger records and
telemetry metadata.  Every finished span lands back in the store's
`spans` table — the same rendezvous the results use.

```bash
repro spans <sweep-id> --store sweeps.sqlite         # indented span tree
repro spans <sweep-id> --url http://localhost:8076   # same, over HTTP
repro spans <sweep-id> --store ... --chrome t.json   # Perfetto trace_event
curl -s localhost:8076/sweeps/<id>/spans             # raw span records
```

The span tree shows request ⊃ claim/execute ⊃ point ⊃ simulate with
per-span wall offsets and durations; `--chrome` exports the Chrome
`trace_event` format with one lane per component (`service`,
`worker:<id>`, `runner`), loadable in ui.perfetto.dev, and the
dashboard's "Sweep timeline" section renders the same spans as an SVG
Gantt.  The serve process also runs a background **reaper thread**
(every `--reaper-interval` seconds, default half the worker lease) so
expired leases requeue even when nobody polls — passes counted by
`repro_reaper_passes_total` — and idle workers back off exponentially
with a deterministic per-worker jitter factor seeded by worker id, so
a fleet never polls the store in lockstep.

Tracing follows the observability ground rules: spans take their
timeline position from the wall clock but their duration from a
monotonic clock, sinks swallow their own errors, the disabled path
(`NULL_SPANS`) costs one attribute check, and untraced ledger records
carry no trace fields at all — `tests/test_spans.py` asserts traced
and untraced sweeps stay canonical-record identical, and
`scripts/serve_smoke.py` validates one trace id across the whole
HTTP → worker → simulator flow in CI.
"""

    text = header + "\n" + "\n".join(sections)
    total_min = (time.time() - started) / 60
    text = text.replace("{TOTAL}", f"{total_min:.1f}")
    Path(args.output).write_text(text)
    runner.close()
    print(f"wrote {args.output} in {total_min:.1f} min")
    print(f"[throughput] jobs={runner.jobs} | {runner.stats.summary()}")
    if args.stats_json:
        stats = dict(runner.stats.to_dict(), jobs=runner.jobs, wall_minutes=total_min)
        Path(args.stats_json).write_text(json.dumps(stats, indent=2) + "\n")
        print(f"wrote {args.stats_json}")


if __name__ == "__main__":
    main()
