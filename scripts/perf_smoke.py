#!/usr/bin/env python3
"""Perf smoke run: serial vs parallel on a small fixed simulation matrix.

Simulates the same fixed ``(workload, config)`` matrix twice — once
serially through :class:`~repro.experiments.runner.Runner`, once through
:class:`~repro.experiments.parallel.ParallelRunner` with a process pool —
verifies the results are bit-identical, and writes ``BENCH_parallel.json``
(wall times, points/sec, speedup, core count) so the perf trajectory is
comparable across changes.

It also benchmarks the simulation core itself and writes
``BENCH_core.json``: serial points/sec and events/sec over ``CORE_REPS``
interleaved repetitions (best rep kept — the standard way to reject
scheduler noise on shared machines), the telemetry on/off overhead under
the same methodology, rep-to-rep result identity, and the zero-drift
check (telemetry may never change a simulated statistic).

Usage:  python scripts/perf_smoke.py [--jobs N] [--output PATH]
                                     [--core-output PATH] [--check]

``--check`` additionally runs the fast ``-k`` selection of the parallel
subsystem's tier-1 tests before benchmarking.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

from repro.common import host_metadata
from repro.common.config import TelemetryConfig
from repro.experiments import designs
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner, result_to_dict

PARTITIONS = 2
HORIZON = 4_000
WARMUP = 2_000
BENCHMARKS = ["nw", "bfs", "fdtd2d", "streamcluster"]

#: the fast tier-1 selection covering the parallel subsystem.
TIER1_SELECTION = ["-q", "-k", "parallel or Sharded or CrashSafety", "tests/test_parallel.py"]

#: interleaved repetitions for the core benchmark (best rep kept).
CORE_REPS = 5


def fixed_matrix():
    configs = {
        "baseline": designs.build_gpu(None, PARTITIONS),
        "secureMem_mshr64": designs.build_gpu(designs.secure_mem(64), PARTITIONS),
        "direct_40": designs.build_gpu(designs.direct(40), PARTITIONS),
    }
    return [(name, config) for config in configs.values() for name in BENCHMARKS]


def _timed_sweep(points):
    """One serial pass over *points* on a fresh Runner.

    Returns ``(seconds, results, events_processed)``; a fresh Runner per
    call keeps its in-memory result cache from short-circuiting later reps.
    """
    runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHMARKS)
    t0 = time.perf_counter()
    runner.prefetch(points)
    elapsed = time.perf_counter() - t0
    results = [runner.run(name, config) for name, config in points]
    events = sum(r.events_processed for r in results)
    for r in results:
        # drop the (possibly huge) telemetry export before the next rep:
        # holding 12 of them inflates the allocator for later sweeps.
        r.telemetry = None
    return elapsed, results, events


def core_bench() -> dict:
    """Benchmark the simulation core: serial throughput + telemetry cost.

    Telemetry-off and telemetry-on sweeps are interleaved rep by rep so a
    load spike hits both sides equally; the best rep of each side is kept.
    """
    points = fixed_matrix()
    tel = TelemetryConfig(enabled=True, sample_every=500.0)
    tel_points = [
        (name, dataclasses.replace(config, telemetry=tel)) for name, config in points
    ]

    off_times, on_times = [], []
    off_dicts, on_dicts = [], []
    events_processed = 0
    for _rep in range(CORE_REPS):
        elapsed, results, events = _timed_sweep(points)
        off_times.append(elapsed)
        off_dicts.append([result_to_dict(r) for r in results])
        events_processed = events  # identical every rep when deterministic
        elapsed, results, _events = _timed_sweep(tel_points)
        on_times.append(elapsed)
        on_dicts.append([result_to_dict(r) for r in results])

    identical = all(d == off_dicts[0] for d in off_dicts[1:])
    drift_free = all(d == off_dicts[0] for d in on_dicts)
    off_best, on_best = min(off_times), min(on_times)
    return {
        "host": host_metadata(),
        "points": len(points),
        "horizon": HORIZON,
        "warmup": WARMUP,
        "reps": CORE_REPS,
        "methodology": "interleaved off/on reps, best rep per side",
        "serial_seconds": round(off_best, 3),
        "serial_points_per_second": round(len(points) / off_best, 3),
        "events_processed": events_processed,
        "events_per_second": round(events_processed / off_best, 1),
        "identical_results": identical,
        "telemetry": {
            "off_seconds": round(off_best, 3),
            "on_seconds": round(on_best, 3),
            "overhead_pct": round(100 * (on_best - off_best) / off_best, 1),
            "drift_free": drift_free,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--jobs", type=int, default=0, help="pool size (0 = one worker per core)"
    )
    parser.add_argument("--output", default=str(ROOT / "BENCH_parallel.json"))
    parser.add_argument("--core-output", default=str(ROOT / "BENCH_core.json"))
    parser.add_argument(
        "--check", action="store_true", help="run the parallel-subsystem tests first"
    )
    args = parser.parse_args()

    if args.check:
        code = subprocess.call([sys.executable, "-m", "pytest", *TIER1_SELECTION], cwd=ROOT)
        if code:
            return code

    # core bench first: it runs in a clean process state, before the pool
    # and the cache-backed runners below have touched the heap.
    core_report = core_bench()
    Path(args.core_output).write_text(json.dumps(core_report, indent=2) + "\n")
    print(json.dumps(core_report, indent=2))

    points = fixed_matrix()
    jobs = args.jobs or (os.cpu_count() or 1)

    serial = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHMARKS)
    t0 = time.perf_counter()
    serial.prefetch(points)
    serial_s = time.perf_counter() - t0

    parallel = ParallelRunner(
        horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHMARKS, jobs=jobs
    )
    t0 = time.perf_counter()
    parallel.prefetch(points)
    parallel_s = time.perf_counter() - t0

    identical = all(
        result_to_dict(serial.run(name, config))
        == result_to_dict(parallel.run(name, config))
        for name, config in points
    )

    # telemetry overhead: the same matrix with tracing + sampling enabled,
    # against the serial telemetry-off run above.  Also checks the zero-
    # drift contract: every counter must be identical with telemetry on.
    tel = TelemetryConfig(enabled=True, sample_every=500.0)
    tel_points = [
        (name, dataclasses.replace(config, telemetry=tel)) for name, config in points
    ]
    tel_runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHMARKS)
    t0 = time.perf_counter()
    tel_runner.prefetch(tel_points)
    telemetry_s = time.perf_counter() - t0
    drift_free = all(
        result_to_dict(serial.run(name, config))
        == result_to_dict(tel_runner.run(name, tel_config))
        for (name, config), (_name, tel_config) in zip(points, tel_points)
    )

    report = {
        "host": host_metadata(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "points": len(points),
        "horizon": HORIZON,
        "warmup": WARMUP,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "serial_points_per_second": round(len(points) / serial_s, 3),
        "parallel_points_per_second": round(len(points) / parallel_s, 3),
        "identical_results": identical,
        "parallel_phase_seconds": {
            k: round(v, 3) for k, v in parallel.stats.phase_seconds.items()
        },
        "telemetry": {
            "off_seconds": round(serial_s, 3),
            "on_seconds": round(telemetry_s, 3),
            "overhead_pct": (
                round(100 * (telemetry_s - serial_s) / serial_s, 1) if serial_s else None
            ),
            "drift_free": drift_free,
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if not identical:
        print("ERROR: parallel results diverge from serial", file=sys.stderr)
        return 1
    if not drift_free:
        print("ERROR: telemetry changed simulation statistics", file=sys.stderr)
        return 1
    if not core_report["identical_results"]:
        print("ERROR: serial results differ between core-bench reps", file=sys.stderr)
        return 1
    if not core_report["telemetry"]["drift_free"]:
        print("ERROR: telemetry changed simulation statistics", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
