#!/usr/bin/env python3
"""Perf smoke run: serial vs parallel on a small fixed simulation matrix.

Simulates the same fixed ``(workload, config)`` matrix twice — once
serially through :class:`~repro.experiments.runner.Runner`, once through
:class:`~repro.experiments.parallel.ParallelRunner` with a process pool —
verifies the results are bit-identical, and writes ``BENCH_parallel.json``
(wall times, points/sec, speedup, core count) so the perf trajectory is
comparable across changes.

Usage:  python scripts/perf_smoke.py [--jobs N] [--output PATH] [--check]

``--check`` additionally runs the fast ``-k`` selection of the parallel
subsystem's tier-1 tests before benchmarking.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

from repro.common.config import TelemetryConfig
from repro.experiments import designs
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner, result_to_dict

PARTITIONS = 2
HORIZON = 4_000
WARMUP = 2_000
BENCHMARKS = ["nw", "bfs", "fdtd2d", "streamcluster"]

#: the fast tier-1 selection covering the parallel subsystem.
TIER1_SELECTION = ["-q", "-k", "parallel or Sharded or CrashSafety", "tests/test_parallel.py"]


def fixed_matrix():
    configs = {
        "baseline": designs.build_gpu(None, PARTITIONS),
        "secureMem_mshr64": designs.build_gpu(designs.secure_mem(64), PARTITIONS),
        "direct_40": designs.build_gpu(designs.direct(40), PARTITIONS),
    }
    return [(name, config) for config in configs.values() for name in BENCHMARKS]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--jobs", type=int, default=0, help="pool size (0 = one worker per core)"
    )
    parser.add_argument("--output", default=str(ROOT / "BENCH_parallel.json"))
    parser.add_argument(
        "--check", action="store_true", help="run the parallel-subsystem tests first"
    )
    args = parser.parse_args()

    if args.check:
        code = subprocess.call([sys.executable, "-m", "pytest", *TIER1_SELECTION], cwd=ROOT)
        if code:
            return code

    points = fixed_matrix()
    jobs = args.jobs or (os.cpu_count() or 1)

    serial = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHMARKS)
    t0 = time.perf_counter()
    serial.prefetch(points)
    serial_s = time.perf_counter() - t0

    parallel = ParallelRunner(
        horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHMARKS, jobs=jobs
    )
    t0 = time.perf_counter()
    parallel.prefetch(points)
    parallel_s = time.perf_counter() - t0

    identical = all(
        result_to_dict(serial.run(name, config))
        == result_to_dict(parallel.run(name, config))
        for name, config in points
    )

    # telemetry overhead: the same matrix with tracing + sampling enabled,
    # against the serial telemetry-off run above.  Also checks the zero-
    # drift contract: every counter must be identical with telemetry on.
    tel = TelemetryConfig(enabled=True, sample_every=500.0)
    tel_points = [
        (name, dataclasses.replace(config, telemetry=tel)) for name, config in points
    ]
    tel_runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHMARKS)
    t0 = time.perf_counter()
    tel_runner.prefetch(tel_points)
    telemetry_s = time.perf_counter() - t0
    drift_free = all(
        result_to_dict(serial.run(name, config))
        == result_to_dict(tel_runner.run(name, tel_config))
        for (name, config), (_name, tel_config) in zip(points, tel_points)
    )

    report = {
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "points": len(points),
        "horizon": HORIZON,
        "warmup": WARMUP,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "serial_points_per_second": round(len(points) / serial_s, 3),
        "parallel_points_per_second": round(len(points) / parallel_s, 3),
        "identical_results": identical,
        "parallel_phase_seconds": {
            k: round(v, 3) for k, v in parallel.stats.phase_seconds.items()
        },
        "telemetry": {
            "off_seconds": round(serial_s, 3),
            "on_seconds": round(telemetry_s, 3),
            "overhead_pct": (
                round(100 * (telemetry_s - serial_s) / serial_s, 1) if serial_s else None
            ),
            "drift_free": drift_free,
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not identical:
        print("ERROR: parallel results diverge from serial", file=sys.stderr)
        return 1
    if not drift_free:
        print("ERROR: telemetry changed simulation statistics", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
