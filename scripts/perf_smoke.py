#!/usr/bin/env python3
"""Perf smoke run: serial vs parallel on a small fixed simulation matrix.

Simulates the same fixed ``(workload, config)`` matrix twice — once
serially through :class:`~repro.experiments.runner.Runner`, once through
:class:`~repro.experiments.parallel.ParallelRunner` with a process pool —
verifies the results are bit-identical, and writes ``BENCH_parallel.json``
(wall times, points/sec, speedup, core count) so the perf trajectory is
comparable across changes.

It also benchmarks the simulation core itself and writes
``BENCH_core.json``: serial points/sec and events/sec over ``CORE_REPS``
interleaved repetitions (best rep kept — the standard way to reject
scheduler noise on shared machines), the telemetry on/off overhead under
the same methodology, rep-to-rep result identity, and the zero-drift
check (telemetry may never change a simulated statistic).

Usage:  python scripts/perf_smoke.py [--jobs N] [--output PATH]
                                     [--core-output PATH] [--check]

``--check`` additionally runs the fast ``-k`` selection of the parallel
subsystem's tier-1 tests before benchmarking, and afterwards guards
against throughput regressions: the fresh ``events_per_second`` is
compared against the committed ``BENCH_core.json`` and the run exits
non-zero when it dropped by more than ``REGRESSION_TOLERANCE``.  The
guard skips itself with a notice when the host was already loaded when
the run started (wall-clock numbers are meaningless then) or when no
baseline exists.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

from repro.common import host_metadata
from repro.common.config import TelemetryConfig
from repro.experiments import designs
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner, result_to_dict
from repro.sim import fastpath


def bench_host_metadata() -> dict:
    """Host metadata plus the fastpath switch states the run was taken under.

    Wall-clock numbers are only comparable between runs with the same
    fast-path configuration (batching / pooling / columnar lane / numpy
    availability), so the switches are recorded next to the host facts and
    the ``--check`` guard refuses baselines taken under a different state.
    """
    meta = host_metadata()
    meta["fastpath"] = fastpath.switch_state()
    return meta

PARTITIONS = 2
HORIZON = 4_000
WARMUP = 2_000
BENCHMARKS = ["nw", "bfs", "fdtd2d", "streamcluster"]

#: the fast tier-1 selection covering the parallel subsystem.
TIER1_SELECTION = ["-q", "-k", "parallel or Sharded or CrashSafety", "tests/test_parallel.py"]

#: interleaved repetitions for the core benchmark (best rep kept;
#: the median is reported alongside as the noise-robust statistic).
CORE_REPS = 5

#: repetitions for the serial/parallel comparison sweeps.
PARALLEL_REPS = 3

#: repetitions and matrix for the metrics-registry overhead drains.
METRICS_REPS = 3
METRICS_HORIZON = 1_200
METRICS_WARMUP = 800
METRICS_POINTS = [
    ("nw", {"design": "baseline", "partitions": 2}),
    ("bfs", {"design": "baseline", "partitions": 2}),
]

#: --check fails when events/sec drops below (1 - tolerance) x baseline.
REGRESSION_TOLERANCE = 0.30

#: --check skips itself when 1-min loadavg exceeds this multiple of the
#: core count at process start (another tenant owns the machine).
LOAD_SKIP_FACTOR = 1.25


def fixed_matrix():
    configs = {
        "baseline": designs.build_gpu(None, PARTITIONS),
        "secureMem_mshr64": designs.build_gpu(designs.secure_mem(64), PARTITIONS),
        "direct_40": designs.build_gpu(designs.direct(40), PARTITIONS),
    }
    return [(name, config) for config in configs.values() for name in BENCHMARKS]


def _timed_sweep(points):
    """One serial pass over *points* on a fresh Runner.

    Returns ``(seconds, results, events_processed)``; a fresh Runner per
    call keeps its in-memory result cache from short-circuiting later reps.
    """
    runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHMARKS)
    t0 = time.perf_counter()
    runner.prefetch(points)
    elapsed = time.perf_counter() - t0
    results = [runner.run(name, config) for name, config in points]
    events = sum(r.events_processed for r in results)
    for r in results:
        # drop the (possibly huge) telemetry export before the next rep:
        # holding 12 of them inflates the allocator for later sweeps.
        r.telemetry = None
    return elapsed, results, events


def core_bench() -> dict:
    """Benchmark the simulation core: serial throughput + telemetry cost.

    Telemetry-off and telemetry-on sweeps are interleaved rep by rep so a
    load spike hits both sides equally; the best rep of each side is kept.
    """
    points = fixed_matrix()
    tel = TelemetryConfig(enabled=True, sample_every=500.0)
    tel_points = [
        (name, dataclasses.replace(config, telemetry=tel)) for name, config in points
    ]

    off_times, on_times = [], []
    off_dicts, on_dicts = [], []
    events_processed = 0
    for _rep in range(CORE_REPS):
        elapsed, results, events = _timed_sweep(points)
        off_times.append(elapsed)
        off_dicts.append([result_to_dict(r) for r in results])
        events_processed = events  # identical every rep when deterministic
        elapsed, results, _events = _timed_sweep(tel_points)
        on_times.append(elapsed)
        on_dicts.append([result_to_dict(r) for r in results])

    identical = all(d == off_dicts[0] for d in off_dicts[1:])
    drift_free = all(d == off_dicts[0] for d in on_dicts)
    off_best, on_best = min(off_times), min(on_times)
    off_median = statistics.median(off_times)
    on_median = statistics.median(on_times)
    return {
        "host": bench_host_metadata(),
        "points": len(points),
        "horizon": HORIZON,
        "warmup": WARMUP,
        "reps": CORE_REPS,
        "methodology": "interleaved off/on reps, best rep per side (median alongside)",
        "serial_seconds": round(off_best, 3),
        "serial_seconds_median": round(off_median, 3),
        "serial_points_per_second": round(len(points) / off_best, 3),
        "events_processed": events_processed,
        "events_per_second": round(events_processed / off_best, 1),
        "events_per_second_median": round(events_processed / off_median, 1),
        "identical_results": identical,
        "telemetry": {
            "off_seconds": round(off_best, 3),
            "on_seconds": round(on_best, 3),
            "overhead_pct": round(100 * (on_best - off_best) / off_best, 1),
            "overhead_pct_median": round(100 * (on_median - off_median) / off_median, 1),
            "overhead_seconds": round(on_best - off_best, 3),
            "drift_free": drift_free,
        },
    }


def metrics_bench() -> dict:
    """Overhead of the live metrics plane on the worker drain path.

    Drains identical fresh sweeps through an in-process worker twice per
    rep — once with :data:`~repro.obsv.metrics.NULL_METRICS` (the plane
    fully off) and once with a live registry persisting snapshots on
    every point — interleaved so load spikes hit both sides equally.
    The observability tax this guards is claim/report instrumentation +
    snapshot persistence, not simulation itself (the sim hot path never
    sees a live registry).
    """
    import tempfile

    from repro.jobs.store import SQLiteJobStore
    from repro.jobs.worker import Worker
    from repro.obsv.metrics import NULL_METRICS, MetricsRegistry

    null_times, live_times = [], []
    with tempfile.TemporaryDirectory(prefix="metrics-bench-") as tmp:
        for rep in range(METRICS_REPS):
            for side, times in (("null", null_times), ("live", live_times)):
                registry = NULL_METRICS if side == "null" else MetricsRegistry()
                store = SQLiteJobStore(
                    Path(tmp) / f"{side}-{rep}.sqlite", metrics=registry
                )
                store.submit_sweep(
                    METRICS_POINTS, horizon=METRICS_HORIZON, warmup=METRICS_WARMUP
                )
                worker = Worker(store, poll_s=0.01, metrics=registry)
                t0 = time.perf_counter()
                worker.run(until="drained")
                times.append(time.perf_counter() - t0)
                store.close()
    null_best, live_best = min(null_times), min(live_times)
    null_med = statistics.median(null_times)
    live_med = statistics.median(live_times)
    return {
        "reps": METRICS_REPS,
        "points": len(METRICS_POINTS),
        "horizon": METRICS_HORIZON,
        "warmup": METRICS_WARMUP,
        "methodology": "interleaved NULL_METRICS/instrumented worker drains, "
        "best per side (median alongside)",
        "null_seconds": round(null_best, 3),
        "instrumented_seconds": round(live_best, 3),
        "overhead_pct": (
            round(100 * (live_best - null_best) / null_best, 1) if null_best else None
        ),
        "overhead_pct_median": (
            round(100 * (live_med - null_med) / null_med, 1) if null_med else None
        ),
    }


def regression_guard(core_report: dict, baseline_path: Path, start_load: float) -> int:
    """Compare fresh core throughput against the committed baseline.

    The fresh best-of-reps ``events_per_second`` is compared against the
    baseline's ``events_per_second_median`` when recorded (falling back
    to its best): best-vs-median tolerates the host sitting at the slow
    end of its drift band without false-tripping on a baseline that was
    taken at the fast end.

    Returns a process exit code: 0 when within tolerance (or when the
    check has to skip itself), 1 on a regression beyond
    :data:`REGRESSION_TOLERANCE`.  Skips — with a printed notice — when
    no baseline file exists, the baseline predates the
    ``events_per_second`` field, the baseline's recorded fastpath switch
    state differs from the current one (an apples-to-oranges wall-clock
    comparison), or the host's 1-minute loadavg at process start says
    another tenant owns the machine.
    """
    cpus = os.cpu_count() or 1
    if start_load > LOAD_SKIP_FACTOR * cpus:
        print(
            f"NOTICE: perf check skipped - loadavg {start_load:.2f} over "
            f"{cpus} core(s) at start; wall-clock numbers unreliable"
        )
        return 0
    if not baseline_path.exists():
        print(f"NOTICE: perf check skipped - no baseline at {baseline_path}")
        return 0
    try:
        baseline = json.loads(baseline_path.read_text())
        # the baseline's *median* is the noise-robust reference when the
        # report carries one: a best-of-reps baseline taken at the host's
        # fastest moment would otherwise false-trip the guard whenever the
        # host runs at the slow end of its (wide, 1-core) drift band.
        base_eps = float(
            baseline.get("events_per_second_median")
            or baseline["events_per_second"]
        )
    except (ValueError, KeyError, TypeError):
        print(f"NOTICE: perf check skipped - unreadable baseline {baseline_path}")
        return 0
    base_switches = (baseline.get("host") or {}).get("fastpath")
    current_switches = fastpath.switch_state()
    if base_switches != current_switches:
        print(
            "NOTICE: perf check skipped - baseline fastpath switch state "
            f"{base_switches} differs from current {current_switches}; "
            "wall-clock comparison would be apples-to-oranges"
        )
        return 0
    fresh_eps = core_report["events_per_second"]
    floor = (1.0 - REGRESSION_TOLERANCE) * base_eps
    verdict = "OK" if fresh_eps >= floor else "REGRESSION"
    print(
        f"perf check: {fresh_eps:,.0f} events/s vs baseline {base_eps:,.0f} "
        f"(floor {floor:,.0f}): {verdict}"
    )
    if fresh_eps < floor:
        print(
            f"ERROR: events/sec regressed more than "
            f"{100 * REGRESSION_TOLERANCE:.0f}% vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--jobs", type=int, default=0, help="pool size (0 = one worker per core)"
    )
    parser.add_argument("--output", default=str(ROOT / "BENCH_parallel.json"))
    parser.add_argument("--core-output", default=str(ROOT / "BENCH_core.json"))
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the parallel-subsystem tests first and guard events/sec "
        "against the committed BENCH_core.json afterwards",
    )
    args = parser.parse_args()

    try:
        start_load = os.getloadavg()[0]
    except (AttributeError, OSError):  # platforms without getloadavg
        start_load = 0.0
    # the committed baseline must be read before this run overwrites it.
    baseline_path = Path(args.core_output)
    baseline_blob = baseline_path.read_text() if baseline_path.exists() else None

    if args.check:
        code = subprocess.call([sys.executable, "-m", "pytest", *TIER1_SELECTION], cwd=ROOT)
        if code:
            return code

    # core bench first: it runs in a clean process state, before the pool
    # and the cache-backed runners below have touched the heap.
    core_report = core_bench()
    Path(args.core_output).write_text(json.dumps(core_report, indent=2) + "\n")
    print(json.dumps(core_report, indent=2))

    points = fixed_matrix()
    jobs = args.jobs or (os.cpu_count() or 1)
    tel = TelemetryConfig(enabled=True, sample_every=500.0)
    tel_points = [
        (name, dataclasses.replace(config, telemetry=tel)) for name, config in points
    ]

    # serial / parallel / telemetry sweeps, interleaved rep by rep (a load
    # spike hits all three sides equally); best and median of each kept.
    # Fresh runners per rep keep result caches from short-circuiting later
    # reps; the final rep's runners serve the identity checks below.
    serial_times, parallel_times, telemetry_times = [], [], []
    events = 0
    for _rep in range(PARALLEL_REPS):
        serial = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHMARKS)
        t0 = time.perf_counter()
        serial.prefetch(points)
        serial_times.append(time.perf_counter() - t0)

        parallel = ParallelRunner(
            horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHMARKS, jobs=jobs
        )
        t0 = time.perf_counter()
        parallel.prefetch(points)
        parallel_times.append(time.perf_counter() - t0)

        # telemetry overhead: the same matrix with tracing + sampling on.
        tel_runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=BENCHMARKS)
        t0 = time.perf_counter()
        tel_runner.prefetch(tel_points)
        telemetry_times.append(time.perf_counter() - t0)

    serial_results = [serial.run(name, config) for name, config in points]
    events = sum(r.events_processed for r in serial_results)
    identical = all(
        result_to_dict(r) == result_to_dict(parallel.run(name, config))
        for r, (name, config) in zip(serial_results, points)
    )
    # zero-drift contract: every counter identical with telemetry on.
    drift_free = all(
        result_to_dict(r) == result_to_dict(tel_runner.run(name, tel_config))
        for r, (name, tel_config) in zip(serial_results, tel_points)
    )

    serial_s, parallel_s = min(serial_times), min(parallel_times)
    telemetry_s = min(telemetry_times)
    serial_med = statistics.median(serial_times)
    parallel_med = statistics.median(parallel_times)
    telemetry_med = statistics.median(telemetry_times)

    report = {
        "host": bench_host_metadata(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "points": len(points),
        "horizon": HORIZON,
        "warmup": WARMUP,
        "reps": PARALLEL_REPS,
        "methodology": "interleaved serial/parallel/telemetry reps, best per side (median alongside)",
        "serial_seconds": round(serial_s, 3),
        "serial_seconds_median": round(serial_med, 3),
        "parallel_seconds": round(parallel_s, 3),
        "parallel_seconds_median": round(parallel_med, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "serial_points_per_second": round(len(points) / serial_s, 3),
        "parallel_points_per_second": round(len(points) / parallel_s, 3),
        "events_processed": events,
        "events_per_second": round(events / parallel_s, 1) if parallel_s else None,
        "events_per_second_serial": round(events / serial_s, 1) if serial_s else None,
        "identical_results": identical,
        "parallel_phase_seconds": {
            k: round(v, 3) for k, v in parallel.stats.phase_seconds.items()
        },
        "telemetry": {
            "off_seconds": round(serial_s, 3),
            "on_seconds": round(telemetry_s, 3),
            "overhead_pct": (
                round(100 * (telemetry_s - serial_s) / serial_s, 1) if serial_s else None
            ),
            "overhead_pct_median": (
                round(100 * (telemetry_med - serial_med) / serial_med, 1)
                if serial_med
                else None
            ),
            "drift_free": drift_free,
        },
        "metrics_registry": metrics_bench(),
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if not identical:
        print("ERROR: parallel results diverge from serial", file=sys.stderr)
        return 1
    if not drift_free:
        print("ERROR: telemetry changed simulation statistics", file=sys.stderr)
        return 1
    if not core_report["identical_results"]:
        print("ERROR: serial results differ between core-bench reps", file=sys.stderr)
        return 1
    if not core_report["telemetry"]["drift_free"]:
        print("ERROR: telemetry changed simulation statistics", file=sys.stderr)
        return 1
    if args.check and baseline_blob is not None:
        baseline_file = Path(args.core_output).with_suffix(".baseline.json")
        baseline_file.write_text(baseline_blob)
        try:
            code = regression_guard(core_report, baseline_file, start_load)
        finally:
            baseline_file.unlink(missing_ok=True)
        return code
    if args.check:
        print(f"NOTICE: perf check skipped - no baseline at {args.core_output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
