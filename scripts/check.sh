#!/usr/bin/env sh
# Local CI: lint (when ruff is available) + the tier-1 test suite + the
# core/parallel perf smoke (writes BENCH_parallel.json and BENCH_core.json
# and fails on result divergence or telemetry stat drift).
#
# Usage: scripts/check.sh [--no-bench]
# Exit status is nonzero on the first failing step.
set -eu

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests scripts
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q -m "not slow"

if [ "${1:-}" != "--no-bench" ]; then
    echo "== perf smoke (BENCH_parallel.json + BENCH_core.json) =="
    PYTHONPATH=src python scripts/perf_smoke.py
fi
