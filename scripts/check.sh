#!/usr/bin/env sh
# Local CI: lint (when ruff is available) + the tier-1 test suite.
#
# Usage: scripts/check.sh
# Exit status is nonzero on the first failing step.
set -eu

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests scripts
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q
