#!/usr/bin/env python
"""End-to-end smoke test of the sweep service over real HTTP.

Starts ``repro serve`` as a subprocess on an ephemeral port, submits a
two-point sweep with POST /sweeps, drains it with one ``repro worker``
subprocess, polls progress until the sweep is terminal, asserts the
rendered dashboard HTML is non-empty, scrapes ``GET /metrics``
(asserting the worker's claim/report counters made it through the store
and the service's own request histograms are present), and validates
the distributed trace: ``GET /sweeps/<id>/spans`` must show one trace
id with at least one ``runner.point`` span per point, and ``repro
spans --chrome`` must emit a loadable trace_event file (written to
``$SMOKE_TRACE_OUT`` when set, for CI artifact upload).  Exercises the
exact process boundaries CI cares about: server and worker are separate
OS processes meeting only at the SQLite store, and the client talks
real TCP.

Exit 0 on success; any failure raises (non-zero exit) with the server's
output echoed for diagnosis.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
ENV = {**os.environ, "PYTHONPATH": str(ROOT / "src")}
REPRO = [sys.executable, "-m", "repro"]

#: generous per-phase budget; the sweep itself is two sub-second points.
TIMEOUT_S = 120.0


def wait_for_url(proc: subprocess.Popen) -> str:
    """Parse the bound URL from the server's first stdout line."""
    deadline = time.monotonic() + TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise RuntimeError(f"server exited early: rc={proc.returncode}")
            time.sleep(0.05)
            continue
        print(f"  [serve] {line.rstrip()}")
        if "listening on " in line:
            return line.split("listening on ", 1)[1].split()[0]
    raise RuntimeError("server never printed its listening URL")


def http_json(url: str, payload: dict | None = None) -> dict:
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    store = tmp / "sweeps.sqlite"
    server = subprocess.Popen(
        [*REPRO, "serve", "--store", str(store), "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=ENV, cwd=ROOT,
    )
    try:
        base = wait_for_url(server)

        health = http_json(base + "/healthz")
        assert health["status"] == "ok", health
        print(f"healthz ok (version {health['version']})")

        submitted = http_json(
            base + "/sweeps",
            {
                "design": "baseline",
                "workloads": ["nw", "bfs"],  # the 2-point sweep
                "partitions": 2,
                "horizon": 1200,
                "warmup": 800,
                "label": "ci-smoke",
            },
        )
        sweep_id = submitted["sweep_id"]
        assert submitted["total"] == 2, submitted
        print(f"submitted sweep {sweep_id} ({submitted['total']} points)")

        worker = subprocess.run(
            [*REPRO, "worker", "--store", str(store)],
            capture_output=True, text=True, env=ENV, cwd=ROOT,
            timeout=TIMEOUT_S,
        )
        print(f"  [worker] {worker.stdout.strip()}")
        assert worker.returncode == 0, worker.stderr

        deadline = time.monotonic() + TIMEOUT_S
        while True:
            progress = http_json(base + f"/sweeps/{sweep_id}")
            print(
                f"progress: {progress['counts']['done']}/{progress['total']} "
                f"done ({progress['status']})"
            )
            if progress["status"] in ("done", "failed"):
                break
            if time.monotonic() > deadline:
                raise RuntimeError(f"sweep never finished: {progress}")
            time.sleep(0.5)
        assert progress["status"] == "done", progress["failures"]

        results = http_json(base + f"/sweeps/{sweep_id}/results")["results"]
        assert len(results) == 2, results
        assert all(row["result"]["ipc"] > 0 for row in results)

        with urllib.request.urlopen(
            base + f"/sweeps/{sweep_id}/dashboard", timeout=30
        ) as response:
            html_text = response.read().decode()
        assert html_text.strip(), "dashboard HTML is empty"
        assert "<html" in html_text, html_text[:200]
        assert sweep_id in html_text
        assert 'id="fleet"' in html_text, "dashboard lacks the fleet section"
        print(f"dashboard ok ({len(html_text)} bytes)")

        with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
            content_type = response.headers.get("Content-Type", "")
            metrics_text = response.read().decode()
        assert content_type.startswith("text/plain"), content_type
        sys.path.insert(0, str(ROOT / "src"))
        from repro.obsv.metrics import parse_prometheus

        samples = parse_prometheus(metrics_text)
        claims = sum(
            value
            for (name, labels), value in samples.items()
            if name == "repro_store_claims_total" and dict(labels).get("worker")
        )
        reports = sum(
            value
            for (name, labels), value in samples.items()
            if name == "repro_store_reports_total" and dict(labels).get("worker")
        )
        assert claims >= 2, f"expected >=2 worker claims, got {claims}"
        assert reports >= 2, f"expected >=2 worker reports, got {reports}"
        assert any(
            name == "repro_http_request_duration_us_count"
            for (name, _labels) in samples
        ), "request duration histogram missing"
        assert any(
            name == "repro_worker_points_total" for (name, _labels) in samples
        ), "worker point counters missing"
        print(
            f"metrics ok ({len(metrics_text.splitlines())} lines, "
            f"{claims:.0f} claims / {reports:.0f} reports seen)"
        )

        top = subprocess.run(
            [*REPRO, "top", "--store", str(store), "--once"],
            capture_output=True, text=True, env=ENV, cwd=ROOT,
            timeout=TIMEOUT_S,
        )
        assert top.returncode == 0, top.stderr
        assert sweep_id in top.stdout, top.stdout
        print("repro top ok")

        spans_doc = http_json(base + f"/sweeps/{sweep_id}/spans")
        spans = spans_doc["spans"]
        trace_ids = {s["trace_id"] for s in spans}
        assert trace_ids == {submitted["trace_id"]}, trace_ids
        points = [s for s in spans if s["name"] == "runner.point"]
        assert len(points) >= submitted["total"], (
            f"expected >= {submitted['total']} runner.point spans, "
            f"got {len(points)}"
        )
        assert any(s["name"] == "http.submit" for s in spans), spans
        assert any(s["name"] == "worker.execute" for s in spans), spans
        print(f"spans ok ({len(spans)} spans, one trace)")

        chrome_out = os.environ.get(
            "SMOKE_TRACE_OUT", str(tmp / "sweep-trace.json")
        )
        spans_cli = subprocess.run(
            [*REPRO, "spans", sweep_id, "--store", str(store),
             "--chrome", chrome_out],
            capture_output=True, text=True, env=ENV, cwd=ROOT,
            timeout=TIMEOUT_S,
        )
        assert spans_cli.returncode == 0, spans_cli.stderr
        assert "runner.simulate" in spans_cli.stdout, spans_cli.stdout
        chrome = json.loads(Path(chrome_out).read_text())
        x_events = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert len(x_events) >= submitted["total"], chrome["otherData"]
        assert chrome["otherData"]["sweep_id"] == sweep_id
        print(
            f"repro spans ok ({len(x_events)} timeline events -> {chrome_out})"
        )

        print("serve smoke: PASS")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
