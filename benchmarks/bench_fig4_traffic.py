"""Figure 4: distribution of memory-request types under secureMem."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig4_traffic(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig4, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 4 — memory traffic shares under secureMem "
        "(paper averages: MAC 25.6%, counters 21.8%; non-memory-intensive "
        "benchmarks show 60-75% metadata traffic yet no slowdown)",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Average"]),
    )
    average = table["Average"]
    assert average["mac"] > 0.10
    assert average["ctr"] > 0.10
    # metadata dominates for the non-memory-intensive streaming case (nw)
    assert table["nw"]["data"] < 0.65
