"""Figure 15: direct encryption at 40/80/160-cycle AES latency."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig15_direct(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig15, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 15 — direct encryption latency sweep "
        "(paper: 1.3% / 3.0% / 5.9% mean slowdown at 40/80/160 cycles; "
        "GPUs tolerate the exposed latency)",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Gmean"]),
    )
    gmean = table["Gmean"]
    assert gmean["direct_40"] > 0.85
    assert gmean["direct_160"] <= gmean["direct_40"] + 0.02
    assert gmean["direct_160"] > 0.75
