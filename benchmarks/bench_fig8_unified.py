"""Figure 8: unified vs separate metadata caches (IPC)."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig8_unified(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig8, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 8 — separate vs unified metadata caches "
        "(paper: separate wins on GPUs, the opposite of the CPU result)",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Gmean"]),
    )
    assert table["Gmean"]["separate"] > table["Gmean"]["unified"]
