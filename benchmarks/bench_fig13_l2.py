"""Figure 13: secureMem IPC with the L2 shrunk for security hardware."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig13_l2(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig13, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 13 — normalized IPC vs L2 capacity (paper-scale 4..6 MB; "
        "paper: most benchmarks insensitive, medium-intensity ones degrade)",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Gmean"]),
    )
    gmean = table["Gmean"]
    assert gmean["secureMem_4MB"] <= gmean["secureMem_6MB"] * 1.05
