"""Shared fixtures for the paper-regeneration benchmark harness.

Every ``bench_*.py`` regenerates one table or figure of the paper at the
benchmark scale (2 partitions, 5k-cycle measured window after a 6k-cycle
warmup, all 14 workloads) and prints the same rows/series the paper
reports.  Results land in a sharded, crash-safe cache on disk, so repeated
invocations and figures sharing design points (e.g. the baseline) only
simulate once.  The session runner is a
:class:`~repro.experiments.parallel.ParallelRunner`: set ``REPRO_JOBS`` to
fan independent points out over worker processes (default: one per core).

Run with::

    REPRO_JOBS=4 pytest benchmarks/ --benchmark-only -s
"""

import os
from pathlib import Path

import pytest

from repro.experiments.parallel import ParallelRunner

#: benchmark-harness scale; EXPERIMENTS.md is regenerated at a larger one.
PARTITIONS = 2
HORIZON = 8_000
WARMUP = 20_000

JOBS = int(os.environ.get("REPRO_JOBS", "0")) or None  # None = cpu_count


@pytest.fixture(scope="session")
def paper_runner():
    # a legacy single-file cache at the .json path is imported read-only;
    # the sharded cache lives in the ``.json.d/`` directory next to it.
    legacy = Path(__file__).parent / "_cache" / f"results_p{PARTITIONS}_h{HORIZON}.json"
    cache = legacy if legacy.is_file() else legacy.with_name(legacy.name + ".d")
    runner = ParallelRunner(
        horizon=HORIZON, warmup=WARMUP, cache_path=cache, jobs=JOBS
    )
    yield runner
    runner.close()


def emit(title: str, text: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")
