"""Shared fixtures for the paper-regeneration benchmark harness.

Every ``bench_*.py`` regenerates one table or figure of the paper at the
benchmark scale (2 partitions, 5k-cycle measured window after a 6k-cycle
warmup, all 14 workloads) and prints the same rows/series the paper
reports.  Results are cached on disk, so repeated invocations and figures
sharing design points (e.g. the baseline) only simulate once.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from pathlib import Path

import pytest

from repro.experiments.runner import Runner

#: benchmark-harness scale; EXPERIMENTS.md is regenerated at a larger one.
PARTITIONS = 2
HORIZON = 8_000
WARMUP = 20_000


@pytest.fixture(scope="session")
def paper_runner():
    cache = Path(__file__).parent / "_cache" / f"results_p{PARTITIONS}_h{HORIZON}.json"
    return Runner(horizon=HORIZON, warmup=WARMUP, cache_path=cache)


def emit(title: str, text: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")
