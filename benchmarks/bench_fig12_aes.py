"""Figure 12: 1 vs 2 AES engines per memory partition."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig12_aes(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig12, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 12 — AES engines per partition "
        "(paper: one engine is enough; metadata traffic, not AES "
        "throughput, is the bottleneck)",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Gmean"]),
    )
    gmean = table["Gmean"]
    assert gmean["aes_1"] > 0.9 * gmean["aes_2"]
