"""Figure 17: full integrity protection under a fixed 6KB cache budget."""

from conftest import PARTITIONS, emit

from repro.analysis.bars import render_bar_chart
from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig17_integrity(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig17, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 17 — integrity protection comparison "
        "(paper mean slowdowns: ctr_mac_bmt 63.5%, direct_mac 42.7%, "
        "direct_mac_mt 71.9% — direct+MAC wins, the MT is the costly part)",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Gmean"])
        + "\n\n"
        + render_bar_chart({"Gmean": table["Gmean"]}, peak=1.0),
    )
    gmean = table["Gmean"]
    assert gmean["direct_mac"] > gmean["ctr_mac_bmt"]
    assert gmean["direct_mac"] > gmean["direct_mac_mt"]
