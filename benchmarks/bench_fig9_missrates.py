"""Figure 9: per-kind metadata miss rates, unified vs separate."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures


def test_bench_fig9_missrates(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig9, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 9 — metadata miss rates and writeback traffic "
        "(paper: unified raises every kind's miss rate — ctr 22.8->24.0%, "
        "mac 31.75->31.82%, bmt 4.0->5.9% — and produces 1.47x the "
        "metadata writebacks)",
        render_series_table("", table, value_format="{:.4f}"),
    )
    # at the scaled pressure ctr/mac run near-saturated either way; the
    # discriminating signals are the tree miss rate and the writebacks.
    assert table["bmt"]["unified"] >= table["bmt"]["separate"] * 0.95
    assert table["mac"]["unified"] >= table["mac"]["separate"] * 0.9
