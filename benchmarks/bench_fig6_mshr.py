"""Figure 6: normalized IPC vs metadata-cache MSHR count."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig6_mshr(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig6, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 6 — normalized IPC vs metadata MSHRs "
        "(paper: monotone improvement, 64 MSHRs the sweet spot)",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Gmean"]),
    )
    gmean = table["Gmean"]
    assert gmean["mshr_64"] > gmean["mshr_0"]
    assert gmean["mshr_32"] >= gmean["mshr_0"]
