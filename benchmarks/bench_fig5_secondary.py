"""Figure 5: secondary-miss share of metadata cache misses."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig5_secondary(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig5, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 5 — secondary misses / all misses per metadata cache "
        "(paper averages: ctr 65.0%, MAC 59.7%, BMT 85.6%; >90% for "
        "streaming memory-intensive workloads)",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Average"]),
    )
    assert table["Average"]["ctr"] > 0.4
    assert table["Average"]["mac"] > 0.4
    assert table["streamcluster"]["ctr"] > 0.8
