"""Figure 3: counter-mode + BMT overhead and idealized designs."""

from conftest import PARTITIONS, emit

from repro.analysis.bars import render_bar_chart
from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig3_overhead(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig3, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 3 — normalized IPC of counter-mode + BMT "
        "(paper: secureMem Gmean ~0.34, up to 91% loss for lbm; "
        "0_crypto does not help; perf/large metadata caches ~ baseline)",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Gmean"])
        + "\n\n"
        + render_bar_chart({"Gmean": table["Gmean"]}, peak=1.0),
    )
    gmean = table["Gmean"]
    assert gmean["secureMem"] < 0.7
    assert abs(gmean["0_crypto"] - gmean["secureMem"]) < 0.1
    assert gmean["perf_mdc"] > 0.9
    assert gmean["large_mdc"] > 0.75
