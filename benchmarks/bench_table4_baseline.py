"""Table IV: baseline bandwidth utilization and IPC per workload."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_table4_baseline(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.table4, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Table IV — baseline characterization (measured vs paper bands; "
        "ipc_%peak = thread IPC / peak thread IPC)",
        render_series_table("", table, value_format="{:.1f}", row_order=BENCHMARK_ORDER),
    )
    # category structure must hold
    assert table["lbm"]["bw_util_%"] > 40
    assert table["heartwall"]["bw_util_%"] < 20
