"""Tables VI-VII: die-area model and L2 displacement (exact)."""

from conftest import emit

from repro.analysis.area import AreaModel
from repro.analysis.report import render_series_table
from repro.experiments import figures


def test_bench_table6_7_area(benchmark):
    table = benchmark.pedantic(figures.table6_7, rounds=1, iterations=1)
    model = AreaModel()
    emit(
        "Tables VI-VII — AES/cache die area scaled to 12nm "
        "(paper: AES 0.0036 mm^2; security hardware displaces ~1526 KB "
        "= 24.84% of the 6 MB L2)",
        render_series_table("", table, value_format="{:.5f}"),
    )
    assert abs(table["AES engine"]["scaled_12nm_mm2"] - 0.0036) < 1e-4
    assert abs(model.l2_reduction_fraction() - 0.2484) < 0.01
