"""Figure 7: normalized IPC vs metadata cache size."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig7_mdcsize(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig7, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 7 — normalized IPC vs per-kind metadata cache size "
        "(paper: 46.2% average loss remains even at 64KB/partition; "
        "kmeans/srad_v2/lbm stay heavily degraded)",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Gmean"]),
    )
    gmean = table["Gmean"]
    assert gmean["64KB"] >= gmean["2KB"]
    assert gmean["64KB"] < 0.97  # residual overhead survives big caches
