"""Extension: split-counter overflow — the hidden write-hot cost.

The paper's split counters (7-bit minors) overflow after 128 writebacks of
the same line; the whole 16 KB chunk must then be re-encrypted under the
bumped major counter.  This bench hammers one line through both layers:
the timing engine (traffic amplification) and the functional memory
(data survives, counters reset, integrity intact).
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.common.config import GpuConfig
from repro.common.stats import StatGroup
from repro.experiments import designs
from repro.secure.engine import SecureEngine
from repro.secure.functional import SecureMemory, SecureMemoryMode
from repro.secure.layout import MetadataLayout
from repro.sim.dram import DramChannel
from repro.sim.event import EventQueue

KB = 1024
MB = 1024 * 1024


def _timing_side():
    secure = designs.separate()
    gpu = GpuConfig.scaled(num_partitions=1, secure=secure)
    events = EventQueue()
    dram = DramChannel(gpu.dram, gpu.core_clock_mhz, StatGroup("dram"))
    engine = SecureEngine(secure, gpu, dram, events, MetadataLayout(16 * MB), StatGroup("s"))
    rows = []
    for writes in (64, 127, 128, 256):
        dram.stats.reset()
        engine.stats.set("counter_overflows", 0)
        engine._minor_counts.clear()
        for i in range(writes):
            engine.write_sector(float(i * 3), 0x0)
            events.run(until=float(i * 3) + 1)
        events.run()
        rows.append(
            [
                writes,
                int(engine.stats.get("counter_overflows")),
                int(dram.stats.get("txn_data_read")),
                int(dram.stats.get("txn_data_write")),
            ]
        )
    return rows


def _functional_side():
    memory = SecureMemory(protected_bytes=16 * KB, mode=SecureMemoryMode.CTR_MAC_BMT)
    memory.write(256, b"bystander line in the same chunk")
    for i in range(130):
        memory.write(0, bytes([i % 256]) * 32)
    block = memory._counter_block(0)
    survived = memory.read(256, 32) == b"bystander line in the same chunk"
    latest = memory.read(0, 32) == bytes([129]) * 32
    return block.major, block.get_minor(0), survived, latest


def test_bench_counter_overflow(benchmark):
    rows = benchmark.pedantic(_timing_side, rounds=1, iterations=1)
    major, minor, survived, latest = _functional_side()
    emit(
        "Counter overflow — timing traffic amplification (one line written "
        "N times; at 128 the 16 KB chunk re-encrypts: 512-transaction read "
        "+ write burst) and functional correctness after overflow.",
        render_table(
            ["writes", "overflows", "data_read_txn", "data_write_txn"], rows
        )
        + f"\n\nfunctional: major={major} minor={minor} "
        f"bystander_survived={survived} latest_value_correct={latest}",
    )
    by_writes = {row[0]: row for row in rows}
    assert by_writes[127][1] == 0
    assert by_writes[128][1] == 1
    assert by_writes[128][2] >= 512  # chunk re-read
    assert major >= 1 and survived and latest
