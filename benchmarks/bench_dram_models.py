"""Extension: simple vs banked (row-buffer) DRAM under secure memory.

The simple channel folds DRAM inefficiency into a constant; the banked
model lets it emerge from row-buffer locality.  Metadata fetches interleave
with data streams and disturb open rows — a secondary cost of secure
memory invisible to the constant-efficiency model.
"""

from dataclasses import replace

from conftest import HORIZON, PARTITIONS, WARMUP, emit

from repro.analysis.report import render_series_table
from repro.experiments import designs
from repro.sim.gpu import Gpu
from repro.workloads.suite import get_benchmark

BENCHES = ("streamcluster", "fdtd2d", "bfs")


def _run_matrix():
    table = {}
    for name in BENCHES:
        row = {}
        for model in ("simple", "banked"):
            for design_label, secure in (("base", None), ("secure", designs.separate())):
                config = designs.build_gpu(secure, PARTITIONS)
                config = replace(config, dram=replace(config.dram, model=model))
                gpu = Gpu(config, get_benchmark(name))
                result = gpu.run(HORIZON, warmup=WARMUP)
                row[f"{model}_{design_label}_ipc"] = result.ipc
                if model == "banked" and design_label == "secure":
                    row["row_hit_rate"] = gpu.partitions[0].dram.row_hit_rate()
        row["simple_norm"] = row["simple_secure_ipc"] / row["simple_base_ipc"]
        row["banked_norm"] = row["banked_secure_ipc"] / row["banked_base_ipc"]
        table[name] = row
    return table


def test_bench_dram_models(benchmark):
    table = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    emit(
        "DRAM model comparison — secure-memory slowdown under the "
        "constant-efficiency channel vs the banked row-buffer channel "
        "(metadata fetches thrash open rows, so the banked model sees an "
        "extra cost the constant model cannot).",
        render_series_table("", table),
    )
    for name in BENCHES:
        assert table[name]["banked_norm"] <= 1.05
        assert 0 <= table[name]["row_hit_rate"] <= 1
