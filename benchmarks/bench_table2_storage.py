"""Table II: metadata organization and storage overheads (exact)."""

from conftest import emit

from repro.analysis.report import render_series_table
from repro.experiments import figures


def test_bench_table2_storage(benchmark):
    table = benchmark.pedantic(figures.table2, rounds=1, iterations=1)
    emit(
        "Table II — metadata storage over the 4 GB protected range "
        "(paper: 32 + 256 + 2.14 = 290.14 MB ctr-mode; 256 + 17.1 = 273.1 MB direct)",
        render_series_table("", table, value_format="{:.2f}"),
    )
    assert abs(table["total"]["counter_mode_MB"] - 290.14) < 0.2
    assert abs(table["total"]["direct_MB"] - 273.1) < 0.2
