"""Figures 10-11: reuse distance of counter/MAC accesses (fdtd2d)."""

from conftest import PARTITIONS, emit, HORIZON, WARMUP

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.experiments.runner import Runner


def test_bench_fig10_11_reuse(benchmark):
    runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=["fdtd2d"])
    out = benchmark.pedantic(
        figures.fig10_11, args=(runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 10 — reuse distance of fdtd2d counter accesses, partition 0 "
        "(paper: mass at distance 0; unified shifts mass from [1,8] to [65,512])",
        render_series_table("", out["fig10_ctr"], value_format="{:.0f}"),
    )
    emit(
        "Figure 11 — reuse distance of fdtd2d MAC accesses, partition 0",
        render_series_table("", out["fig11_mac"], value_format="{:.0f}"),
    )
    for figure in out.values():
        for org in ("separate", "unified"):
            histogram = figure[org]
            reused = {k: v for k, v in histogram.items() if k != "cold"}
            assert histogram["0"] == max(reused.values())
