"""Extension: latency tolerance vs occupancy (the mechanism of Fig. 15)."""

from conftest import HORIZON, PARTITIONS, WARMUP, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.experiments.runner import Runner


def test_bench_occupancy(benchmark):
    runner = Runner(horizon=HORIZON, warmup=WARMUP, benchmarks=["streamcluster"])
    table = benchmark.pedantic(
        figures.occupancy_study, args=(runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Occupancy study — direct-encryption (160-cycle) slowdown vs "
        "warps/SM on streamcluster. The paper attributes direct "
        "encryption's low cost to TLP; this shows the tolerance emerging "
        "as occupancy grows.",
        render_series_table("", table),
    )
    few = table["warps_2"]["normalized"]
    many = table[max(table, key=lambda k: int(k.split("_")[1]))]["normalized"]
    assert many > few  # more warps -> more latency hiding
