"""Figure 16: direct vs counter-mode encryption (confidentiality only)."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig16_vs(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig16, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 16 — direct_40 vs ctr vs ctr_bmt "
        "(paper: direct ~free; ctr costs 33.1% on average, up to 66% for "
        "lbm; adding the BMT raises it to 43.9%)",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Gmean"]),
    )
    gmean = table["Gmean"]
    assert gmean["direct_40"] > gmean["ctr"]
    assert gmean["ctr"] >= gmean["ctr_bmt"]
