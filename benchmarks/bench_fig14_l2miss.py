"""Figure 14: baseline L2 miss rates."""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_fig14_l2miss(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.fig14, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Figure 14 — baseline L2 miss rate (paper: streaming memory-"
        "intensive benchmarks near 100%, e.g. streamcluster 97%)",
        render_series_table("", table, row_order=BENCHMARK_ORDER),
    )
    assert table["streamcluster"]["l2_miss_rate"] > 0.9
    assert table["b+tree"]["l2_miss_rate"] < 0.7
