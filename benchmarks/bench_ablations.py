"""Ablations: the secure-memory design choices the paper adopts by fiat.

The paper takes speculative verification, lazy tree update and full-range
protection from the CPU literature and sectored L2 as a GPU given; these
runs quantify each choice on the same workloads.
"""

from conftest import PARTITIONS, emit

from repro.analysis.report import render_series_table
from repro.experiments import figures
from repro.workloads.suite import BENCHMARK_ORDER


def test_bench_ablations(benchmark, paper_runner):
    table = benchmark.pedantic(
        figures.ablations, args=(paper_runner, PARTITIONS), rounds=1, iterations=1
    )
    emit(
        "Ablations — normalized IPC (secureMem = counter-mode + MAC + BMT, "
        "64 MSHRs). non_sectored is normalized to a non-sectored insecure "
        "baseline: it shows how much of the secure-memory overhead is "
        "caused by the sectored L2's secondary misses.",
        render_series_table("", table, row_order=BENCHMARK_ORDER + ["Gmean"]),
    )
    gmean = table["Gmean"]
    # speculative verification and lazy update are cheap on GPUs (latency
    # tolerance), selective encryption scales the cost down, and removing
    # sectoring removes much of the metadata-traffic amplification.
    assert gmean["blocking_verify"] >= gmean["secureMem"] * 0.9
    assert gmean["selective_50"] >= gmean["secureMem"]
    assert gmean["selective_25"] >= gmean["selective_50"]
    assert gmean["non_sectored"] >= gmean["secureMem"]
