#!/usr/bin/env python3
"""Attack demonstration on the functional secure memory.

Plays the paper's threat model (Section II-B) against a real encrypted
byte store: bus snooping, data tampering, ciphertext splicing, counter
manipulation, and replay — and shows which protection level catches which
attack.  This is the semantic justification for the metadata whose *cost*
the timing model measures.

Run:  python examples/attack_demo.py
"""

from repro.secure.functional import IntegrityError, SecureMemory, SecureMemoryMode

KB = 1024


def attempt(label: str, memory: SecureMemory, attack) -> str:
    attack(memory)
    try:
        memory.read(0, 32)
        return f"  {label:34s} NOT detected (silent corruption or success)"
    except IntegrityError as exc:
        return f"  {label:34s} DETECTED ({type(exc).__name__})"


def tamper_data(memory):
    memory.tamper(4, b"\xff\xff")


def tamper_mac(memory):
    lo, _ = memory._mac_slot(0)
    memory.tamper(lo, bytes(8))


def tamper_counter(memory):
    if memory.mode.counter_mode:
        memory.tamper(memory.layout.counter_block_addr(0) + 16, b"\x07")


def splice_lines(memory):
    line0 = bytes(memory.store[0:128])
    line1 = bytes(memory.store[128:256])
    memory.tamper(0, line1)
    memory.tamper(128, line0)


def main() -> None:
    print("=== Confidentiality: what the bus snooper sees ===")
    memory = SecureMemory(protected_bytes=16 * KB, mode=SecureMemoryMode.CTR)
    secret = b"credit-card=4242424242424242"
    memory.write(0, secret)
    stored = bytes(memory.store[0:64])
    print(f"  plaintext:  {secret!r}")
    print(f"  on the bus: {stored[:28].hex()}")
    assert secret not in bytes(memory.store)
    print("  plaintext never appears in DRAM: OK\n")

    print("=== Tampering and splicing, per protection level ===")
    for mode in SecureMemoryMode:
        print(f"mode = {mode.value}")
        for label, attack in [
            ("flip data bits", tamper_data),
            ("overwrite stored MAC", tamper_mac),
            ("bump a counter", tamper_counter),
            ("splice two ciphertext lines", splice_lines),
        ]:
            if attack is tamper_counter and not mode.counter_mode:
                continue
            memory = SecureMemory(protected_bytes=16 * KB, mode=mode)
            memory.write(0, b"A" * 64)
            memory.write(128, b"B" * 64)
            print(attempt(label, memory, attack))
        print()

    print("=== Replay: restoring yesterday's memory image ===")
    for mode in (
        SecureMemoryMode.DIRECT_MAC,
        SecureMemoryMode.DIRECT_MAC_MT,
        SecureMemoryMode.CTR_MAC_BMT,
    ):
        memory = SecureMemory(protected_bytes=16 * KB, mode=mode)
        memory.write(0, b"balance=100")
        stale = memory.snapshot()
        memory.write(0, b"balance=000")
        memory.restore(stale)  # attacker puts the old image back
        try:
            value = memory.read(0, 11)
            print(f"  {mode.value:14s} replay SUCCEEDED, read {value!r}")
        except IntegrityError:
            print(f"  {mode.value:14s} replay DETECTED")
    print(
        "\nConclusion (paper Section VI-C): MACs alone cannot stop replay —"
        "\na tree (BMT over counters, or MT over MACs) anchored in an"
        "\non-chip root register is required, and that tree is exactly the"
        "\nmetadata whose traffic the timing experiments show to be costly."
    )


if __name__ == "__main__":
    main()
