#!/usr/bin/env python3
"""Metadata cache design study: MSHRs, capacity, and organization.

Reproduces the paper's Section V narrative on one workload: why sectored
L2 caches make MSHRs essential (Figs. 5-6), what capacity buys (Fig. 7),
and why separate metadata caches beat a unified one on GPUs (Figs. 8-9).

Run:  python examples/metadata_cache_study.py [benchmark-name]
"""

import sys

from repro import MetadataKind, simulate
from repro.experiments import designs
from repro.workloads.suite import get_benchmark

HORIZON = 8_000
WARMUP = 25_000
PARTITIONS = 4


def run(workload, secure):
    config = designs.build_gpu(secure, num_partitions=PARTITIONS)
    return simulate(config, workload, horizon=HORIZON, warmup=WARMUP)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fdtd2d"
    workload = get_benchmark(name)
    base = run(workload, designs.baseline())
    print(f"workload {name}: baseline IPC {base.ipc:.1f}\n")

    print("--- 1. why MSHRs matter (sectored L2 => secondary misses) ---")
    no_mshr = run(workload, designs.secure_mem(0))
    for kind in MetadataKind:
        if no_mshr.metadata[kind]["misses"]:
            print(
                f"  {kind.value:4s}: {no_mshr.secondary_miss_ratio(kind):6.1%} of "
                f"misses are secondary (same line already in flight)"
            )
    print(f"  without MSHRs every one becomes a redundant 128B fetch:")
    for count in (0, 16, 32, 64, 128):
        result = run(workload, designs.mshr_x(count))
        print(
            f"    {count:4d} MSHRs: normalized IPC {result.ipc / base.ipc:6.3f}, "
            f"metadata traffic {result.metadata_fraction():6.1%}"
        )

    print("\n--- 2. what capacity buys (and what it cannot) ---")
    for kb in (2, 4, 8, 16, 32, 64):
        result = run(workload, designs.mdc_size(kb * 1024))
        print(
            f"    {kb:3d}KB/kind: normalized IPC {result.ipc / base.ipc:6.3f}, "
            f"ctr miss {result.metadata_miss_rate(MetadataKind.COUNTER):6.1%}, "
            f"mac miss {result.metadata_miss_rate(MetadataKind.MAC):6.1%}"
        )

    print("\n--- 3. separate vs unified (same 6KB per partition) ---")
    for label, secure in (("separate 3x2KB", designs.separate()),
                          ("unified 6KB", designs.unified())):
        result = run(workload, secure)
        rates = "  ".join(
            f"{kind.value}={result.metadata_miss_rate(kind):5.1%}"
            for kind in MetadataKind
        )
        print(
            f"    {label:15s}: normalized IPC {result.ipc / base.ipc:6.3f}, "
            f"miss rates {rates}"
        )
    print(
        "\nStreaming workloads thrash the unified cache: newly fetched"
        "\nblocks of one kind evict the still-useful blocks of the others,"
        "\nso separate caches win on GPUs (the opposite of Lehman et al.'s"
        "\nCPU conclusion)."
    )


if __name__ == "__main__":
    main()
