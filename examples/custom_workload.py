#!/usr/bin/env python3
"""Define your own workload, then record and replay its trace.

Shows the two ways to feed the simulator:

1. A :class:`WorkloadSpec` with a custom generator function — here a
   GEMM-like kernel: tiled reads of two matrices (cache-friendly) plus a
   streamed output write.
2. A recorded trace file (JSON lines) replayed bit-identically — the
   vehicle for pinning experiments or importing externally captured
   traces.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import GpuConfig, simulate
from repro.experiments import designs
from repro.workloads.base import WarpOp, WorkloadSpec
from repro.workloads.trace import load_trace, record_trace

MB = 1024 * 1024
LINE = 128


def gemm_like(spec: WorkloadSpec, warp: int, total_warps: int):
    """C = A x B proxy: reuse-heavy A/B tiles, streaming C writes."""
    rng = spec.rng_for(warp)
    tile_lines = 48
    a_base = 0
    b_base = spec.working_set // 3
    c_base = 2 * (spec.working_set // 3)
    tile = (warp % 24) * tile_lines * LINE
    i = 0
    while True:
        # inner-product phase: walk the A and B tiles (hot)
        for k in range(tile_lines):
            yield WarpOp(
                n_insts=12,
                compute_cycles=4,
                mem_addrs=tuple(
                    base + tile + k * LINE + s * 32
                    for base in (a_base, b_base)
                    for s in range(2)
                ),
            )
        # write one C line (cold stream)
        out = c_base + ((i * total_warps + warp) * LINE) % (spec.working_set // 3)
        out -= out % LINE
        yield WarpOp(n_insts=4, mem_addrs=tuple(out + s * 32 for s in range(4)),
                     is_write=True)
        i += 1


def main() -> None:
    spec = WorkloadSpec(
        name="gemm_like",
        category="medium",
        trace_factory=gemm_like,
        warps_per_sm=16,
        working_set=24 * MB,
    )
    config = GpuConfig.scaled(num_partitions=4)
    secure_config = designs.build_gpu(designs.separate(), num_partitions=4)

    base = simulate(config, spec, horizon=8_000, warmup=12_000)
    secure = simulate(secure_config, spec, horizon=8_000, warmup=12_000)
    print(f"custom GEMM-like workload")
    print(f"  baseline IPC {base.ipc:8.1f}  (bw {base.bandwidth_utilization:.1%}, "
          f"L2 miss {base.l2_miss_rate:.1%})")
    print(f"  secure   IPC {secure.ipc:8.1f}  (normalized "
          f"{secure.ipc / base.ipc:.3f})")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gemm.trace"
        record_trace(spec, path, num_sms=config.num_sms, steps_per_warp=600)
        replayed = load_trace(path)
        again = simulate(config, replayed, horizon=8_000, warmup=12_000)
        print(f"  trace file: {path.stat().st_size / 1024:.0f} KB")
        print(f"  replayed IPC {again.ipc:8.1f}  "
              f"(identical to source: {again.instructions == base.instructions})")


if __name__ == "__main__":
    main()
