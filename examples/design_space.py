#!/usr/bin/env python3
"""Design-space walk: every secure-memory design of Tables V and VIII.

For a chosen workload, simulates the full set of named design points the
paper evaluates and prints a ranking with the traffic breakdown that
explains each result — a condensed tour of Sections V and VI.

Run:  python examples/design_space.py [benchmark-name]
"""

import sys

from repro import simulate
from repro.experiments import designs
from repro.workloads.suite import get_benchmark

HORIZON = 8_000
WARMUP = 25_000
PARTITIONS = 4

DESIGN_POINTS = {
    "baseline": designs.baseline(),
    "secureMem (no MSHRs)": designs.secure_mem(0),
    "secureMem + 64 MSHRs": designs.secure_mem(64),
    "0_crypto": designs.zero_crypto(0),
    "perf_mdc": designs.perfect_mdc(0),
    "large_mdc": designs.large_mdc(0),
    "unified 6KB cache": designs.unified(),
    "ctr (no integrity)": designs.ctr(),
    "ctr_bmt": designs.ctr_bmt(),
    "direct_40": designs.direct(40),
    "direct_160": designs.direct(160),
    "direct_mac": designs.direct_mac(),
    "direct_mac_mt": designs.direct_mac_mt(),
    "1 AES engine": designs.aes_engines(1),
}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "srad_v2"
    workload = get_benchmark(name)
    print(f"design space for {name} ({workload.category} memory intensity)\n")

    results = {}
    for label, secure in DESIGN_POINTS.items():
        config = designs.build_gpu(secure, num_partitions=PARTITIONS)
        results[label] = simulate(config, workload, horizon=HORIZON, warmup=WARMUP)

    base_ipc = results["baseline"].ipc
    print(f"{'design':24s} {'norm IPC':>9s} {'bw':>6s} {'data':>6s} "
          f"{'ctr':>6s} {'mac':>6s} {'bmt':>6s} {'wb':>6s}")
    ranked = sorted(results.items(), key=lambda kv: -kv[1].ipc)
    for label, result in ranked:
        fractions = result.traffic_fractions()
        print(
            f"{label:24s} {result.ipc / base_ipc:9.3f} "
            f"{result.bandwidth_utilization:6.1%} "
            f"{fractions['data']:6.1%} {fractions['ctr']:6.1%} "
            f"{fractions['mac']:6.1%} {fractions['bmt']:6.1%} {fractions['wb']:6.1%}"
        )

    print(
        "\nReading guide: metadata traffic (ctr/mac/bmt/wb columns) is what"
        "\ncosts performance on bandwidth-bound workloads; crypto latency"
        "\n(compare direct_40 vs direct_160, or 0_crypto vs secureMem) is"
        "\nlargely hidden by GPU latency tolerance — the paper's key insight."
    )


if __name__ == "__main__":
    main()
