#!/usr/bin/env python3
"""Quickstart: measure the cost of GPU secure memory on one workload.

Builds a scaled GPU (paper Table I ratios), runs the `fdtd2d` proxy on the
insecure baseline and on counter-mode + MAC + Bonsai-Merkle-Tree secure
memory, and prints what the paper's Figures 3 and 4 would show for it.

Run:  python examples/quickstart.py [benchmark-name]
"""

import sys

from repro import (
    EncryptionMode,
    GpuConfig,
    IntegrityMode,
    MetadataKind,
    SecureMemoryConfig,
    get_benchmark,
    simulate,
)

HORIZON = 10_000
WARMUP = 30_000


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fdtd2d"
    workload = get_benchmark(name)

    baseline_gpu = GpuConfig.scaled(num_partitions=4)
    secure_gpu = GpuConfig.scaled(
        num_partitions=4,
        secure=SecureMemoryConfig(
            encryption=EncryptionMode.COUNTER,
            integrity=IntegrityMode.MAC_TREE,
        ).with_metadata_mshrs(64),
    )

    print(f"workload: {name}  (category: {workload.category})")
    print(f"GPU: {baseline_gpu.num_sms} SMs, {baseline_gpu.num_partitions} partitions, "
          f"{baseline_gpu.total_bandwidth_gbps:.0f} GB/s\n")

    base = simulate(baseline_gpu, workload, horizon=HORIZON, warmup=WARMUP)
    secure = simulate(secure_gpu, workload, horizon=HORIZON, warmup=WARMUP)

    print(f"baseline IPC:        {base.ipc:8.1f}  "
          f"(bandwidth {base.bandwidth_utilization:5.1%}, "
          f"L2 miss {base.l2_miss_rate:5.1%})")
    print(f"secure-memory IPC:   {secure.ipc:8.1f}  "
          f"(bandwidth {secure.bandwidth_utilization:5.1%})")
    print(f"normalized IPC:      {secure.ipc / base.ipc:8.3f}  "
          f"(slowdown {1 - secure.ipc / base.ipc:5.1%})\n")

    print("DRAM traffic breakdown under secure memory (Fig. 4 view):")
    for category, share in secure.traffic_fractions().items():
        print(f"  {category:5s} {share:6.1%}")

    print("\nmetadata cache behaviour:")
    for kind in MetadataKind:
        stats = secure.metadata[kind]
        if not stats["accesses"]:
            continue
        print(
            f"  {kind.value:4s} miss rate {secure.metadata_miss_rate(kind):6.1%}, "
            f"secondary-miss share {secure.secondary_miss_ratio(kind):6.1%}"
        )


if __name__ == "__main__":
    main()
