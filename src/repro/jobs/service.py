"""``repro serve``: the sweep service's stdlib HTTP/JSON front end.

Turns sweeps from CLI invocations into **concurrent requests**: a
long-lived :class:`SweepService` owns one shared job store, clients
submit sweeps and poll progress over HTTP, and any number of workers
(embedded or external ``repro worker`` processes, on this host or
another sharing the filesystem) drain the queue.  stdlib only —
:mod:`http.server` with a threading server, no frameworks.

API (all JSON unless noted)::

    GET  /healthz                 liveness + store counts
    GET  /sweeps                  every sweep with live progress
    POST /sweeps                  submit: {"design": "secureMem_mshr64",
                                           "workloads": ["bfs", ...],   # default: all
                                           "partitions": 4,
                                           "horizon": 10000, "warmup": 30000,
                                           "designs": [...],            # alternative: several
                                           "label": "...",
                                           "max_attempts": 3}
                                  -> 201 {"sweep_id": ..., "total": N, ...}
    GET  /sweeps/<id>             progress: counts, rate, ETA, failures
    GET  /sweeps/<id>/results     terminal rows incl. result payloads
    GET  /sweeps/<id>/events      long-poll: terminal events after
         ?since=TS&timeout=S      ``since``; returns early when any land
    GET  /sweeps/<id>/dashboard   the PR-5 self-contained HTML report
                                  (text/html), synthesized from store rows
    GET  /sweeps/<id>/spans       the sweep's distributed-trace span
                                  records (submit/claim/execute/simulate)
    GET  /metrics                 Prometheus text exposition (text/plain):
                                  service HTTP series, store counters,
                                  queue-depth gauges, and every worker's
                                  persisted snapshot labeled worker="id"

Expired leases are reclaimed two ways: progress queries sweep them
inline (so a dead worker's points become claimable the next time anyone
looks), and a background **reaper thread** runs :meth:`requeue_expired`
every ``reaper_interval_s`` (default: half the worker lease) so
abandoned leases requeue even when nobody is polling.

The service keeps a live :class:`~repro.obsv.metrics.MetricsRegistry`
shared with its store, so request counts/latency and service-side store
ops are always on.  Workers are separate processes — their registries
arrive through the store's ``workers`` table (persisted on the lease
heartbeat path) and are re-rendered here with a ``worker`` label, which
is what makes ``GET /metrics`` a *fleet* view rather than one process's.

Every request is also a **trace participant**: the handler opens a
request span, ``POST /sweeps`` mints the sweep's trace and stamps its
request span as the root (persisted to the store's ``spans`` table, so
worker and runner spans hang beneath it), and the opt-in access log
(``--access-log``) rides the structured JSONL logger — one record per
request with ts, method, path, status, duration_ms and, where known,
trace_id/span_id — with max-size rollover for long-running serves.

The service is an *observer and broker*, never a simulator: submission
validates designs/workloads against the same registries the CLI uses
and stores rows; execution happens wherever workers run.  CLI sweeps
(``repro sweep --store``) and HTTP sweeps are rows in the same table —
one execution path, provably (tests assert bit-identical results).
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import List, Optional, Tuple
from urllib.parse import parse_qs

import repro
from repro.experiments.designs import DESIGNS
from repro.experiments.runner import result_from_dict
from repro.jobs.store import SQLiteJobStore, iter_points
from repro.obsv.logging import DEFAULT_MAX_BYTES, NULL_LOG, StructuredLogger
from repro.obsv.metrics import MetricsRegistry, render_prometheus
from repro.obsv.spans import SPAN_SCHEMA, new_span_id, new_trace_id
from repro.workloads.suite import BENCHMARK_ORDER

#: default TCP port; "s" + "m" (secure memory) on a phone keypad.
DEFAULT_PORT = 8076

#: background lease-reaper cadence: half the default worker lease (30 s),
#: so an abandoned lease is back in the queue within one lease period
#: even when no client ever polls progress.
DEFAULT_REAPER_INTERVAL_S = 15.0

_SWEEP_PATH = re.compile(
    r"^/sweeps/([0-9a-f]{12})(/results|/dashboard|/events|/spans)?$"
)

#: long-poll defaults/caps for GET /sweeps/<id>/events.
EVENTS_DEFAULT_TIMEOUT_S = 25.0
EVENTS_MAX_TIMEOUT_S = 60.0
EVENTS_POLL_S = 0.2


# ---------------------------------------------------------------------------
# store rows -> observability inputs
# ---------------------------------------------------------------------------


def sweep_ledger_records(store: SQLiteJobStore, sweep_id: str) -> List[dict]:
    """PR-5 ledger-shaped point records synthesized from store rows.

    Lets the dashboard (and anything else ledger-driven) read a
    service-run sweep without the workers' ledger files being reachable
    from the service host.  Volatile fields follow the ledger's
    conventions; ``config`` is the worker-reported config digest, with
    the design name as a pre-execution fallback.
    """
    from repro.obsv.ledger import LEDGER_SCHEMA, key_stats

    progress = store.progress(sweep_id)
    records: List[dict] = []
    for row in store.results(sweep_id):
        if row["status"] not in ("done", "failed"):
            continue
        stats = None
        if row["result"] is not None:
            stats = key_stats(result_from_dict(row["result"]))
        records.append(
            {
                "schema": LEDGER_SCHEMA,
                "event": "point",
                "ts": row["done_ts"],
                "workload": row["workload"],
                "config": row["config_digest"] or row["spec"].get("design", "?"),
                "horizon": progress["horizon"],
                "warmup": progress["warmup"],
                "outcome": row["outcome"] or "failed",
                "duration_s": row["duration_s"],
                "stats": stats,
                "telemetry_dir": None,
                "error": row["error"],
            }
        )
    return records


def sweep_heartbeat_lines(store: SQLiteJobStore, sweep_id: str) -> List[dict]:
    """Heartbeat-JSONL-shaped progress lines from store timestamps."""
    progress = store.progress(sweep_id)
    total = progress["total"]
    started = progress["created_ts"]
    lines: List[dict] = [{"event": "start", "ts": started, "total": total}]
    done_ts = sorted(
        row["done_ts"]
        for row in store.results(sweep_id)
        if row["status"] == "done" and row["done_ts"] is not None
    )
    for done, ts in enumerate(done_ts, start=1):
        elapsed = max(ts - started, 1e-9)
        rate = done / elapsed
        remaining = total - done
        lines.append(
            {
                "ts": ts,
                "done": done,
                "total": total,
                "elapsed_s": round(elapsed, 3),
                "points_per_s": round(rate, 3),
                "eta_s": round(remaining / rate, 3) if rate > 0 else None,
            }
        )
    if progress["status"] in ("done", "failed"):
        failures = len(progress["failures"])
        lines.append(
            {
                "event": "done",
                "ts": progress["last_done_ts"] or time.time(),
                "done": total - failures,
                "total": total,
                "elapsed_s": progress["elapsed_s"],
                "points_per_s": progress["points_per_s"],
                "status": "failed" if failures else "ok",
                "failures": failures,
            }
        )
    return lines


def validate_submission(body: dict) -> Tuple[List[Tuple[str, dict]], dict]:
    """Parse/validate a POST /sweeps body into submit_sweep arguments.

    Raises :class:`ValueError` with a client-presentable message.
    """
    if not isinstance(body, dict):
        raise ValueError("body must be a JSON object")
    designs = body.get("designs")
    if designs is None:
        designs = [body.get("design", "secureMem_mshr64")]
    if not isinstance(designs, list) or not designs:
        raise ValueError("'designs' must be a non-empty list of design names")
    unknown = [d for d in designs if d not in DESIGNS]
    if unknown:
        raise ValueError(
            f"unknown design(s) {unknown}; known: {', '.join(sorted(DESIGNS))}"
        )
    workloads = body.get("workloads", list(BENCHMARK_ORDER))
    if not isinstance(workloads, list) or not workloads:
        raise ValueError("'workloads' must be a non-empty list of benchmark names")
    bad = [w for w in workloads if w not in BENCHMARK_ORDER]
    if bad:
        raise ValueError(
            f"unknown workload(s) {bad}; known: {', '.join(BENCHMARK_ORDER)}"
        )
    try:
        partitions = int(body.get("partitions", 4))
        horizon = float(body.get("horizon", 10_000))
        warmup = float(body.get("warmup", 30_000))
        max_attempts = int(body.get("max_attempts", 3))
    except (TypeError, ValueError):
        raise ValueError(
            "'partitions'/'horizon'/'warmup'/'max_attempts' must be numbers"
        ) from None
    if partitions < 1 or horizon <= 0 or warmup < 0 or max_attempts < 1:
        raise ValueError("scale parameters out of range")
    points = iter_points(
        workloads, [{"design": d, "partitions": partitions} for d in designs]
    )
    options = {
        "horizon": horizon,
        "warmup": warmup,
        "label": body.get("label"),
        "max_attempts": max_attempts,
    }
    return points, options


# ---------------------------------------------------------------------------
# the HTTP server
# ---------------------------------------------------------------------------


class SweepService(ThreadingHTTPServer):
    """A threading HTTP server owning one shared job store.

    ``port=0`` binds an ephemeral port (tests, parallel CI jobs); the
    bound address is ``self.server_address``.  The store is internally
    locked, so request-handler threads share it safely.
    """

    daemon_threads = True

    def __init__(
        self,
        store_path: str | Path,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        quiet: bool = True,
        access_log: Optional[str | Path] = None,
        access_log_max_bytes: int = DEFAULT_MAX_BYTES,
        reaper_interval_s: Optional[float] = DEFAULT_REAPER_INTERVAL_S,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.store = SQLiteJobStore(store_path, metrics=self.metrics)
        self.store_path = Path(store_path)
        self.quiet = quiet
        self.access_log_path = Path(access_log) if access_log else None
        self.access_log = (
            StructuredLogger(self.access_log_path, max_bytes=access_log_max_bytes)
            if self.access_log_path is not None
            else NULL_LOG
        )
        self.m_requests = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method/endpoint/status",
            labels=("method", "endpoint", "status"),
        )
        self.m_request_us = self.metrics.histogram(
            "repro_http_request_duration_us",
            "HTTP request wall time in microseconds, by endpoint",
            labels=("endpoint",),
        )
        self.m_reaper_passes = self.metrics.counter(
            "repro_reaper_passes_total",
            "Background lease-reaper sweeps completed",
        )
        super().__init__((host, port), _Handler)
        self._reaper_stop = threading.Event()
        self._reaper_thread: Optional[threading.Thread] = None
        if reaper_interval_s is not None and reaper_interval_s > 0:
            self._reaper_thread = threading.Thread(
                target=self._reaper_loop,
                args=(float(reaper_interval_s),),
                daemon=True,
                name="sweep-reaper",
            )
            self._reaper_thread.start()

    def log_access(self, record: dict) -> None:
        """Append one structured access record, best-effort (opt-in)."""
        self.access_log.log("http.request", **record)

    def _reaper_loop(self, interval_s: float) -> None:
        """Requeue expired leases on a fixed cadence, poller or not."""
        while not self._reaper_stop.wait(interval_s):
            try:
                requeued, poisoned = self.store.requeue_expired()
            except Exception:  # noqa: BLE001 — a closing store must not raise
                return
            self.m_reaper_passes.inc()
            if requeued or poisoned:
                self.access_log.log(
                    "reaper.pass", requeued=requeued, poisoned=poisoned
                )

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def run_in_thread(self) -> threading.Thread:
        """serve_forever on a daemon thread (tests / embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def server_close(self) -> None:  # also stop the reaper, close the store
        self._reaper_stop.set()
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=5.0)
        super().server_close()
        self.store.close()


class _Handler(BaseHTTPRequestHandler):
    server: SweepService
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if not self.server.quiet:
            super().log_message(fmt, *args)

    def _endpoint_label(self) -> str:
        """A low-cardinality endpoint name for metric labels.

        Sweep ids are folded to ``{id}`` so one busy store cannot mint
        an unbounded label set.
        """
        path = self.path.partition("?")[0]
        if path in ("/", "/healthz"):
            return "/healthz"
        match = _SWEEP_PATH.match(path)
        if match:
            return "/sweeps/{id}" + (match.group(2) or "")
        if path in ("/sweeps", "/metrics"):
            return path
        return "other"

    def _instrumented(self, method: str, route) -> None:
        """Run one route with a request span, metrics + the access log.

        Every request gets a span id; routes that resolve a sweep set
        ``self._trace_id`` so the access-log line joins the sweep's
        trace, and ``POST /sweeps`` sets ``self._persist_span`` so its
        finished request span is stored as the trace root the worker
        and runner spans hang beneath.
        """
        server = self.server
        self._status = 0
        self._trace_id = None
        self._span_id = new_span_id()
        self._persist_span: Optional[str] = None  # sweep id to store under
        wall_ts = time.time()
        start = time.perf_counter()
        try:
            route()
        finally:
            duration_s = time.perf_counter() - start
            endpoint = self._endpoint_label()
            status = self._status or 0
            server.m_requests.labels(method, endpoint, str(status)).inc()
            server.m_request_us.labels(endpoint).observe(duration_s * 1e6)
            if self._persist_span and self._trace_id:
                try:
                    server.store.record_span(
                        self._persist_span,
                        {
                            "schema": SPAN_SCHEMA,
                            "event": "span",
                            "trace_id": self._trace_id,
                            "span_id": self._span_id,
                            "parent_id": None,
                            "name": "http.submit",
                            "component": "service",
                            "ts": wall_ts,
                            "duration_s": duration_s,
                            "status": "ok" if status < 400 else "error",
                            "attrs": {"method": method, "endpoint": endpoint,
                                      "http.status": status},
                            "events": [],
                        },
                    )
                except Exception:  # noqa: BLE001 — tracing is passive
                    pass
            server.log_access(
                {
                    "ts": round(time.time(), 3),
                    "method": method,
                    "path": self.path,
                    "status": status,
                    "duration_ms": round(duration_s * 1e3, 3),
                    "trace_id": self._trace_id,
                    "span_id": self._span_id,
                }
            )

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self._status = code
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, doc: dict) -> None:
        self._send(
            code,
            (json.dumps(doc, sort_keys=True) + "\n").encode(),
            "application/json",
        )

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body (expected JSON)")
        try:
            return json.loads(raw)
        except ValueError:
            raise ValueError("request body is not valid JSON") from None

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        self._instrumented("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._instrumented("POST", self._route_post)

    def _route_get(self) -> None:
        store = self.server.store
        path, _, query = self.path.partition("?")
        try:
            if path in ("/", "/healthz"):
                store.requeue_expired()
                self._json(
                    200,
                    {
                        "status": "ok",
                        "version": repro.__version__,
                        "store": str(self.server.store_path),
                        "counts": store.counts(),
                        "endpoints": [
                            "GET /healthz",
                            "GET /metrics",
                            "GET /sweeps",
                            "POST /sweeps",
                            "GET /sweeps/<id>",
                            "GET /sweeps/<id>/results",
                            "GET /sweeps/<id>/events?since=TS&timeout=S",
                            "GET /sweeps/<id>/dashboard",
                            "GET /sweeps/<id>/spans",
                        ],
                    },
                )
                return
            if path == "/sweeps":
                store.requeue_expired()
                self._json(200, {"sweeps": store.sweeps()})
                return
            if path == "/metrics":
                self._metrics()
                return
            match = _SWEEP_PATH.match(path)
            if match:
                sweep_id, tail = match.group(1), match.group(2)
                store.requeue_expired()
                try:
                    if tail == "/results":
                        self._json(200, {"results": store.results(sweep_id)})
                    elif tail == "/dashboard":
                        self._dashboard(sweep_id)
                    elif tail == "/events":
                        self._events(sweep_id, query)
                    elif tail == "/spans":
                        spans = store.spans(sweep_id)
                        progress = store.progress(sweep_id)
                        self._trace_id = progress.get("trace_id")
                        self._json(
                            200,
                            {
                                "sweep_id": sweep_id,
                                "trace_id": progress.get("trace_id"),
                                "root_span": progress.get("root_span"),
                                "spans": spans,
                            },
                        )
                    else:
                        progress = store.progress(sweep_id)
                        self._trace_id = progress.get("trace_id")
                        self._json(200, progress)
                except KeyError:
                    self._error(404, f"no such sweep: {sweep_id}")
                return
            self._error(404, f"no such endpoint: {path}")
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # noqa: BLE001 — a request must not kill the server
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _route_post(self) -> None:
        try:
            if self.path != "/sweeps":
                self._error(404, f"no such endpoint: POST {self.path}")
                return
            try:
                body = self._read_body()
                points, options = validate_submission(body)
            except ValueError as exc:
                self._error(400, str(exc))
                return
            # the request span is the trace root: jobs inherit it via
            # their traceparent, and _instrumented persists it once the
            # request's duration is known.
            self._trace_id = new_trace_id()
            sweep_id = self.server.store.submit_sweep(
                points,
                trace_id=self._trace_id,
                parent_span=self._span_id,
                **options,
            )
            self._persist_span = sweep_id
            self._json(
                201,
                {
                    "sweep_id": sweep_id,
                    "total": len(points),
                    "url": f"/sweeps/{sweep_id}",
                    "dashboard": f"/sweeps/{sweep_id}/dashboard",
                    "spans": f"/sweeps/{sweep_id}/spans",
                    "trace_id": self._trace_id,
                },
            )
        except BrokenPipeError:
            pass
        except Exception as exc:  # noqa: BLE001
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _metrics(self) -> None:
        """The fleet exposition: this process + store + every worker."""
        server = self.server
        store = server.store
        store.requeue_expired()
        fleet = store.workers_seen()
        # Point-in-time store gauges are derived per scrape rather than
        # carried as registry state — the store is the ground truth.
        derived = MetricsRegistry()
        jobs_gauge = derived.gauge(
            "repro_store_jobs", "Jobs in the store by status", labels=("status",)
        )
        for status, count in store.counts().items():
            jobs_gauge.labels(status).set(count)
        derived.gauge("repro_store_sweeps", "Sweeps submitted to the store").set(
            store.sweep_count()
        )
        derived.gauge("repro_fleet_workers", "Workers that ever joined this store").set(
            len(fleet)
        )
        age_gauge = derived.gauge(
            "repro_worker_last_seen_age_s",
            "Seconds since each worker's last snapshot",
            labels=("worker",),
        )
        for entry in fleet:
            age_gauge.labels(entry["worker"]).set(entry["age_s"])
        exposition = [(server.metrics.snapshot(), None), (derived.snapshot(), None)]
        for entry in fleet:
            if entry["metrics"]:
                exposition.append((entry["metrics"], {"worker": entry["worker"]}))
        body = render_prometheus(exposition)
        self._send(200, body.encode(), "text/plain; version=0.0.4; charset=utf-8")

    def _events(self, sweep_id: str, query: str) -> None:
        """Long-poll for terminal events newer than ``since``.

        Returns as soon as any job of the sweep reaches ``done``/
        ``failed`` with ``done_ts > since``, the sweep itself is
        terminal, or the (capped) timeout lapses — whichever is first.
        Result payloads are deliberately omitted; ``/results`` serves
        those.
        """
        params = parse_qs(query)

        def _param(name: str, default: float) -> float:
            try:
                return float(params[name][0])
            except (KeyError, IndexError, ValueError):
                return default

        since = _param("since", 0.0)
        timeout = min(
            max(_param("timeout", EVENTS_DEFAULT_TIMEOUT_S), 0.0),
            EVENTS_MAX_TIMEOUT_S,
        )
        store = self.server.store
        deadline = time.monotonic() + timeout
        while True:
            store.requeue_expired()
            progress = store.progress(sweep_id)  # KeyError -> 404 upstream
            events = [
                {
                    key: row[key]
                    for key in (
                        "seq", "workload", "spec", "status", "outcome",
                        "attempts", "worker", "duration_s", "done_ts",
                    )
                }
                for row in store.results(sweep_id)
                if row["done_ts"] is not None and row["done_ts"] > since
            ]
            if (
                events
                or progress["status"] != "running"
                or time.monotonic() >= deadline
            ):
                self._json(
                    200,
                    {
                        "now": time.time(),
                        "since": since,
                        "events": events,
                        "progress": progress,
                    },
                )
                return
            time.sleep(EVENTS_POLL_S)

    def _dashboard(self, sweep_id: str) -> None:
        from repro.obsv.dashboard import build_dashboard

        store = self.server.store
        progress = store.progress(sweep_id)  # KeyError -> 404 upstream
        self._trace_id = progress.get("trace_id")
        html_text = build_dashboard(
            title=f"Sweep {sweep_id}" + (f" — {progress['label']}" if progress["label"] else ""),
            ledger_records=sweep_ledger_records(store, sweep_id),
            heartbeat_lines=sweep_heartbeat_lines(store, sweep_id),
            fleet=store.workers_seen(),
            spans=store.spans(sweep_id),
            sources={"job store": str(self.server.store_path), "sweep": sweep_id},
        )
        self._send(200, html_text.encode(), "text/html; charset=utf-8")


def serve(
    store_path: str | Path,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    quiet: bool = True,
    access_log: Optional[str | Path] = None,
    access_log_max_bytes: int = DEFAULT_MAX_BYTES,
    reaper_interval_s: Optional[float] = DEFAULT_REAPER_INTERVAL_S,
) -> SweepService:
    """Construct (but don't start) the service; callers pick the loop."""
    return SweepService(
        store_path, host=host, port=port, quiet=quiet, access_log=access_log,
        access_log_max_bytes=access_log_max_bytes,
        reaper_interval_s=reaper_interval_s,
    )
