"""The sweep-service job subsystem: shared job store, workers, HTTP front end.

The experiment layer up to now was "one process owns one sweep": a
:class:`~repro.experiments.parallel.ParallelRunner` fans points over a
local process pool and nothing outside that process can join, resume, or
observe the sweep.  This package turns sweep points into **rows in a
shared job store** that any number of workers — across processes and
hosts sharing a filesystem — claim under a lease, execute through the
existing :class:`~repro.experiments.runner.Runner` stack, and report
back durably:

* :mod:`repro.jobs.store` — the :class:`JobStore` protocol and its
  SQLite implementation (WAL mode, atomic claims, lease deadlines,
  capped retries, schema versioning);
* :mod:`repro.jobs.worker` — the worker loop (`repro worker`): claim,
  simulate via ``Runner`` (warm state, sharded result cache, and run
  ledger all reused), heartbeat the lease, back off on transient
  failures, poison-fail a point after ``max_attempts``;
* :mod:`repro.jobs.service` — a stdlib-only HTTP/JSON front end
  (`repro serve`): submit sweeps, poll progress, long-poll terminal
  events, fetch results, the self-contained observability dashboard,
  and the fleet's Prometheus text exposition on ``GET /metrics``.

Live fleet visibility rides the store: every worker persists its
:mod:`repro.obsv.metrics` registry snapshot into the ``workers`` table
on its heartbeat path, so the service (and ``repro top``) can render
per-worker throughput for processes on other hosts.

Distributed tracing rides the store the same way: ``submit_sweep``
stamps every sweep with a trace id and every job row with a W3C-style
``traceparent``; workers parse it, wrap claim/execute in child spans,
hand the context to the runner for per-point spans, and persist every
finished span back through :meth:`SQLiteJobStore.record_span` — so
``repro spans`` (and the dashboard timeline) can render one correlated
timeline across the service, every worker host, and the simulator.

The simulator is deterministic, so a sweep drained by many workers is
bit-identical — statistics and canonical ledger records — to the same
points run serially; ``tests/test_jobs.py`` enforces this, including
across a worker crash mid-point.
"""

from repro.jobs.store import (
    JOB_SCHEMA,
    Job,
    JobStore,
    SQLiteJobStore,
    open_store,
    span_sink,
)
from repro.jobs.worker import Worker, backoff_jitter, run_workers
from repro.jobs.service import SweepService, serve

__all__ = [
    "JOB_SCHEMA",
    "Job",
    "JobStore",
    "SQLiteJobStore",
    "SweepService",
    "Worker",
    "backoff_jitter",
    "open_store",
    "run_workers",
    "serve",
    "span_sink",
]
