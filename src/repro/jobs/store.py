"""The shared job store: sweep points as claimable rows.

A *sweep* is a batch of independent ``(workload, spec)`` simulation
points submitted together; a *job* is one such point.  Jobs move through
a small, explicit state machine::

    pending ──claim──▶ running ──report(ok)───▶ done
       ▲                  │
       │                  ├─report(fail), attempts < max ──▶ pending
       │                  │      (with a not-before backoff stamp)
       └──lease expired───┘
                          └─report(fail), attempts == max ─▶ failed
                            (lease expiry at max attempts also fails)

Claims are **leases**: a claim stamps the worker id and a lease deadline
onto the row, the worker heartbeats the deadline forward while it
simulates, and :meth:`JobStore.requeue_expired` returns rows whose
deadline passed to ``pending`` — so a worker killed mid-point loses the
claim, not the point.  A row that keeps expiring or failing is poisoned
after ``max_attempts`` claims and marked ``failed`` so one bad config
can never wedge a sweep.

:class:`SQLiteJobStore` is the shipped implementation: one SQLite file
in WAL mode shared by every worker and the HTTP service.  The claim is
atomic without any out-of-band locking — a candidate row is selected,
then taken with ``UPDATE ... WHERE id=? AND status='pending'``; losing a
race just means ``rowcount == 0`` and another candidate.  The schema is
versioned through ``PRAGMA user_version`` (the same discipline as the
run ledger's ``schema`` field).

The class is deliberately a thin mapping onto the DB-API: every
statement is a class-level template using ``qmark`` placeholders, and a
different DB-API backend (PostgreSQL, MySQL, ...) can subclass and
override :meth:`SQLiteJobStore._connect` plus the templates — nothing
else in the subsystem knows it is talking to SQLite.
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.obsv.metrics import NULL_METRICS, snapshot_to_json
from repro.obsv.spans import SPAN_SCHEMA, format_traceparent, new_span_id, new_trace_id

#: bump when the jobs/sweeps/workers table layout changes incompatibly.
#: v2 added the ``workers`` table (live worker metric snapshots); v3
#: added trace columns (``sweeps.trace_id``/``root_span``,
#: ``jobs.traceparent``) and the ``spans`` table.  Both upgrades are
#: additive, so old stores open seamlessly.
JOB_SCHEMA = 3

#: the states a job row can be in.
STATUSES = ("pending", "running", "done", "failed")

#: default claims (initial + retries) before a point is poison-failed.
DEFAULT_MAX_ATTEMPTS = 3


def _no_timer() -> None:
    """Timer stand-in when metrics are disabled."""


_NO_TIMER = _no_timer


@dataclasses.dataclass
class Job:
    """One claimed sweep point, as handed to a worker."""

    id: int
    sweep_id: str
    seq: int
    workload: str
    spec: dict
    horizon: float
    warmup: float
    attempts: int
    max_attempts: int
    lease_deadline: float
    #: W3C-style trace context inherited from the submit request, so a
    #: worker on another host can hang its spans under the same trace.
    traceparent: Optional[str] = None


class JobStore(Protocol):
    """What the worker loop and the HTTP service need from a backend.

    Implementations must make :meth:`claim` atomic across concurrent
    workers (two workers can never hold the same job), and
    :meth:`report` must be a no-op returning ``False`` when the caller
    no longer owns the row (its lease expired and someone else claimed
    it) so a slow worker cannot clobber a re-run's result.
    """

    def submit_sweep(
        self,
        points: Sequence[Tuple[str, dict]],
        horizon: float,
        warmup: float,
        label: Optional[str] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
    ) -> str: ...

    def claim(self, worker_id: str, lease_s: float) -> Optional[Job]: ...

    def heartbeat(self, job_id: int, worker_id: str, lease_s: float) -> bool: ...

    def report(
        self,
        job_id: int,
        worker_id: str,
        outcome: str,
        result: Optional[dict] = None,
        error: Optional[str] = None,
        duration_s: Optional[float] = None,
        config_digest: Optional[str] = None,
        retry_in_s: float = 0.0,
    ) -> bool: ...

    def requeue_expired(self) -> Tuple[int, int]: ...

    def progress(self, sweep_id: str) -> dict: ...

    def counts(self) -> Dict[str, int]: ...

    def sweeps(self) -> List[dict]: ...

    def results(self, sweep_id: str) -> List[dict]: ...

    def record_worker(
        self, worker_id: str, snapshot: dict, started_ts: Optional[float] = None
    ) -> None: ...

    def workers_seen(self, max_age_s: Optional[float] = None) -> List[dict]: ...

    def record_span(self, sweep_id: str, record: dict) -> None: ...

    def spans(self, sweep_id: str) -> List[dict]: ...

    def close(self) -> None: ...


class SQLiteJobStore:
    """One SQLite file (WAL mode) shared by workers and the service.

    Connections are per-instance; each worker process/thread opens its
    own instance against the same path.  Within an instance a reentrant
    lock serializes statement execution so the HTTP service can share
    one store across request-handler threads.
    """

    _CREATE = (
        """CREATE TABLE IF NOT EXISTS sweeps (
            id TEXT PRIMARY KEY,
            created_ts REAL NOT NULL,
            horizon REAL NOT NULL,
            warmup REAL NOT NULL,
            total INTEGER NOT NULL,
            label TEXT,
            trace_id TEXT,
            root_span TEXT
        )""",
        """CREATE TABLE IF NOT EXISTS jobs (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            sweep_id TEXT NOT NULL REFERENCES sweeps(id),
            seq INTEGER NOT NULL,
            workload TEXT NOT NULL,
            spec TEXT NOT NULL,
            status TEXT NOT NULL DEFAULT 'pending',
            attempts INTEGER NOT NULL DEFAULT 0,
            max_attempts INTEGER NOT NULL DEFAULT 3,
            not_before REAL NOT NULL DEFAULT 0,
            worker TEXT,
            lease_deadline REAL,
            claimed_ts REAL,
            done_ts REAL,
            duration_s REAL,
            outcome TEXT,
            config_digest TEXT,
            result TEXT,
            error TEXT,
            traceparent TEXT
        )""",
        "CREATE INDEX IF NOT EXISTS jobs_claim ON jobs(status, not_before, sweep_id, seq)",
        "CREATE INDEX IF NOT EXISTS jobs_sweep ON jobs(sweep_id, seq)",
        """CREATE TABLE IF NOT EXISTS workers (
            id TEXT PRIMARY KEY,
            started_ts REAL NOT NULL,
            updated_ts REAL NOT NULL,
            metrics TEXT
        )""",
        """CREATE TABLE IF NOT EXISTS spans (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            sweep_id TEXT NOT NULL,
            trace_id TEXT,
            span_id TEXT,
            parent_id TEXT,
            name TEXT NOT NULL,
            component TEXT,
            ts REAL,
            duration_s REAL,
            status TEXT,
            attrs TEXT,
            events TEXT
        )""",
        "CREATE INDEX IF NOT EXISTS spans_sweep ON spans(sweep_id, ts)",
    )

    #: columns added by additive schema bumps: table -> (column, DDL type).
    _UPGRADE_COLUMNS = (
        ("sweeps", "trace_id", "TEXT"),
        ("sweeps", "root_span", "TEXT"),
        ("jobs", "traceparent", "TEXT"),
    )

    def __init__(
        self, path: str | Path, timeout_s: float = 30.0, metrics=NULL_METRICS
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = self._connect(timeout_s)
        self._init_schema()
        self.metrics = metrics
        self._m_claims = metrics.counter(
            "repro_store_claims_total", "Jobs atomically claimed from the store"
        )
        self._m_reports = metrics.counter(
            "repro_store_reports_total",
            "Attempt outcomes reported to the store",
            labels=("outcome",),
        )
        self._m_requeued = metrics.counter(
            "repro_store_requeued_total", "Expired leases returned to pending"
        )
        self._m_poisoned = metrics.counter(
            "repro_store_poisoned_total",
            "Jobs poison-failed after exhausting their attempt budget",
        )
        self._m_op_us = metrics.histogram(
            "repro_store_op_us",
            "Store operation latency in microseconds",
            labels=("op",),
        )
        self._m_spans = metrics.counter(
            "repro_store_spans_total",
            "Distributed-trace spans persisted to the store",
        )

    def _timed(self, op: str):
        """Start an op-latency measurement; call the result to record it."""
        if not self.metrics.enabled:
            return _NO_TIMER
        start = time.perf_counter()
        return lambda: self._m_op_us.labels(op).observe(
            (time.perf_counter() - start) * 1e6
        )

    def _connect(self, timeout_s: float) -> sqlite3.Connection:
        """Open the backend connection (override for another DB-API)."""
        conn = sqlite3.connect(
            str(self.path),
            timeout=timeout_s,
            isolation_level=None,  # autocommit; explicit BEGIN where needed
            check_same_thread=False,  # guarded by self._lock
        )
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    def _init_schema(self) -> None:
        with self._lock:
            version = self._conn.execute("PRAGMA user_version").fetchone()[0]
            if version > JOB_SCHEMA:
                raise RuntimeError(
                    f"job store {self.path} has schema v{version}, "
                    f"this build understands v{JOB_SCHEMA} — upgrade repro"
                )
            for statement in self._CREATE:
                self._conn.execute(statement)
            if version and version < JOB_SCHEMA:
                # additive upgrade: CREATE IF NOT EXISTS left pre-bump
                # tables untouched, so bolt on any column they miss.
                for table, column, ddl_type in self._UPGRADE_COLUMNS:
                    present = {
                        row[1]
                        for row in self._conn.execute(
                            f"PRAGMA table_info({table})"
                        )
                    }
                    if column not in present:
                        self._conn.execute(
                            f"ALTER TABLE {table} ADD COLUMN {column} {ddl_type}"
                        )
            if version < JOB_SCHEMA:
                self._conn.execute(f"PRAGMA user_version={JOB_SCHEMA}")

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "SQLiteJobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission -----------------------------------------------------

    def submit_sweep(
        self,
        points: Sequence[Tuple[str, dict]],
        horizon: float,
        warmup: float,
        label: Optional[str] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
    ) -> str:
        """Insert one sweep and one pending job per point; returns its id.

        *points* is a sequence of ``(workload, spec)`` where *spec* is a
        JSON-serializable description the worker can rebuild the exact
        :class:`~repro.common.config.GpuConfig` from — today
        ``{"design": <named design>, "partitions": N}``.

        Every sweep gets trace context: *trace_id*/*parent_span* come
        from the submitter's request span (the service stamps its HTTP
        span here) or are minted fresh, and each job row carries the
        resulting traceparent so workers join the same trace.
        """
        points = list(points)
        if not points:
            raise ValueError("a sweep needs at least one point")
        sweep_id = uuid.uuid4().hex[:12]
        trace_id = trace_id or new_trace_id()
        root_span = parent_span or new_span_id()
        traceparent = format_traceparent(trace_id, root_span)
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT INTO sweeps (id, created_ts, horizon, warmup, total,"
                    " label, trace_id, root_span) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (sweep_id, now, horizon, warmup, len(points), label,
                     trace_id, root_span),
                )
                self._conn.executemany(
                    "INSERT INTO jobs (sweep_id, seq, workload, spec, max_attempts,"
                    " traceparent) VALUES (?, ?, ?, ?, ?, ?)",
                    [
                        (sweep_id, seq, workload, json.dumps(spec, sort_keys=True),
                         max(1, int(max_attempts)), traceparent)
                        for seq, (workload, spec) in enumerate(points)
                    ],
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return sweep_id

    # -- the worker side ------------------------------------------------

    def claim(self, worker_id: str, lease_s: float) -> Optional[Job]:
        """Atomically take the oldest eligible pending job, or ``None``.

        The take is race-free without table locks: the ``UPDATE`` re-checks
        ``status='pending'``, so of N workers selecting the same candidate
        exactly one sees ``rowcount == 1``; the rest move to the next row.
        """
        now = time.time()
        done = self._timed("claim")
        with self._lock:
            while True:
                row = self._conn.execute(
                    "SELECT id FROM jobs WHERE status='pending' AND not_before<=?"
                    " ORDER BY sweep_id, seq LIMIT 1",
                    (now,),
                ).fetchone()
                if row is None:
                    done()
                    return None
                taken = self._conn.execute(
                    "UPDATE jobs SET status='running', worker=?, lease_deadline=?,"
                    " attempts=attempts+1, claimed_ts=? WHERE id=? AND status='pending'",
                    (worker_id, now + lease_s, now, row["id"]),
                )
                if taken.rowcount == 1:
                    job = self._job(row["id"])
                    done()
                    self._m_claims.inc()
                    return job

    def _job(self, job_id: int) -> Job:
        row = self._conn.execute(
            "SELECT j.id, j.sweep_id, j.seq, j.workload, j.spec, j.attempts,"
            " j.max_attempts, j.lease_deadline, j.traceparent, s.horizon, s.warmup"
            " FROM jobs j JOIN sweeps s ON s.id = j.sweep_id WHERE j.id=?",
            (job_id,),
        ).fetchone()
        return Job(
            id=row["id"],
            sweep_id=row["sweep_id"],
            seq=row["seq"],
            workload=row["workload"],
            spec=json.loads(row["spec"]),
            horizon=row["horizon"],
            warmup=row["warmup"],
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            lease_deadline=row["lease_deadline"],
            traceparent=row["traceparent"],
        )

    def heartbeat(self, job_id: int, worker_id: str, lease_s: float) -> bool:
        """Extend a running job's lease; False when the claim was lost."""
        done = self._timed("heartbeat")
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET lease_deadline=? WHERE id=? AND worker=?"
                " AND status='running'",
                (time.time() + lease_s, job_id, worker_id),
            )
            done()
            return cur.rowcount == 1

    def report(
        self,
        job_id: int,
        worker_id: str,
        outcome: str,
        result: Optional[dict] = None,
        error: Optional[str] = None,
        duration_s: Optional[float] = None,
        config_digest: Optional[str] = None,
        retry_in_s: float = 0.0,
    ) -> bool:
        """Record one attempt's outcome; False when the claim was lost.

        ``outcome`` is ``simulated``/``cached`` (job becomes ``done``) or
        ``failed``.  A failure below the attempt budget returns the row to
        ``pending`` with ``not_before = now + retry_in_s`` (the worker's
        capped backoff); at the budget it is poison-failed for good.
        """
        now = time.time()
        done = self._timed("report")
        with self._lock:
            if outcome != "failed":
                cur = self._conn.execute(
                    "UPDATE jobs SET status='done', outcome=?, result=?, error=NULL,"
                    " done_ts=?, duration_s=?, config_digest=?, lease_deadline=NULL"
                    " WHERE id=? AND worker=? AND status='running'",
                    (
                        outcome,
                        json.dumps(result) if result is not None else None,
                        now,
                        duration_s,
                        config_digest,
                        job_id,
                        worker_id,
                    ),
                )
            else:
                # a failed attempt: retry with backoff, or poison at the budget.
                cur = self._conn.execute(
                    "UPDATE jobs SET status=CASE WHEN attempts >= max_attempts"
                    "   THEN 'failed' ELSE 'pending' END,"
                    " outcome=CASE WHEN attempts >= max_attempts THEN 'failed' END,"
                    " done_ts=CASE WHEN attempts >= max_attempts THEN ? END,"
                    " not_before=?, worker=NULL, lease_deadline=NULL, error=?,"
                    " duration_s=?, config_digest=?"
                    " WHERE id=? AND worker=? AND status='running'",
                    (now, now + max(0.0, retry_in_s), error, duration_s,
                     config_digest, job_id, worker_id),
                )
            accepted = cur.rowcount == 1
            poisoned = False
            if accepted and outcome == "failed" and self.metrics.enabled:
                poisoned = (
                    self._conn.execute(
                        "SELECT status FROM jobs WHERE id=?", (job_id,)
                    ).fetchone()["status"]
                    == "failed"
                )
            done()
        if accepted:
            self._m_reports.labels(outcome).inc()
            if poisoned:
                self._m_poisoned.inc()
        return accepted

    def requeue_expired(self) -> Tuple[int, int]:
        """Return lapsed leases to ``pending``; poison-fail exhausted ones.

        Returns ``(requeued, poisoned)``.  Safe (and cheap) to call from
        every worker iteration and every service progress query.
        """
        now = time.time()
        done = self._timed("requeue_expired")
        with self._lock:
            requeued = self._conn.execute(
                "UPDATE jobs SET status='pending', worker=NULL, lease_deadline=NULL,"
                " error='lease expired (worker died?)'"
                " WHERE status='running' AND lease_deadline<? AND attempts<max_attempts",
                (now,),
            ).rowcount
            poisoned = self._conn.execute(
                "UPDATE jobs SET status='failed', outcome='failed', worker=NULL,"
                " lease_deadline=NULL, done_ts=?,"
                " error='lease expired after max attempts (worker died?)'"
                " WHERE status='running' AND lease_deadline<?",
                (now, now),
            ).rowcount
            done()
        if requeued:
            self._m_requeued.inc(requeued)
        if poisoned:
            self._m_poisoned.inc(poisoned)
        return requeued, poisoned

    # -- observation ----------------------------------------------------

    def counts(self, sweep_id: Optional[str] = None) -> Dict[str, int]:
        """Job counts by status (whole store, or one sweep)."""
        sql = "SELECT status, COUNT(*) AS n FROM jobs"
        args: Tuple = ()
        if sweep_id is not None:
            sql += " WHERE sweep_id=?"
            args = (sweep_id,)
        sql += " GROUP BY status"
        with self._lock:
            rows = self._conn.execute(sql, args).fetchall()
        out = {status: 0 for status in STATUSES}
        for row in rows:
            out[row["status"]] = row["n"]
        return out

    def progress(self, sweep_id: str) -> dict:
        """One sweep's live progress: counts, rate, ETA, failures.

        Raises :class:`KeyError` for an unknown sweep id.
        """
        with self._lock:
            sweep = self._conn.execute(
                "SELECT * FROM sweeps WHERE id=?", (sweep_id,)
            ).fetchone()
            if sweep is None:
                raise KeyError(sweep_id)
            counts = self.counts(sweep_id)
            done_ts = [
                row["done_ts"]
                for row in self._conn.execute(
                    "SELECT done_ts FROM jobs WHERE sweep_id=? AND done_ts IS NOT NULL",
                    (sweep_id,),
                )
            ]
            failures = [
                {
                    "workload": row["workload"],
                    "spec": json.loads(row["spec"]),
                    "attempts": row["attempts"],
                    "error": row["error"],
                }
                for row in self._conn.execute(
                    "SELECT workload, spec, attempts, error FROM jobs"
                    " WHERE sweep_id=? AND status='failed' ORDER BY seq",
                    (sweep_id,),
                )
            ]
            workers = [
                row["worker"]
                for row in self._conn.execute(
                    "SELECT DISTINCT worker FROM jobs WHERE sweep_id=?"
                    " AND worker IS NOT NULL ORDER BY worker",
                    (sweep_id,),
                )
            ]
        total = sweep["total"]
        terminal = counts["done"] + counts["failed"]
        now = time.time()
        # Rate and ETA must degrade to explicit nulls, never division
        # artifacts: a cross-host clock ahead of ours makes created_ts
        # sit in the future (elapsed clamps to 0, not to an epsilon that
        # would fabricate a ~1e9 points/s rate), zero completed points
        # means no rate basis at all, and an all-failed sweep has no
        # remaining work an ETA could describe.
        elapsed = max(now - sweep["created_ts"], 0.0)
        rate = counts["done"] / elapsed if counts["done"] and elapsed > 0 else 0.0
        remaining = total - terminal
        eta = remaining / rate if rate > 0 and remaining > 0 else None
        status = "running"
        if terminal == total:
            status = "failed" if counts["failed"] else "done"
        keys = sweep.keys()
        return {
            "sweep_id": sweep_id,
            "label": sweep["label"],
            "trace_id": sweep["trace_id"] if "trace_id" in keys else None,
            "root_span": sweep["root_span"] if "root_span" in keys else None,
            "created_ts": sweep["created_ts"],
            "horizon": sweep["horizon"],
            "warmup": sweep["warmup"],
            "total": total,
            "counts": counts,
            "status": status,
            "elapsed_s": round(elapsed, 3),
            "points_per_s": round(rate, 4),
            "eta_s": round(eta, 3) if eta is not None else None,
            "last_done_ts": max(done_ts) if done_ts else None,
            "workers": workers,
            "failures": failures,
        }

    def record_worker(
        self, worker_id: str, snapshot: dict, started_ts: Optional[float] = None
    ) -> None:
        """Upsert one worker's metrics snapshot (the live-fleet feed).

        Workers call this from their heartbeat path, so the service — a
        different process, possibly a different host — can aggregate
        every worker's counters into ``GET /metrics`` and the dashboard
        fleet section without sharing memory with any of them.
        """
        now = time.time()
        payload = snapshot_to_json(snapshot)
        done = self._timed("record_worker")
        with self._lock:
            cur = self._conn.execute(
                "UPDATE workers SET updated_ts=?, metrics=? WHERE id=?",
                (now, payload, worker_id),
            )
            if cur.rowcount == 0:
                # UPDATE-then-INSERT instead of SQLite's UPSERT syntax so
                # the statement set stays portable across DB-API backends.
                self._conn.execute(
                    "INSERT INTO workers (id, started_ts, updated_ts, metrics)"
                    " VALUES (?, ?, ?, ?)",
                    (worker_id, started_ts if started_ts is not None else now,
                     now, payload),
                )
            done()

    def workers_seen(self, max_age_s: Optional[float] = None) -> List[dict]:
        """Known workers with their last snapshot, most recent first.

        *max_age_s* filters out workers whose last snapshot is older —
        the live-fleet views use this to drop long-gone processes.
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, started_ts, updated_ts, metrics FROM workers"
                " ORDER BY updated_ts DESC, id"
            ).fetchall()
        out = []
        for row in rows:
            age_s = max(now - row["updated_ts"], 0.0)
            if max_age_s is not None and age_s > max_age_s:
                continue
            try:
                snapshot = json.loads(row["metrics"]) if row["metrics"] else None
            except ValueError:
                snapshot = None
            out.append(
                {
                    "worker": row["id"],
                    "started_ts": row["started_ts"],
                    "updated_ts": row["updated_ts"],
                    "age_s": round(age_s, 3),
                    "uptime_s": round(max(row["updated_ts"] - row["started_ts"], 0.0), 3),
                    "metrics": snapshot,
                }
            )
        return out

    def sweep_count(self) -> int:
        """How many sweeps the store holds (cheap, for gauges)."""
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM sweeps").fetchone()[0]

    def sweeps(self) -> List[dict]:
        """Every sweep in submission order, with its progress summary."""
        with self._lock:
            ids = [
                row["id"]
                for row in self._conn.execute(
                    "SELECT id FROM sweeps ORDER BY created_ts, id"
                )
            ]
        return [self.progress(sweep_id) for sweep_id in ids]

    def results(self, sweep_id: str) -> List[dict]:
        """Terminal rows of one sweep, in submission (seq) order."""
        with self._lock:
            if (
                self._conn.execute(
                    "SELECT 1 FROM sweeps WHERE id=?", (sweep_id,)
                ).fetchone()
                is None
            ):
                raise KeyError(sweep_id)
            rows = self._conn.execute(
                "SELECT seq, workload, spec, status, outcome, attempts, worker,"
                " duration_s, done_ts, config_digest, result, error, traceparent"
                " FROM jobs WHERE sweep_id=? ORDER BY seq",
                (sweep_id,),
            ).fetchall()
        out = []
        for row in rows:
            out.append(
                {
                    "seq": row["seq"],
                    "traceparent": row["traceparent"],
                    "workload": row["workload"],
                    "spec": json.loads(row["spec"]),
                    "status": row["status"],
                    "outcome": row["outcome"],
                    "attempts": row["attempts"],
                    "worker": row["worker"],
                    "duration_s": row["duration_s"],
                    "done_ts": row["done_ts"],
                    "config_digest": row["config_digest"],
                    "result": json.loads(row["result"]) if row["result"] else None,
                    "error": row["error"],
                }
            )
        return out

    # -- distributed trace spans ----------------------------------------

    def record_span(self, sweep_id: str, record: dict) -> None:
        """Persist one finished span record against a sweep.

        Workers and the service both write here, so the store is the
        rendezvous point for the merged timeline exactly as it is for
        results and metric snapshots.
        """
        done = self._timed("record_span")
        attrs = record.get("attrs") or {}
        events = record.get("events") or []
        with self._lock:
            self._conn.execute(
                "INSERT INTO spans (sweep_id, trace_id, span_id, parent_id,"
                " name, component, ts, duration_s, status, attrs, events)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    sweep_id,
                    record.get("trace_id"),
                    record.get("span_id"),
                    record.get("parent_id"),
                    record.get("name") or "span",
                    record.get("component"),
                    record.get("ts"),
                    record.get("duration_s"),
                    record.get("status") or "ok",
                    json.dumps(attrs, sort_keys=True, default=str) if attrs else None,
                    json.dumps(events, default=str) if events else None,
                ),
            )
            done()
        self._m_spans.inc()

    def spans(self, sweep_id: str) -> List[dict]:
        """One sweep's span records in start order (record-dict shape).

        Raises :class:`KeyError` for an unknown sweep id.
        """
        with self._lock:
            if (
                self._conn.execute(
                    "SELECT 1 FROM sweeps WHERE id=?", (sweep_id,)
                ).fetchone()
                is None
            ):
                raise KeyError(sweep_id)
            rows = self._conn.execute(
                "SELECT trace_id, span_id, parent_id, name, component, ts,"
                " duration_s, status, attrs, events FROM spans"
                " WHERE sweep_id=? ORDER BY ts, id",
                (sweep_id,),
            ).fetchall()
        out = []
        for row in rows:
            try:
                attrs = json.loads(row["attrs"]) if row["attrs"] else {}
            except ValueError:
                attrs = {}
            try:
                events = json.loads(row["events"]) if row["events"] else []
            except ValueError:
                events = []
            out.append(
                {
                    "schema": SPAN_SCHEMA,
                    "event": "span",
                    "trace_id": row["trace_id"],
                    "span_id": row["span_id"],
                    "parent_id": row["parent_id"],
                    "name": row["name"],
                    "component": row["component"],
                    "ts": row["ts"],
                    "duration_s": row["duration_s"],
                    "status": row["status"],
                    "attrs": attrs,
                    "events": events,
                }
            )
        return out


def span_sink(store: JobStore, sweep_id: str):
    """A :class:`~repro.obsv.spans.SpanRecorder` sink that persists
    finished spans into *store* against *sweep_id*."""

    def sink(record: dict) -> None:
        store.record_span(sweep_id, record)

    return sink


def open_store(path: str | Path, metrics=NULL_METRICS) -> SQLiteJobStore:
    """The default backend for a filesystem path (SQLite, WAL mode)."""
    return SQLiteJobStore(path, metrics=metrics)


def iter_points(
    workloads: Iterable[str], specs: Iterable[dict]
) -> List[Tuple[str, dict]]:
    """The cross product submit_sweep expects, workloads-major."""
    specs = list(specs)
    return [(workload, spec) for spec in specs for workload in workloads]
