"""The worker loop: claim sweep points, simulate them, report durably.

A :class:`Worker` is one process's (or thread's) participation in a
shared job store.  Each iteration it returns expired leases to the
queue, claims the oldest eligible pending job, rebuilds the job's
:class:`~repro.common.config.GpuConfig` from its spec, and runs it
through the **existing experiment stack** — a
:class:`~repro.experiments.parallel.ParallelRunner` with ``jobs=1``, so
every piece of machinery the serial path earned still applies:

* the in-process memo and the **sharded result cache** (opened
  read-only: many workers may share one cache directory, and the cache
  stays single-writer — results travel back through the store);
* the **run ledger** (one JSONL file per worker; canonical records from
  any number of workers merge record-equivalent to a serial run);
* the process-wide secure-geometry **warm state**, which accumulates
  across every point this worker executes.

While a point simulates, a daemon thread heartbeats the job's lease
forward, so a healthy worker never loses a slow point; a killed worker
stops heartbeating and the lease lapses, returning the point to the
queue for someone else.  Failures are retried with capped exponential
backoff (stamped into the row's ``not_before``) and poison-failed at the
attempt budget, so one crashing config cannot wedge a sweep.

The worker is also a trace participant: each claimed job carries the
sweep's traceparent (minted at submit), and the worker hangs a
``worker.claim`` span and a ``worker.execute`` span (heartbeats as
instant events) under it, persisted back through the store — the same
rendezvous results take.  All backoff sleeps carry a deterministic
per-worker jitter factor (seeded by the worker id) so a fleet of idle
workers never polls the store in lockstep.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.common.config import GpuConfig
from repro.experiments.designs import build_named_gpu
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import config_key, result_to_dict
from repro.jobs.store import Job, SQLiteJobStore, span_sink
from repro.obsv.logging import NULL_LOG
from repro.obsv.metrics import MetricsRegistry
from repro.obsv.spans import NULL_SPANS, SpanRecorder, parse_traceparent

#: backoff after the n-th failed attempt: min(cap, base * 2**(n-1) * jitter).
BACKOFF_BASE_S = 0.5
BACKOFF_CAP_S = 30.0

#: idle claim polling backs off exponentially from ``poll_s`` up to here.
IDLE_BACKOFF_CAP_S = 5.0


def default_worker_id() -> str:
    """host-pid-nonce: unique across hosts sharing one store."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def backoff_jitter(worker_id: str) -> float:
    """Deterministic per-worker jitter factor in ``[0.75, 1.25)``.

    Seeded by the worker id (not the RNG) so a worker's backoff
    schedule is reproducible run-to-run, yet any two workers sharing a
    store desynchronize instead of hammering SQLite in lockstep after
    a simultaneous idle poll or a common failure.
    """
    digest = hashlib.sha256(worker_id.encode("utf-8")).hexdigest()
    return 0.75 + (int(digest[:8], 16) / 0x100000000) * 0.5


def build_config(spec: dict) -> GpuConfig:
    """A job spec back into the exact GpuConfig the submitter meant.

    The v1 spec is ``{"design": <registry name>, "partitions": N}`` —
    named designs only, so a spec is tiny, portable, and rebuilds
    bit-identically on any host running the same code.
    """
    if "design" not in spec:
        raise ValueError(f"job spec has no 'design': {spec!r}")
    return build_named_gpu(spec["design"], num_partitions=int(spec.get("partitions", 4)))


class Worker:
    """One claim/execute/report loop against a shared job store.

    ``until="drained"`` (the default) exits when the store has no
    pending *and* no running jobs — i.e. the whole backlog is terminal,
    including points other live workers are still finishing;
    ``until="forever"`` keeps polling for new sweeps (service mode).
    """

    def __init__(
        self,
        store: SQLiteJobStore,
        worker_id: Optional[str] = None,
        lease_s: float = 30.0,
        poll_s: float = 0.2,
        cache_dir: Optional[str | Path] = None,
        ledger_dir: Optional[str | Path] = None,
        backoff_base_s: float = BACKOFF_BASE_S,
        backoff_cap_s: float = BACKOFF_CAP_S,
        idle_cap_s: float = IDLE_BACKOFF_CAP_S,
        max_points: Optional[int] = None,
        metrics=None,
        tracing: bool = True,
        log=NULL_LOG,
    ) -> None:
        self.store = store
        self.worker_id = worker_id or default_worker_id()
        self.lease_s = max(0.1, float(lease_s))
        self.poll_s = max(0.01, float(poll_s))
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.ledger_dir = Path(ledger_dir) if ledger_dir else None
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.idle_cap_s = max(self.poll_s, float(idle_cap_s))
        self.max_points = max_points
        self.tracing = tracing
        self.log = log
        self.jitter = backoff_jitter(self.worker_id)
        self._idle_streak = 0
        #: wall ts + duration of the last successful claim, for its span.
        self._last_claim: Tuple[float, float] = (0.0, 0.0)
        #: outcome -> count, over this worker's lifetime.
        self.executed: Dict[str, int] = {"simulated": 0, "cached": 0, "failed": 0}
        #: one runner per (horizon, warmup) window, reused across jobs so
        #: the memo table and warm state survive between points.
        self._runners: Dict[Tuple[float, float], ParallelRunner] = {}
        # Workers default to a live registry (the per-point emission
        # sites cost microseconds against multi-second points); pass the
        # store's registry to share one process-wide view, or
        # NULL_METRICS to switch the whole plane off (the overhead
        # bench's control arm).
        if metrics is None:
            metrics = store.metrics if store.metrics.enabled else MetricsRegistry()
        self.metrics = metrics
        self.started_ts = time.time()
        self._m_points = metrics.counter(
            "repro_worker_points_total",
            "Points this worker executed, by outcome",
            labels=("outcome",),
        )
        self._m_point_us = metrics.histogram(
            "repro_worker_point_duration_us",
            "Per-point wall time in microseconds, by outcome",
            labels=("outcome",),
        )
        self._m_heartbeats = metrics.counter(
            "repro_worker_heartbeats_total", "Lease-heartbeat ticks sent"
        )
        self._m_idle_sleeps = metrics.counter(
            "repro_worker_idle_sleeps_total",
            "Poll sleeps taken with no claimable job",
        )
        self._m_busy = metrics.gauge(
            "repro_worker_busy", "1 while executing a point, else 0"
        )
        self._m_rate = metrics.gauge(
            "repro_worker_points_per_s", "Lifetime points-per-second throughput"
        )
        self._m_uptime = metrics.gauge(
            "repro_worker_uptime_s", "Seconds since this worker started"
        )

    # ------------------------------------------------------------------

    def _runner(self, horizon: float, warmup: float) -> ParallelRunner:
        window = (horizon, warmup)
        runner = self._runners.get(window)
        if runner is None:
            ledger_path = None
            if self.ledger_dir is not None:
                ledger_path = self.ledger_dir / f"worker-{self.worker_id}.jsonl"
            runner = ParallelRunner(
                horizon=horizon,
                warmup=warmup,
                cache_path=self.cache_dir,
                cache_read_only=True,
                jobs=1,
                ledger_path=ledger_path,
                metrics=self.metrics,
            )
            self._runners[window] = runner
        return runner

    def _refresh_gauges(self) -> None:
        uptime = max(time.time() - self.started_ts, 0.0)
        self._m_uptime.set(uptime)
        total = sum(self.executed.values())
        self._m_rate.set(total / uptime if total and uptime > 0 else 0.0)

    def _persist_snapshot(self) -> None:
        """Push this worker's registry into the store, best-effort.

        Rides the heartbeat/report cadence; a failure to persist is
        never allowed to take down the work loop (observability is a
        passenger here, same rule as the telemetry layer).
        """
        if not self.metrics.enabled:
            return
        self._refresh_gauges()
        try:
            self.store.record_worker(
                self.worker_id, self.metrics.snapshot(), started_ts=self.started_ts
            )
        except Exception:  # noqa: BLE001 — observability must not kill work
            pass

    def _heartbeat_loop(self, job: Job, stop: threading.Event, span) -> None:
        """Extend the lease at a third of its period until told to stop."""
        every = self.lease_s / 3.0
        while not stop.wait(every):
            if not self.store.heartbeat(job.id, self.worker_id, self.lease_s):
                span.event("lease.lost")
                return  # claim lost (lease expired under a stalled sim)
            span.event("lease.heartbeat", lease_s=self.lease_s)
            self._m_heartbeats.inc()
            self._persist_snapshot()

    def _trace_recorder(self, job: Job):
        """The recorder + parent context for one claimed job.

        The job row carries the sweep's traceparent; spans persist back
        through the store (the fleet rendezvous), so a worker on any
        host lands on the submit request's timeline.  No traceparent —
        or tracing off — degrades to the zero-cost NULL recorder.
        """
        if not self.tracing:
            return NULL_SPANS, None
        parent = parse_traceparent(job.traceparent)
        if parent is None:
            return NULL_SPANS, None
        return SpanRecorder(sink=span_sink(self.store, job.sweep_id)), parent

    def _execute(self, job: Job) -> str:
        """Run one claimed job to a report; returns the outcome."""
        recorder, parent = self._trace_recorder(job)
        if recorder.enabled:
            claim_ts, claim_dur = self._last_claim
            recorder.record(
                "worker.claim", component=f"worker:{self.worker_id}",
                parent=parent, ts=claim_ts, duration_s=claim_dur,
                attrs={"workload": job.workload, "seq": job.seq,
                       "attempt": job.attempts},
            )
        span = recorder.start_span(
            "worker.execute", component=f"worker:{self.worker_id}",
            parent=parent,
            attrs={"workload": job.workload, "seq": job.seq,
                   "attempt": job.attempts, "worker": self.worker_id},
        )
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(job, stop, span), daemon=True
        )
        beat.start()
        self._m_busy.set(1)
        t0 = time.perf_counter()
        try:
            config = build_config(job.spec)
            runner = self._runner(job.horizon, job.warmup)
            runner.set_trace_context(recorder, span.context())
            simulated_before = runner.stats.points_simulated
            result = runner.run(job.workload, config)
            outcome = (
                "simulated"
                if runner.stats.points_simulated > simulated_before
                else "cached"
            )
            self.store.report(
                job.id,
                self.worker_id,
                outcome,
                result=result_to_dict(result),
                duration_s=round(time.perf_counter() - t0, 6),
                config_digest=config_key(config),
            )
        except Exception as exc:  # noqa: BLE001 — every failure is reported
            retry_in = min(
                self.backoff_cap_s,
                self.backoff_base_s * 2 ** max(0, job.attempts - 1) * self.jitter,
            )
            outcome = "failed"
            span.set(error=f"{type(exc).__name__}: {exc}")
            self.store.report(
                job.id,
                self.worker_id,
                "failed",
                error=f"{type(exc).__name__}: {exc}",
                duration_s=round(time.perf_counter() - t0, 6),
                retry_in_s=retry_in,
            )
        finally:
            stop.set()
            beat.join()
            self._m_busy.set(0)
            for runner in self._runners.values():
                runner.set_trace_context(NULL_SPANS, None)
            span.set(outcome=outcome)
            span.end(status="ok" if outcome != "failed" else "error")
        self.executed[outcome] += 1
        self._m_points.labels(outcome).inc()
        self._m_point_us.labels(outcome).observe((time.perf_counter() - t0) * 1e6)
        self._persist_snapshot()
        self.log.log(
            "worker.point", worker=self.worker_id, workload=job.workload,
            seq=job.seq, outcome=outcome, attempt=job.attempts,
            trace_id=span.trace_id, span_id=span.span_id,
        )
        return outcome

    # ------------------------------------------------------------------

    def run(self, until: str = "drained") -> int:
        """The loop; returns how many claims this worker executed."""
        if until not in ("drained", "forever"):
            raise ValueError(f"until must be 'drained' or 'forever', got {until!r}")
        executed = 0
        self._persist_snapshot()  # register with the fleet before first claim
        self.log.log("worker.start", worker=self.worker_id, until=until)
        while True:
            self.store.requeue_expired()
            claim_wall = time.time()
            claim_t0 = time.perf_counter()
            job = self.store.claim(self.worker_id, self.lease_s)
            if job is not None:
                self._last_claim = (claim_wall, time.perf_counter() - claim_t0)
                self._idle_streak = 0
                self._execute(job)
                executed += 1
                if self.max_points is not None and executed >= self.max_points:
                    break
                continue
            counts = self.store.counts()
            if until == "drained" and not counts["pending"] and not counts["running"]:
                break
            self._m_idle_sleeps.inc()
            time.sleep(self._idle_sleep_s())
        self._persist_snapshot()
        self.close()
        self.log.log("worker.exit", worker=self.worker_id, executed=executed)
        return executed

    def _idle_sleep_s(self) -> float:
        """Next idle sleep: capped exponential from ``poll_s``, scaled
        by this worker's deterministic jitter so idle fleets spread out
        instead of polling in lockstep."""
        backoff = min(self.idle_cap_s, self.poll_s * (2 ** self._idle_streak))
        self._idle_streak = min(self._idle_streak + 1, 16)
        return backoff * self.jitter

    def close(self) -> None:
        for runner in self._runners.values():
            runner.close()


# ---------------------------------------------------------------------------
# multi-process fan-out
# ---------------------------------------------------------------------------


def _worker_main(store_path: str, kwargs: dict, until: str) -> None:
    # One shared registry per worker process: store-op series and worker
    # series land in the same snapshot the heartbeat persists, so the
    # service can render per-worker claim/report counters it never saw.
    registry = MetricsRegistry()
    store = SQLiteJobStore(store_path, metrics=registry)
    try:
        Worker(store, metrics=registry, **kwargs).run(until=until)
    finally:
        store.close()


def run_workers(
    store_path: str | Path,
    count: int,
    until: str = "drained",
    **worker_kwargs,
) -> list:
    """Spawn *count* worker processes against one store path.

    Returns the (started) :class:`multiprocessing.Process` list; with
    ``until="drained"`` simply ``join()`` them, with ``"forever"`` they
    run until terminated (the HTTP service's embedded workers).
    """
    processes = []
    for _ in range(max(1, int(count))):
        process = multiprocessing.Process(
            target=_worker_main,
            args=(str(store_path), dict(worker_kwargs), until),
            daemon=(until == "forever"),
        )
        process.start()
        processes.append(process)
    return processes
