"""``repro top``: a live terminal view of the sweep fleet.

The ``top(1)`` of the sweep service: one screenful answering "what is
the fleet doing right now" — every sweep's progress/rate/ETA and every
worker's throughput and last-seen age — refreshed in place until
interrupted (or rendered once with ``--once``).

Two interchangeable feeds produce the same normalized state dict:

* :func:`fleet_from_store` reads a job-store SQLite file directly
  (workers on this host, or any host sharing the filesystem);
* :func:`fleet_from_url` asks a running ``repro serve`` for
  ``GET /sweeps`` and ``GET /metrics``, rebuilding per-worker rows from
  the ``worker="id"``-labeled Prometheus series — so ``repro top
  --url`` works against a service on another machine with no shared
  disk.

Rendering is plain aligned text (no curses): a screen refresh is one
ANSI clear + reprint, which survives dumb terminals and CI logs.
"""

from __future__ import annotations

import json
import time
import urllib.request
from typing import Callable, Dict, List, Optional

from repro.obsv.metrics import parse_prometheus, snapshot_value

#: drop workers whose last snapshot is older than this from the view.
STALE_WORKER_S = 300.0


def _worker_row(
    worker: str,
    simulated: float,
    cached: float,
    failed: float,
    rate: float,
    busy: float,
    age_s: Optional[float],
) -> dict:
    return {
        "worker": worker,
        "simulated": int(simulated),
        "cached": int(cached),
        "failed": int(failed),
        "rate": rate,
        "busy": bool(busy),
        "age_s": age_s,
    }


def fleet_from_store(store) -> dict:
    """Fleet state straight from a :class:`SQLiteJobStore`."""
    workers = []
    for entry in store.workers_seen(max_age_s=STALE_WORKER_S):
        snap = entry.get("metrics")
        workers.append(
            _worker_row(
                entry["worker"],
                snapshot_value(snap, "repro_worker_points_total", {"outcome": "simulated"}),
                snapshot_value(snap, "repro_worker_points_total", {"outcome": "cached"}),
                snapshot_value(snap, "repro_worker_points_total", {"outcome": "failed"}),
                snapshot_value(snap, "repro_worker_points_per_s"),
                snapshot_value(snap, "repro_worker_busy"),
                entry.get("age_s"),
            )
        )
    return {
        "source": str(store.path),
        "ts": time.time(),
        "sweeps": store.sweeps(),
        "workers": workers,
    }


def fleet_from_url(base_url: str, timeout_s: float = 10.0) -> dict:
    """Fleet state from a live service's HTTP API."""
    base = base_url.rstrip("/")

    def fetch(path: str) -> bytes:
        with urllib.request.urlopen(base + path, timeout=timeout_s) as response:
            return response.read()

    sweeps = json.loads(fetch("/sweeps"))["sweeps"]
    samples = parse_prometheus(fetch("/metrics").decode())
    # regroup the flat samples by their worker label.
    per_worker: Dict[str, Dict[str, float]] = {}
    for (name, labels), value in samples.items():
        label_map = dict(labels)
        worker = label_map.get("worker")
        if worker is None:
            continue
        if name == "repro_worker_points_total":
            key = f"points:{label_map.get('outcome', '?')}"
        elif name in (
            "repro_worker_points_per_s",
            "repro_worker_busy",
            "repro_worker_last_seen_age_s",
        ):
            key = name
        else:
            continue
        bucket = per_worker.setdefault(worker, {})
        bucket[key] = bucket.get(key, 0.0) + value
    workers = [
        _worker_row(
            worker,
            series.get("points:simulated", 0.0),
            series.get("points:cached", 0.0),
            series.get("points:failed", 0.0),
            series.get("repro_worker_points_per_s", 0.0),
            series.get("repro_worker_busy", 0.0),
            series.get("repro_worker_last_seen_age_s"),
        )
        for worker, series in sorted(per_worker.items())
        if (series.get("repro_worker_last_seen_age_s") or 0.0) <= STALE_WORKER_S
    ]
    return {"source": base, "ts": time.time(), "sweeps": sweeps, "workers": workers}


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "-"
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.0f}s"


def _fmt_age(age_s: Optional[float]) -> str:
    return "-" if age_s is None else f"{age_s:.0f}s"


def _render_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    return [line(headers), line(["-" * w for w in widths])] + [line(r) for r in rows]


def render_top(fleet: dict) -> str:
    """One screenful of fleet state as plain text."""
    sweeps = fleet.get("sweeps") or []
    workers = fleet.get("workers") or []
    running = [s for s in sweeps if s.get("status") == "running"]
    busy = sum(1 for w in workers if w.get("busy"))
    out = [
        f"repro top — {fleet.get('source', '?')}",
        f"{len(sweeps)} sweep(s), {len(running)} running · "
        f"{len(workers)} worker(s), {busy} busy · "
        f"{time.strftime('%H:%M:%S', time.localtime(fleet.get('ts', time.time())))}",
        "",
    ]
    if sweeps:
        rows = [
            [
                s["sweep_id"],
                (s.get("label") or "-")[:24],
                s.get("status", "?"),
                f"{s['counts']['done']}/{s['total']}",
                str(s["counts"]["failed"]),
                f"{s.get('points_per_s', 0.0):.2f}",
                _fmt_eta(s.get("eta_s")),
            ]
            for s in sweeps
        ]
        out.extend(
            _render_table(
                ["sweep", "label", "status", "done", "fail", "pts/s", "eta"], rows
            )
        )
    else:
        out.append("no sweeps submitted")
    out.append("")
    if workers:
        rows = [
            [
                w["worker"][:40],
                "busy" if w["busy"] else "idle",
                str(w["simulated"]),
                str(w["cached"]),
                str(w["failed"]),
                f"{w['rate']:.2f}",
                _fmt_age(w.get("age_s")),
            ]
            for w in workers
        ]
        out.extend(
            _render_table(
                ["worker", "state", "sim", "cached", "fail", "pts/s", "seen"], rows
            )
        )
    else:
        out.append("no workers seen (start some with: repro worker --store <path>)")
    return "\n".join(out) + "\n"


def run_top(
    fleet_fn: Callable[[], dict],
    once: bool = False,
    interval_s: float = 2.0,
    print_fn: Callable[[str], None] = print,
) -> int:
    """The refresh loop; returns a process exit code."""
    interval_s = max(0.2, float(interval_s))
    while True:
        try:
            fleet = fleet_fn()
        except Exception as exc:  # noqa: BLE001 — report, don't stack-trace
            print_fn(f"repro top: cannot read fleet state: {exc}")
            return 1
        text = render_top(fleet)
        if once:
            print_fn(text)
            return 0
        # ANSI clear + home, then the fresh frame.
        print_fn("\x1b[2J\x1b[H" + text)
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0
