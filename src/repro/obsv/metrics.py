"""Process metrics registry: live counters, gauges, and histograms.

The rest of :mod:`repro.obsv` is *post-hoc* — ledgers, scorecards, and
dashboards read files after a sweep finished.  This module is the
*runtime* half: components register named metric families on a shared
:class:`MetricsRegistry`, increment them as work happens, and anything
holding the registry can snapshot the whole process's state at any
moment.  The sweep service exposes its registry (plus every worker's
persisted snapshot) as Prometheus text exposition on ``GET /metrics``,
and ``repro top`` renders the same data as a live terminal view.

Three metric kinds, the conventional minimum:

* **counter** — monotonic total (claims, reports, HTTP requests);
* **gauge** — last-write value (queue depth, points/sec, busy flag);
* **histogram** — a log2-bucket latency distribution reusing the
  telemetry layer's :class:`~repro.telemetry.latency.LogHistogram`
  (associative merge, bucket-mean quantiles).  Durations are recorded
  in **microseconds** (``*_us`` naming) so sub-millisecond SQLite ops
  and multi-second simulation points both resolve across log2 buckets.

Families are **labeled**: ``registry.counter("x_total", labels=("op",))``
returns a family whose ``labels("claim")`` child is its own series, the
same shape Prometheus client libraries use.  Increments are thread-safe
(one registry-wide lock — the emission sites here are service-path
operations measured in milliseconds, not the simulator hot path, which
keeps :data:`NULL_METRICS` instead and never pays for any of this).

Snapshots are plain JSON-able dicts, so a worker process can persist its
registry through the job store's heartbeat path and the service can
aggregate *remote* workers it never shared memory with:
:func:`render_prometheus` takes any number of ``(snapshot,
extra_labels)`` pairs and renders one exposition — worker snapshots get
a ``worker="<id>"`` label stamped onto every series.
:meth:`MetricsRegistry.merge` folds a snapshot back into a live registry
(counters add, gauges overwrite, histograms merge), so
snapshot → merge round-trips losslessly.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.telemetry.latency import LogHistogram

#: bump when the snapshot layout changes incompatibly.
METRICS_SCHEMA = 1

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Prometheus label-value escaping: backslash, double quote, newline.
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def escape_label_value(value: str) -> str:
    """Escape one label value for the Prometheus text format."""
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in str(value))


class Counter:
    """One monotonic series; ``inc`` only ever moves it forward."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """One last-write-wins series; settable and incrementable."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """One distribution series over a log2-bucket :class:`LogHistogram`."""

    __slots__ = ("_lock", "hist")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.hist = LogHistogram()

    def observe(self, value: float) -> None:
        with self._lock:
            self.hist.record(value)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """One named metric family: kind + help + labeled child series.

    ``labels(*values)`` returns (creating on first use) the child series
    for one label-value tuple; the no-label convenience methods
    (``inc``/``set``/``observe``) operate on the single unlabeled child.
    """

    __slots__ = ("name", "kind", "help", "label_names", "_children", "_lock")

    def __init__(
        self, name: str, kind: str, help_text: str, label_names: Tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self._lock = lock
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, *values) -> object:
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, got {key}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = _KINDS[self.kind](self._lock)
        return child

    # -- unlabeled conveniences ----------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Stable (label-values, child) listing for rendering."""
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A process's named metric families, snapshot-able as one dict."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, Family] = {}

    def _family(
        self, name: str, kind: str, help_text: str, labels: Sequence[str]
    ) -> Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = Family(
                    name, kind, help_text, label_names, self._lock
                )
                return family
        if family.kind != kind or family.label_names != label_names:
            raise ValueError(
                f"metric {name} already registered as {family.kind}"
                f"{family.label_names}, not {kind}{label_names}"
            )
        return family

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Family:
        return self._family(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Family:
        return self._family(name, "gauge", help_text, labels)

    def histogram(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Family:
        return self._family(name, "histogram", help_text, labels)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict:
        """Everything registered, as one JSON-able dict."""
        metrics: Dict[str, dict] = {}
        with self._lock:
            families = list(self._families.values())
        for family in families:
            series = []
            for key, child in family.series():
                entry: dict = {"labels": dict(zip(family.label_names, key))}
                if family.kind == "histogram":
                    entry["hist"] = child.hist.to_dict()
                else:
                    entry["value"] = child.value
                series.append(entry)
            metrics[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": series,
            }
        return {"schema": METRICS_SCHEMA, "metrics": metrics}

    def merge(self, snap: Optional[dict], extra_labels: Optional[dict] = None) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms accumulate; gauges take the snapshot's
        value (last write wins).  *extra_labels* appends label
        dimensions to every merged series (the service stamps
        ``worker=<id>`` onto worker snapshots this way).
        """
        extra = dict(extra_labels or {})
        for name, doc in ((snap or {}).get("metrics") or {}).items():
            label_names = tuple(doc.get("labels", ())) + tuple(extra)
            family = self._family(
                name, doc.get("kind", "gauge"), doc.get("help", ""), label_names
            )
            for entry in doc.get("series", ()):
                labels = dict(entry.get("labels", {}), **extra)
                child = family.labels(*(labels.get(n, "") for n in label_names))
                if family.kind == "counter":
                    child.inc(float(entry.get("value", 0.0)))
                elif family.kind == "gauge":
                    child.set(float(entry.get("value", 0.0)))
                else:
                    child.hist.merge_from(LogHistogram.from_dict(entry.get("hist", {})))


class _NullSeries:
    """Absorbs every metric operation at one attribute-load of cost."""

    __slots__ = ()

    def labels(self, *values) -> "_NullSeries":
        return self

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""

    def dec(self, amount: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""


_NULL_SERIES = _NullSeries()


class NullMetricsRegistry:
    """Zero-cost stand-in wherever metrics are off (the default).

    The simulator hot path and every default-constructed runner/store
    hold this, so the observability plane costs nothing unless a caller
    opts in with a real :class:`MetricsRegistry` — the same discipline
    as ``NULL_TRACER`` / ``NULL_LATENCY``.
    """

    enabled = False

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> _NullSeries:
        return _NULL_SERIES

    gauge = counter
    histogram = counter

    def snapshot(self) -> dict:
        return {"schema": METRICS_SCHEMA, "metrics": {}}

    def merge(self, snap: Optional[dict], extra_labels: Optional[dict] = None) -> None:
        """No-op."""


#: the shared disabled registry; components default to this.
NULL_METRICS = NullMetricsRegistry()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints bare)."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def _label_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


def _render_histogram(name: str, labels: Dict[str, str], hist: dict, out: List[str]) -> None:
    """One histogram series as cumulative ``_bucket``/``_sum``/``_count``.

    The log2 buckets become ``le`` upper bounds (bucket *i* covers
    ``[2**(i-1), 2**i)``, so its ``le`` is ``2**i``), which keeps the
    exposition a faithful cumulative view of the underlying histogram.
    """
    buckets = {int(k): v for k, v in (hist.get("buckets") or {}).items()}
    cumulative = 0.0
    for index in sorted(buckets):
        cumulative += buckets[index][0]
        le = _format_value(float(2**index) if index > 0 else 1.0)
        out.append(
            f"{name}_bucket{_label_str(dict(labels, le=le))} {_format_value(cumulative)}"
        )
    out.append(
        f'{name}_bucket{_label_str(dict(labels, le="+Inf"))} '
        f"{_format_value(float(hist.get('n', 0)))}"
    )
    out.append(f"{name}_sum{_label_str(labels)} {_format_value(float(hist.get('sum', 0.0)))}")
    out.append(f"{name}_count{_label_str(labels)} {_format_value(float(hist.get('n', 0)))}")


def render_prometheus(
    snapshots: Iterable[Tuple[Optional[dict], Optional[dict]]],
) -> str:
    """Render ``(snapshot, extra_labels)`` pairs as one text exposition.

    Families sharing a name across snapshots merge under one
    ``# HELP``/``# TYPE`` block; colliding series (same name *and* same
    final label set) add for counters/histograms and last-write for
    gauges — though in practice the service's ``worker=<id>`` stamping
    keeps every snapshot's series distinct.
    """
    # name -> (kind, help); name -> {label_tuple_items: value|hist}
    meta: Dict[str, Tuple[str, str]] = {}
    series: Dict[str, Dict[Tuple[Tuple[str, str], ...], object]] = {}
    for snap, extra_labels in snapshots:
        extra = dict(extra_labels or {})
        for name, doc in ((snap or {}).get("metrics") or {}).items():
            kind = doc.get("kind", "gauge")
            if name not in meta:
                meta[name] = (kind, doc.get("help", ""))
            bucket = series.setdefault(name, {})
            for entry in doc.get("series", ()):
                labels = dict(entry.get("labels", {}), **extra)
                key = tuple(sorted(labels.items()))
                if kind == "histogram":
                    hist = LogHistogram.from_dict(entry.get("hist", {}))
                    existing = bucket.get(key)
                    if existing is not None:
                        hist.merge_from(existing)  # associative either way
                    bucket[key] = hist
                else:
                    value = float(entry.get("value", 0.0))
                    if kind == "counter":
                        value += float(bucket.get(key, 0.0))
                    bucket[key] = value
    out: List[str] = []
    for name in sorted(meta):
        kind, help_text = meta[name]
        if help_text:
            out.append(f"# HELP {name} {help_text}")
        out.append(f"# TYPE {name} {kind}")
        for key in sorted(series[name]):
            labels = dict(key)
            value = series[name][key]
            if kind == "histogram":
                _render_histogram(name, labels, value.to_dict(), out)
            else:
                out.append(f"{name}{_label_str(labels)} {_format_value(value)}")
    return "\n".join(out) + "\n" if out else ""


# ---------------------------------------------------------------------------
# reading expositions and snapshots back (repro top, dashboard, tests)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        if "\\" in value
        else value
    )


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse a text exposition back into ``{(name, labels): value}``.

    Labels are a sorted tuple of ``(name, value)`` pairs.  Comment and
    malformed lines are skipped; this reads *our own* exposition (and
    any conforming one) for ``repro top --url`` and the tests.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        labels = tuple(
            sorted(
                (m.group("name"), _unescape_label_value(m.group("value")))
                for m in _LABEL_RE.finditer(match.group("labels") or "")
            )
        )
        out[(match.group("name"), labels)] = value
    return out


def snapshot_value(
    snap: Optional[dict], name: str, labels: Optional[dict] = None
) -> float:
    """Sum a snapshot family's series values matching *labels* (subset)."""
    doc = ((snap or {}).get("metrics") or {}).get(name)
    if not doc:
        return 0.0
    want = (labels or {}).items()
    total = 0.0
    for entry in doc.get("series", ()):
        have = entry.get("labels", {})
        if all(have.get(k) == v for k, v in want):
            total += float(entry.get("value", 0.0))
    return total


def snapshot_histogram(
    snap: Optional[dict], name: str, labels: Optional[dict] = None
) -> Optional[LogHistogram]:
    """Merge a snapshot family's histogram series matching *labels*."""
    doc = ((snap or {}).get("metrics") or {}).get(name)
    if not doc or doc.get("kind") != "histogram":
        return None
    want = (labels or {}).items()
    merged: Optional[LogHistogram] = None
    for entry in doc.get("series", ()):
        have = entry.get("labels", {})
        if all(have.get(k) == v for k, v in want):
            hist = LogHistogram.from_dict(entry.get("hist", {}))
            if merged is None:
                merged = hist
            else:
                merged.merge_from(hist)
    return merged


def snapshot_to_json(snap: dict) -> str:
    """Deterministic JSON for persisting a snapshot (job-store rows)."""
    return json.dumps(snap, sort_keys=True)
