"""Paper-fidelity scorecard: the paper's conclusions as tolerance bands.

The reproduction's value is its ability to *demonstrate* that it still
reproduces the paper after every change.  This module encodes the
quantitative headline numbers behind Section V's five conclusions as
declarative :class:`Expectation` records — an observed metric, the
paper-anchored target, and pass/warn/fail tolerance bands — and
evaluates them against a sweep's results to produce ``scorecard.json``
plus a rendered table (``repro scorecard``).

The five claims covered (Figures 3, 8, 12, 15-17):

1. **Metadata bandwidth is the bottleneck** — secure memory costs ~66%
   of IPC on average, zero-latency crypto does not help, and perfect
   metadata caches recover nearly everything.
2. **lbm is the worst case** — ~91% IPC loss in the paper.
3. **Separate metadata caches beat a unified one** on GPUs.
4. **Direct encryption is cheap** — and beats the counter-mode stack.
5. **One AES engine per partition suffices.**

Two profiles ship: ``paper`` evaluates at the EXPERIMENTS.md
regeneration scale (4 partitions, 10k/30k windows — pure cache reads
when ``results/`` is populated), ``smoke`` at the small CI scale with
bands calibrated for the shorter windows.  Tolerances are *calibrated
observations*, documented per expectation: ``target`` anchors on what
this reproduction measures at that scale, ``paper`` records the paper's
own number for the report.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import render_table
from repro.common.hostinfo import host_metadata
from repro.experiments import designs
from repro.experiments.runner import Runner

#: bump when the scorecard.json field set changes incompatibly.
SCORECARD_SCHEMA = 1

PASS, WARN, FAIL, SKIP = "pass", "warn", "fail", "skip"

#: severity order for the overall verdict (worst wins; skip never wins).
_SEVERITY = {PASS: 0, SKIP: 0, WARN: 1, FAIL: 2}


@dataclasses.dataclass(frozen=True)
class Expectation:
    """One declarative check against a sweep's observed metrics.

    ``mode`` picks the violation function:

    * ``band``     — ``v = max(0, |observed - target| - tolerance)``
    * ``at_least`` — ``v = max(0, target - observed)``
    * ``at_most``  — ``v = max(0, observed - target)``

    ``v == 0`` passes, ``v <= grace`` warns, beyond fails — so the warn
    band is a strip of width ``grace`` just outside the pass region, and
    the boundaries are closed on the passing side.
    """

    id: str
    claim: str
    metric: str
    mode: str  # "band" | "at_least" | "at_most"
    target: float
    grace: float
    tolerance: float = 0.0  # only meaningful for mode="band"
    paper: str = ""  # the paper's stated number, for the report

    def violation(self, observed: float) -> float:
        if self.mode == "band":
            return max(0.0, abs(observed - self.target) - self.tolerance)
        if self.mode == "at_least":
            return max(0.0, self.target - observed)
        if self.mode == "at_most":
            return max(0.0, observed - self.target)
        raise ValueError(f"unknown expectation mode {self.mode!r}")

    def status(self, observed: Optional[float]) -> str:
        if observed is None:
            return SKIP
        v = self.violation(observed)
        if v == 0.0:
            return PASS
        return WARN if v <= self.grace else FAIL


# ---------------------------------------------------------------------------
# profiles and their calibrated expectations
# ---------------------------------------------------------------------------

#: simulation scale per profile; ``benchmarks=None`` means the full suite.
PROFILES: Dict[str, dict] = {
    "paper": {
        "partitions": 4,
        "horizon": 10_000,
        "warmup": 30_000,
        "benchmarks": None,
    },
    # the tier-1 smoke scale (test_paper_conclusions): two benchmarks per
    # intensity category, short windows — cheap enough for CI.
    "smoke": {
        "partitions": 2,
        "horizon": 2_500,
        "warmup": 5_000,
        "benchmarks": ["heartwall", "nw", "backprop", "bfs", "fdtd2d", "lbm"],
    },
}


def _expectations(
    mean_loss: float,
    lbm_loss: float,
    direct_cheap: float,
    lbm_margin: float = -0.05,
) -> List[Expectation]:
    """The shared expectation set, anchored per scale.

    Relational claims (who beats whom) are scale-invariant and share one
    definition; magnitude claims take the scale's calibrated anchor.
    """
    return [
        Expectation(
            id="c1_mean_secure_ipc_loss",
            claim="secure memory costs most of the GPU's IPC on average",
            metric="mean_secure_ipc_loss",
            mode="band",
            target=mean_loss,
            tolerance=0.08,
            grace=0.07,
            paper="65.9% mean IPC loss (Fig. 3)",
        ),
        Expectation(
            id="c1_zero_crypto_gap",
            claim="zero-latency crypto does not help: bandwidth, not AES latency",
            metric="zero_crypto_gap",
            mode="at_most",
            target=0.05,
            grace=0.05,
            paper="0_crypto ~= secureMem (Fig. 3)",
        ),
        Expectation(
            id="c1_perfect_mdc_recovers",
            claim="perfect metadata caches recover nearly all the loss",
            metric="perf_mdc_gmean",
            mode="at_least",
            target=0.95,
            grace=0.05,
            paper="perf_mdc ~ 1.0 (Fig. 3)",
        ),
        Expectation(
            id="c2_lbm_ipc_loss",
            claim="lbm is the worst case",
            metric="lbm_secure_ipc_loss",
            mode="band",
            target=lbm_loss,
            tolerance=0.10,
            grace=0.08,
            paper="91% IPC loss for lbm (Fig. 3)",
        ),
        Expectation(
            id="c2_lbm_worst_margin",
            # measured deviation: at the scaled substrate a few streaming
            # proxies (streamcluster, 2Dconvolution) land within ~3 points
            # of lbm's normalized IPC, so the calibrated claim is "at or
            # within 5 points of the worst case", not the strict minimum.
            claim="lbm is at (or near) the worst case",
            metric="lbm_worst_margin",
            mode="at_least",
            target=lbm_margin,
            grace=0.05,
            paper="lbm is the paper's maximum (Fig. 3)",
        ),
        Expectation(
            id="c3_separate_beats_unified",
            claim="separate metadata caches beat a unified one",
            metric="separate_minus_unified_gmean",
            mode="at_least",
            target=0.02,
            grace=0.02,
            paper="separate > unified on GPUs (Fig. 8)",
        ),
        Expectation(
            id="c4_direct_encryption_cheap",
            claim="direct encryption is cheap",
            metric="direct_40_ipc_loss",
            mode="at_most",
            target=direct_cheap,
            grace=0.08,
            paper="1.33% mean loss at 40 cycles (Fig. 15)",
        ),
        Expectation(
            id="c4_direct_beats_ctr_bmt",
            claim="direct encryption beats the counter-mode stack",
            metric="direct_minus_ctr_bmt_gmean",
            mode="at_least",
            target=0.05,
            grace=0.05,
            paper="direct ~free vs ctr+BMT -43.9% (Fig. 16)",
        ),
        Expectation(
            id="c5_one_aes_engine_suffices",
            claim="one AES engine per partition suffices",
            metric="aes1_over_aes2_gmean",
            mode="at_least",
            target=0.95,
            grace=0.03,
            paper="1 engine ~= 2 engines (Fig. 12)",
        ),
    ]


#: calibrated anchors: paper profile from the EXPERIMENTS.md regeneration
#: (secureMem Gmean 0.340 -> 66.0% loss, lbm 0.163 -> 0.837, direct_40
#: 0.965); smoke profile measured at the test_paper_conclusions scale
#: (mean loss 0.702, lbm 0.875, direct_40 loss 0.046, margin -0.054 —
#: the shorter windows bite streaming workloads harder, so the margin
#: floor is looser).
EXPECTATIONS: Dict[str, List[Expectation]] = {
    "paper": _expectations(mean_loss=0.659, lbm_loss=0.84, direct_cheap=0.10),
    "smoke": _expectations(
        mean_loss=0.70, lbm_loss=0.87, direct_cheap=0.12, lbm_margin=-0.10
    ),
}


# ---------------------------------------------------------------------------
# observed metrics
# ---------------------------------------------------------------------------

#: design columns the scorecard needs, beyond the insecure baseline.
_DESIGN_FACTORIES = {
    "secureMem": lambda: designs.secure_mem(0),
    "0_crypto": lambda: designs.zero_crypto(0),
    "perf_mdc": lambda: designs.perfect_mdc(0),
    "separate": designs.separate,
    "unified": designs.unified,
    "direct_40": lambda: designs.direct(40),
    "ctr_bmt": designs.ctr_bmt,
    "aes_1": lambda: designs.aes_engines(1),
    "aes_2": lambda: designs.aes_engines(2),
}


def collect_metrics(runner: Runner, partitions: int) -> Dict[str, dict]:
    """Run (or read from cache) every point the scorecard needs.

    Returns ``{"metrics": {...}, "sweeps": {design: {bench: norm_ipc}}}``;
    metric values are floats, with relation metrics derived from the
    normalized-IPC sweeps.
    """
    base = designs.build_gpu(None, partitions)
    configs = {
        name: designs.build_gpu(factory(), partitions)
        for name, factory in _DESIGN_FACTORIES.items()
    }
    runner.prefetch(
        (bench, config)
        for config in list(configs.values()) + [base]
        for bench in runner.benchmarks
    )
    sweeps = {
        name: runner.normalized_sweep(config, base) for name, config in configs.items()
    }

    secure = sweeps["secureMem"]
    metrics: Dict[str, float] = {
        "mean_secure_ipc_loss": 1.0 - secure["Gmean"],
        "zero_crypto_gap": abs(sweeps["0_crypto"]["Gmean"] - secure["Gmean"]),
        "perf_mdc_gmean": sweeps["perf_mdc"]["Gmean"],
        "separate_minus_unified_gmean": sweeps["separate"]["Gmean"]
        - sweeps["unified"]["Gmean"],
        "direct_40_ipc_loss": 1.0 - sweeps["direct_40"]["Gmean"],
        "direct_minus_ctr_bmt_gmean": sweeps["direct_40"]["Gmean"]
        - sweeps["ctr_bmt"]["Gmean"],
        "aes1_over_aes2_gmean": (
            sweeps["aes_1"]["Gmean"] / sweeps["aes_2"]["Gmean"]
            if sweeps["aes_2"]["Gmean"]
            else 0.0
        ),
    }
    if "lbm" in runner.benchmarks:
        metrics["lbm_secure_ipc_loss"] = 1.0 - secure["lbm"]
        others = [secure[b] for b in runner.benchmarks if b != "lbm"]
        # positive when lbm's normalized IPC is the strict minimum.
        metrics["lbm_worst_margin"] = min(others) - secure["lbm"]
    return {"metrics": metrics, "sweeps": sweeps}


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------


def evaluate(
    metrics: Dict[str, float], expectations: Sequence[Expectation]
) -> List[dict]:
    """One result row per expectation, in declaration order."""
    rows = []
    for exp in expectations:
        observed = metrics.get(exp.metric)
        rows.append(
            {
                "id": exp.id,
                "claim": exp.claim,
                "metric": exp.metric,
                "mode": exp.mode,
                "target": exp.target,
                "tolerance": exp.tolerance,
                "grace": exp.grace,
                "paper": exp.paper,
                "observed": round(observed, 6) if observed is not None else None,
                "status": exp.status(observed),
            }
        )
    return rows


def overall_status(rows: Sequence[dict]) -> str:
    """The worst row status (``pass`` when everything passed/skipped)."""
    worst = PASS
    for row in rows:
        if _SEVERITY[row["status"]] > _SEVERITY[worst]:
            worst = row["status"]
    return worst


def build_scorecard(
    runner: Runner,
    profile: str,
    partitions: int,
    expectations: Optional[Sequence[Expectation]] = None,
    metrics: Optional[Dict[str, float]] = None,
) -> dict:
    """The full ``scorecard.json`` document for one sweep.

    ``metrics`` can be injected (tests, pre-computed sweeps); otherwise
    the runner collects them — from its result cache when warm.
    """
    if expectations is None:
        expectations = EXPECTATIONS[profile]
    sweeps: Dict[str, dict] = {}
    if metrics is None:
        collected = collect_metrics(runner, partitions)
        metrics = collected["metrics"]
        sweeps = {
            name: {k: round(v, 6) for k, v in sweep.items()}
            for name, sweep in collected["sweeps"].items()
        }
    rows = evaluate(metrics, expectations)
    return {
        "schema": SCORECARD_SCHEMA,
        "profile": profile,
        "partitions": partitions,
        "horizon": runner.horizon,
        "warmup": runner.warmup,
        "benchmarks": list(runner.benchmarks),
        "host": host_metadata(),
        "points_simulated": runner.stats.points_simulated,
        "cache_hits": runner.stats.memory_hits + runner.stats.disk_hits,
        "metrics": {k: round(v, 6) for k, v in metrics.items()},
        "sweeps": sweeps,
        "results": rows,
        "status": overall_status(rows),
    }


_STATUS_MARK = {PASS: "PASS", WARN: "WARN", FAIL: "FAIL", SKIP: "skip"}


def render_scorecard(doc: dict) -> str:
    """The plain-text pass/warn/fail table ``repro scorecard`` prints."""
    rows = []
    for row in doc["results"]:
        observed = row["observed"]
        spec = {
            "band": f"~{row['target']:.3f} +/-{row['tolerance']:.3f}",
            "at_least": f">= {row['target']:.3f}",
            "at_most": f"<= {row['target']:.3f}",
        }[row["mode"]]
        rows.append(
            [
                _STATUS_MARK[row["status"]],
                row["id"],
                f"{observed:.3f}" if observed is not None else "-",
                spec,
                row["paper"],
            ]
        )
    table = render_table(["status", "check", "observed", "expected", "paper"], rows)
    head = (
        f"paper-fidelity scorecard — profile {doc['profile']} "
        f"({doc['partitions']} partitions, horizon {doc['horizon']:g}, "
        f"warmup {doc['warmup']:g})"
    )
    counts = {s: 0 for s in (PASS, WARN, FAIL, SKIP)}
    for row in doc["results"]:
        counts[row["status"]] += 1
    tail = (
        f"overall: {doc['status'].upper()} "
        f"({counts[PASS]} pass / {counts[WARN]} warn / {counts[FAIL]} fail"
        + (f" / {counts[SKIP]} skip" if counts[SKIP] else "")
        + f"; {doc['points_simulated']} simulated, {doc['cache_hits']} from cache)"
    )
    return f"{head}\n\n{table}\n\n{tail}"
