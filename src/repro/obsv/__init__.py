"""Sweep-level observability: run ledger, scorecard, diffing, dashboard.

The experiment layer answers "what IPC does this config get"; this
package answers the meta-questions around a sweep — what actually ran
(:mod:`repro.obsv.ledger`), whether the numbers still reproduce the
paper's conclusions (:mod:`repro.obsv.scorecard`), what moved between
two sweeps (:mod:`repro.obsv.diff`), and one self-contained HTML page
tying it all together (:mod:`repro.obsv.dashboard`).

The *runtime* half lives in :mod:`repro.obsv.metrics` (the live metric
registry and Prometheus exposition behind ``GET /metrics``),
:mod:`repro.obsv.top` (the ``repro top`` fleet view),
:mod:`repro.obsv.spans` (distributed-trace spans: W3C-style trace
context, JSONL/Chrome export, and a zero-cost NULL stub), and
:mod:`repro.obsv.logging` (the structured JSONL logger with trace/span
correlation).
"""

from repro.obsv.dashboard import build_dashboard
from repro.obsv.diff import diff_ledgers, render_diff
from repro.obsv.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    NULL_METRICS,
    parse_prometheus,
    render_prometheus,
    snapshot_value,
)
from repro.obsv.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    canonical_points,
    key_stats,
    ledger_points,
    point_key,
    read_ledger,
    summarize_ledger,
)
from repro.obsv.logging import NULL_LOG, NullLogger, StructuredLogger, read_log
from repro.obsv.spans import (
    NULL_SPANS,
    SPAN_SCHEMA,
    JsonlSpanSink,
    NullSpanRecorder,
    Span,
    SpanContext,
    SpanRecorder,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    read_spans,
    span_tree,
    spans_to_chrome,
    validate_links,
)
from repro.obsv.scorecard import (
    EXPECTATIONS,
    PROFILES,
    Expectation,
    build_scorecard,
    evaluate,
    overall_status,
    render_scorecard,
)

__all__ = [
    "EXPECTATIONS",
    "Expectation",
    "LEDGER_SCHEMA",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_LOG",
    "NULL_METRICS",
    "NULL_SPANS",
    "JsonlSpanSink",
    "NullLogger",
    "NullSpanRecorder",
    "PROFILES",
    "RunLedger",
    "SPAN_SCHEMA",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "StructuredLogger",
    "build_dashboard",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "read_log",
    "read_spans",
    "span_tree",
    "spans_to_chrome",
    "validate_links",
    "parse_prometheus",
    "render_prometheus",
    "snapshot_value",
    "build_scorecard",
    "canonical_points",
    "diff_ledgers",
    "evaluate",
    "key_stats",
    "ledger_points",
    "overall_status",
    "point_key",
    "read_ledger",
    "render_diff",
    "render_scorecard",
    "summarize_ledger",
]
