"""Sweep-level observability: run ledger, scorecard, diffing, dashboard.

The experiment layer answers "what IPC does this config get"; this
package answers the meta-questions around a sweep — what actually ran
(:mod:`repro.obsv.ledger`), whether the numbers still reproduce the
paper's conclusions (:mod:`repro.obsv.scorecard`), what moved between
two sweeps (:mod:`repro.obsv.diff`), and one self-contained HTML page
tying it all together (:mod:`repro.obsv.dashboard`).

The *runtime* half lives in :mod:`repro.obsv.metrics` (the live metric
registry and Prometheus exposition behind ``GET /metrics``) and
:mod:`repro.obsv.top` (the ``repro top`` fleet view).
"""

from repro.obsv.dashboard import build_dashboard
from repro.obsv.diff import diff_ledgers, render_diff
from repro.obsv.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    NULL_METRICS,
    parse_prometheus,
    render_prometheus,
    snapshot_value,
)
from repro.obsv.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    canonical_points,
    key_stats,
    ledger_points,
    point_key,
    read_ledger,
    summarize_ledger,
)
from repro.obsv.scorecard import (
    EXPECTATIONS,
    PROFILES,
    Expectation,
    build_scorecard,
    evaluate,
    overall_status,
    render_scorecard,
)

__all__ = [
    "EXPECTATIONS",
    "Expectation",
    "LEDGER_SCHEMA",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_METRICS",
    "PROFILES",
    "RunLedger",
    "build_dashboard",
    "parse_prometheus",
    "render_prometheus",
    "snapshot_value",
    "build_scorecard",
    "canonical_points",
    "diff_ledgers",
    "evaluate",
    "key_stats",
    "ledger_points",
    "overall_status",
    "point_key",
    "read_ledger",
    "render_diff",
    "render_scorecard",
    "summarize_ledger",
]
