"""Self-contained static HTML dashboard for one sweep.

``repro dashboard -o report.html`` renders everything the sweep-level
observability stack knows — heartbeat progress, the run ledger's outcome
and per-workload summaries, per-class traffic shares, bottleneck stalls,
the paper-fidelity scorecard, and the BENCH_* perf trajectory — into one
HTML file with **no external dependencies**: stdlib-only generation,
inline CSS/JS, inline SVG charts, no network fetches, no packages.  The
file can be attached to CI artifacts, mailed, or opened from disk.

Every section renders whether or not its input was provided (missing
inputs show "no data"), so consumers can assert on structure.  Colors
follow a validated palette with light and dark modes; status is never
conveyed by color alone (each badge carries a glyph and a word).
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obsv.ledger import ledger_points, summarize_ledger

#: section ids, in render order — the smoke test asserts all are present.
SECTIONS = (
    "summary",
    "progress",
    "timeline",
    "fleet",
    "scorecard",
    "ledger",
    "traffic",
    "bottleneck",
    "bench",
)

#: fixed categorical slot per traffic category (identity follows the
#: entity, never its rank; hues assigned in validated adjacent order).
_TRAFFIC_SLOTS = ("data", "ctr", "mac", "bmt", "wb")

_STYLE = """
:root {
  color-scheme: light dark;
}
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #eda100;
  --series-5: #e87ba4;
  --status-good: #0ca30c;
  --status-warning: #fab219;
  --status-critical: #d03b3b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--text-primary);
  background: var(--page);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #2c2c2a;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #c98500;
    --series-5: #d55181;
  }
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 14px; margin: 0 0 8px; color: var(--text-secondary);
               text-transform: uppercase; letter-spacing: 0.04em; }
.viz-root .subtitle { color: var(--text-secondary); margin: 0 0 20px; font-size: 13px; }
.viz-root section { background: var(--surface-1); border: 1px solid var(--border);
                    border-radius: 8px; padding: 16px; margin-bottom: 16px; }
.viz-root .tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.viz-root .tile { min-width: 130px; padding: 10px 14px; border: 1px solid var(--border);
                  border-radius: 6px; }
.viz-root .tile .label { font-size: 11px; color: var(--muted); text-transform: uppercase;
                         letter-spacing: 0.05em; }
.viz-root .tile .value { font-size: 22px; margin-top: 2px; }
.viz-root table { border-collapse: collapse; font-size: 13px; width: 100%; }
.viz-root th { text-align: left; color: var(--muted); font-weight: 500;
               border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0; }
.viz-root td { border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
               font-variant-numeric: tabular-nums; }
.viz-root .nodata { color: var(--muted); font-size: 13px; }
.viz-root .badge { display: inline-block; padding: 1px 8px; border-radius: 10px;
                   font-size: 12px; color: #ffffff; }
.viz-root .badge.pass { background: var(--status-good); }
.viz-root .badge.warn { background: var(--status-warning); color: #0b0b0b; }
.viz-root .badge.fail { background: var(--status-critical); }
.viz-root .badge.skip { background: var(--muted); }
.viz-root .swatch { display: inline-block; width: 10px; height: 10px;
                    border-radius: 2px; margin-right: 5px; vertical-align: baseline; }
.viz-root .legend { font-size: 12px; color: var(--text-secondary); margin-top: 6px; }
.viz-root .legend span { margin-right: 14px; }
.viz-root .barlabel { font-size: 12px; color: var(--text-secondary); }
.viz-root details { margin-top: 10px; }
.viz-root summary { cursor: pointer; color: var(--muted); font-size: 12px; }
.viz-root pre { font-size: 11px; overflow-x: auto; color: var(--text-secondary); }
.viz-root footer { color: var(--muted); font-size: 12px; margin-top: 8px; }
"""

_SCRIPT = """
document.addEventListener('keydown', function (e) {
  if (e.key !== 'e' || e.target.tagName === 'INPUT') return;
  var all = document.querySelectorAll('details');
  var open = Array.prototype.some.call(all, function (d) { return d.open; });
  all.forEach(function (d) { d.open = !open; });
});
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _tile(label: str, value: str, extra: str = "") -> str:
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{value}</div>{extra}</div>'
    )


def _badge(status: str) -> str:
    glyph = {"pass": "&#10003;", "warn": "!", "fail": "&#10007;", "skip": "&#8211;"}
    cls = status if status in ("pass", "warn", "fail") else "skip"
    return f'<span class="badge {cls}">{glyph.get(status, "?")} {_esc(status)}</span>'


def _table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    head = "".join(f"<th>{h}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>" for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _nodata(what: str) -> str:
    return f'<p class="nodata">no {_esc(what)} data provided</p>'


def _hbar(fraction: float, color_var: str, width: int = 360) -> str:
    """One thin horizontal bar (4px rounded data end, baseline-anchored)."""
    w = max(0.0, min(1.0, fraction)) * width
    return (
        f'<svg width="{width}" height="12" role="img" aria-hidden="true">'
        f'<rect x="0" y="2" width="{width}" height="8" rx="4" fill="var(--grid)"/>'
        f'<rect x="0" y="2" width="{w:.1f}" height="8" rx="4" fill="var({color_var})"/>'
        "</svg>"
    )


def _stacked_bar(shares: Dict[str, float], width: int = 560) -> str:
    """A single stacked share bar with 2px surface gaps between segments."""
    total = sum(shares.values())
    if total <= 0:
        return ""
    parts, x = [], 0.0
    gap = 2.0
    usable = width - gap * (len([v for v in shares.values() if v > 0]) - 1)
    for i, name in enumerate(_TRAFFIC_SLOTS):
        value = shares.get(name, 0.0)
        if value <= 0:
            continue
        w = usable * value / total
        parts.append(
            f'<rect x="{x:.1f}" y="0" width="{max(w, 1.0):.1f}" height="14" rx="3" '
            f'fill="var(--series-{i + 1})"/>'
        )
        x += w + gap
    legend = "".join(
        f'<span><span class="swatch" style="background:var(--series-{i + 1})"></span>'
        f"{_esc(name)} {100 * shares.get(name, 0.0) / total:.1f}%</span>"
        for i, name in enumerate(_TRAFFIC_SLOTS)
        if shares.get(name, 0.0) > 0
    )
    return (
        f'<svg width="{width}" height="14" role="img" '
        f'aria-label="traffic class shares">{"".join(parts)}</svg>'
        f'<div class="legend">{legend}</div>'
    )


# ---------------------------------------------------------------------------
# sections
# ---------------------------------------------------------------------------


def _section(section_id: str, title: str, body: str) -> str:
    return f'<section id="{section_id}"><h2>{_esc(title)}</h2>{body}</section>'


def _summary_section(
    summary: Optional[dict], heartbeat: List[dict], scorecard: Optional[dict]
) -> str:
    tiles = []
    if summary and summary["points"]:
        outcomes = summary["outcomes"]
        tiles.append(_tile("sweep points", f"{summary['points']}"))
        tiles.append(
            _tile(
                "outcomes",
                " / ".join(f"{v} {k}" for k, v in outcomes.items()) or "-",
            )
        )
        tiles.append(_tile("workloads", f"{len(summary['workloads'])}"))
        tiles.append(_tile("configs", f"{summary['configs']}"))
        tiles.append(_tile("sim time", f"{summary['sim_seconds']:.1f}s"))
        if summary["failures"]:
            tiles.append(_tile("failures", _badge("fail") + f" {len(summary['failures'])}"))
    done_line = next((l for l in reversed(heartbeat) if l.get("event") == "done"), None)
    if done_line:
        rate = done_line.get("points_per_s")
        if rate:
            tiles.append(_tile("throughput", f"{rate:.2f} pts/s"))
    if scorecard:
        tiles.append(_tile("fidelity", _badge(scorecard.get("status", "skip"))))
    if not tiles:
        return _nodata("sweep")
    return f'<div class="tiles">{"".join(tiles)}</div>'


def _progress_section(heartbeat: List[dict]) -> str:
    if not heartbeat:
        return _nodata("heartbeat")
    points = [l for l in heartbeat if l.get("event", "point") == "point"]
    done_line = next((l for l in reversed(heartbeat) if l.get("event") == "done"), None)
    last = done_line or (points[-1] if points else heartbeat[-1])
    done, total = last.get("done", 0), last.get("total", 0) or 1
    fraction = done / total
    status = "complete" if done_line else "in progress"
    if done_line and done_line.get("status") == "failed":
        status = f"failed ({done_line.get('failures', '?')} point(s))"
    eta = last.get("eta_s")
    detail = (
        f"{done}/{total} points &middot; {last.get('points_per_s', 0):.2f} pts/s"
        + (f" &middot; eta {eta:.0f}s" if isinstance(eta, (int, float)) and not done_line else "")
        + f" &middot; {_esc(status)}"
    )
    return (
        _hbar(fraction, "--series-1", width=560)
        + f'<div class="barlabel">{detail}</div>'
    )


def _fleet_section(fleet: Optional[List[dict]]) -> str:
    """Live workers, from snapshots persisted through the job store.

    Each entry is one :meth:`SQLiteJobStore.workers_seen` row: worker
    id, last-seen age, and the worker's metrics snapshot (see
    :mod:`repro.obsv.metrics`) holding its executed-point counters and
    throughput gauges.
    """
    if not fleet:
        return _nodata("fleet")
    from repro.obsv.metrics import snapshot_value

    rows = []
    for entry in fleet:
        snap = entry.get("metrics")
        simulated = snapshot_value(snap, "repro_worker_points_total", {"outcome": "simulated"})
        cached = snapshot_value(snap, "repro_worker_points_total", {"outcome": "cached"})
        failed = snapshot_value(snap, "repro_worker_points_total", {"outcome": "failed"})
        rate = snapshot_value(snap, "repro_worker_points_per_s")
        busy = snapshot_value(snap, "repro_worker_busy")
        age = entry.get("age_s")
        rows.append(
            [
                _esc(entry.get("worker", "?")),
                _badge("pass") + " busy" if busy else _badge("skip") + " idle",
                f"{simulated:.0f}",
                f"{cached:.0f}",
                f"{failed:.0f}" if failed else "0",
                f"{rate:.2f}",
                "-" if age is None else f"{age:.1f}s ago",
            ]
        )
    return _table(
        ["worker", "state", "simulated", "cached", "failed", "pts/s", "last seen"],
        rows,
    )


def _scorecard_section(scorecard: Optional[dict]) -> str:
    if not scorecard:
        return _nodata("scorecard")
    rows = [
        [
            _badge(r["status"]),
            _esc(r["id"]),
            "-" if r["observed"] is None else f"{r['observed']:.3f}",
            _esc(
                {
                    "band": f"~{r['target']:.3f} +/-{r['tolerance']:.3f}",
                    "at_least": f">= {r['target']:.3f}",
                    "at_most": f"<= {r['target']:.3f}",
                }[r["mode"]]
            ),
            _esc(r["paper"]),
        ]
        for r in scorecard.get("results", [])
    ]
    head = (
        f'<p class="barlabel">profile {_esc(scorecard.get("profile", "?"))} &middot; '
        f"overall {_badge(scorecard.get('status', 'skip'))}</p>"
    )
    return head + _table(["status", "check", "observed", "expected", "paper"], rows)


def _ledger_section(summary: Optional[dict], records: List[dict]) -> str:
    if not summary or not summary["points"]:
        return _nodata("ledger")
    parts = []
    if summary["failures"]:
        parts.append(
            "<h2>failed points</h2>"
            + _table(
                ["workload", "config", "error"],
                [
                    [_esc(f["workload"]), _esc((f["config"] or "")[:12]),
                     _esc(f["error"] or "?")]
                    for f in summary["failures"]
                ],
            )
        )
    points = [r for r in ledger_points(records) if r.get("stats")]
    cap = 40
    rows = [
        [
            _esc(r["workload"]),
            _esc((r.get("config") or "")[:12]),
            _esc(r.get("outcome", "?")),
            f"{r['stats']['ipc']:.2f}",
            f"{100 * r['stats']['bandwidth_utilization']:.1f}%",
            f"{100 * r['stats']['l2_miss_rate']:.1f}%",
            "-" if r.get("duration_s") is None else f"{r['duration_s']:.2f}s",
        ]
        for r in points[:cap]
    ]
    table = _table(
        ["workload", "config", "outcome", "ipc", "bw util", "l2 miss", "sim time"], rows
    )
    if len(points) > cap:
        table += (
            f'<p class="nodata">showing {cap} of {len(points)} completed points</p>'
        )
    parts.append(table)
    return "".join(parts)


def _traffic_section(records: List[dict], trace: Optional[dict]) -> str:
    shares: Dict[str, float] = {}
    source = ""
    if trace and trace.get("class_bytes"):
        # trace-export bytes use upper-case class names (DATA/COUNTER/...).
        alias = {"DATA": "data", "COUNTER": "ctr", "MAC": "mac", "TREE": "bmt"}
        for name, value in trace["class_bytes"].items():
            shares[alias.get(name, name.lower())] = float(value)
        source = "from trace export (DRAM bytes by class)"
    else:
        for record in ledger_points(records):
            txn = (record.get("stats") or {}).get("dram_txn") or {}
            shares["data"] = shares.get("data", 0.0) + txn.get("data_read", 0.0) + txn.get("data_write", 0.0)
            for name in ("ctr", "mac", "bmt", "wb"):
                shares[name] = shares.get(name, 0.0) + txn.get(name, 0.0)
        source = "from ledger (DRAM transactions by class, all points)"
    if not any(shares.values()):
        return _nodata("traffic")
    return _stacked_bar(shares) + f'<p class="barlabel">{_esc(source)}</p>'


#: lane colors cycle through the series palette by component order.
_TIMELINE_ROW_CAP = 60


def _timeline_section(spans: Optional[List[dict]]) -> str:
    """Distributed-trace Gantt: one bar per span, lanes colored by component.

    Spans come from the job store's ``spans`` table (see
    :mod:`repro.obsv.spans`); the x axis is wall-clock relative to the
    earliest span, so the HTTP submit, worker claim/execute, and
    per-point runner spans read as one correlated timeline.
    """
    if not spans:
        return _nodata("span")
    rows = sorted(
        (s for s in spans if isinstance(s.get("ts"), (int, float))),
        key=lambda s: (s["ts"], s.get("span_id") or ""),
    )
    if not rows:
        return _nodata("span")
    origin = rows[0]["ts"]
    extent = max(
        (s["ts"] - origin) + max(float(s.get("duration_s") or 0.0), 0.0)
        for s in rows
    ) or 1e-6
    components: List[str] = []
    for s in rows:
        comp = s.get("component") or "?"
        if comp not in components:
            components.append(comp)
    shown = rows[:_TIMELINE_ROW_CAP]
    width, label_w, row_h = 560, 190, 18
    height = row_h * len(shown) + 4
    parts = [
        f'<svg width="{width + label_w}" height="{height}" role="img" '
        f'aria-label="sweep span timeline">'
    ]
    for i, s in enumerate(shown):
        comp = s.get("component") or "?"
        color = f"--series-{components.index(comp) % 5 + 1}"
        y = row_h * i + 2
        x0 = label_w + (s["ts"] - origin) / extent * width
        dur = max(float(s.get("duration_s") or 0.0), 0.0)
        w = max(dur / extent * width, 2.0)
        x0 = min(x0, label_w + width - 2.0)
        name = s.get("name", "?")
        failed = s.get("status") == "error"
        fill = "var(--status-critical)" if failed else f"var({color})"
        parts.append(
            f'<text x="0" y="{y + 11}" font-size="11" '
            f'fill="var(--text-secondary)">{_esc(str(name)[:28])}</text>'
        )
        parts.append(
            f'<rect x="{x0:.1f}" y="{y}" width="{w:.1f}" height="12" rx="3" '
            f'fill="{fill}"><title>{_esc(name)} ({_esc(comp)}) '
            f"+{(s['ts'] - origin) * 1000:.1f}ms {dur * 1000:.1f}ms"
            f"{' [error]' if failed else ''}</title></rect>"
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span><span class="swatch" '
        f'style="background:var(--series-{i % 5 + 1})"></span>{_esc(comp)}</span>'
        for i, comp in enumerate(components)
    )
    trace_ids = sorted({s.get("trace_id") for s in rows if s.get("trace_id")})
    note = (
        f'<p class="barlabel">trace {_esc(trace_ids[0])} &middot; '
        f"{len(rows)} span(s) over {extent:.3f}s</p>"
        if trace_ids
        else ""
    )
    cap_note = (
        f'<p class="nodata">showing {len(shown)} of {len(rows)} spans</p>'
        if len(rows) > len(shown)
        else ""
    )
    return "".join(parts) + f'<div class="legend">{legend}</div>' + note + cap_note


def _bottleneck_section(bottleneck: Optional[dict]) -> str:
    if not bottleneck:
        return _nodata("bottleneck")
    from repro.analysis.bottleneck import dominant_overhead, stall_rows

    rows = stall_rows(bottleneck)
    if not rows:
        return _nodata("stall")
    top = max(r["cycles"] for r in rows) or 1.0
    dominant = dominant_overhead(bottleneck)
    body_rows = [
        [
            _esc(r["cause"]),
            f"{r['cycles']:.0f}",
            _hbar(r["cycles"] / top, "--series-2", width=220),
            _esc(r["label"]),
        ]
        for r in rows
    ]
    note = (
        f'<p class="barlabel">dominant overhead component: '
        f"<strong>{_esc(dominant)}</strong></p>"
        if dominant
        else ""
    )
    return _table(["stall cause", "cycles", "", "meaning"], body_rows) + note


def _bench_section(bench: Dict[str, dict]) -> str:
    if not bench:
        return _nodata("benchmark")
    rows = []
    for name in sorted(bench):
        doc = bench[name]
        telemetry = doc.get("telemetry", {})
        rows.append(
            [
                _esc(name),
                f"{doc.get('serial_points_per_second', 0):.2f}",
                f"{doc.get('events_per_second', 0):,.0f}" if doc.get("events_per_second") else "-",
                f"{doc.get('speedup'):.2f}x" if doc.get("speedup") else "-",
                f"{telemetry.get('overhead_pct', 0):.1f}%" if telemetry else "-",
                _esc((doc.get("host") or {}).get("platform", "-")),
            ]
        )
    return _table(
        ["file", "points/s", "events/s", "parallel speedup", "telemetry overhead", "host"],
        rows,
    )


# ---------------------------------------------------------------------------
# assembly
# ---------------------------------------------------------------------------


def build_dashboard(
    title: str = "Sweep observability report",
    ledger_records: Optional[List[dict]] = None,
    heartbeat_lines: Optional[List[dict]] = None,
    scorecard: Optional[dict] = None,
    bottleneck: Optional[dict] = None,
    trace: Optional[dict] = None,
    bench: Optional[Dict[str, dict]] = None,
    fleet: Optional[List[dict]] = None,
    spans: Optional[List[dict]] = None,
    sources: Optional[Dict[str, str]] = None,
) -> str:
    """Render the complete dashboard; every argument is optional."""
    records = ledger_records or []
    heartbeat = heartbeat_lines or []
    summary = summarize_ledger(records) if records else None

    bodies = {
        "summary": _summary_section(summary, heartbeat, scorecard),
        "progress": _progress_section(heartbeat),
        "timeline": _timeline_section(spans),
        "fleet": _fleet_section(fleet),
        "scorecard": _scorecard_section(scorecard),
        "ledger": _ledger_section(summary, records),
        "traffic": _traffic_section(records, trace),
        "bottleneck": _bottleneck_section(bottleneck),
        "bench": _bench_section(bench or {}),
    }
    titles = {
        "summary": "Sweep summary",
        "progress": "Sweep progress",
        "timeline": "Sweep timeline",
        "fleet": "Live fleet",
        "scorecard": "Paper-fidelity scorecard",
        "ledger": "Run ledger",
        "traffic": "Traffic by class",
        "bottleneck": "Bottleneck stalls",
        "bench": "BENCH_* trajectory",
    }
    sections = "".join(_section(s, titles[s], bodies[s]) for s in SECTIONS)

    provenance = ""
    if sources:
        items = "".join(
            f"<li>{_esc(k)}: <code>{_esc(v)}</code></li>" for k, v in sorted(sources.items())
        )
        provenance = f"<details><summary>inputs</summary><ul>{items}</ul></details>"

    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}</style>\n"
        '</head><body class="viz-root">\n'
        f"<h1>{_esc(title)}</h1>\n"
        '<p class="subtitle">Analyzing Secure Memory Architecture for GPUs '
        "&mdash; sweep-level observability (self-contained report; "
        "press <kbd>e</kbd> to toggle details)</p>\n"
        f"{sections}\n"
        f"<footer>{provenance}</footer>\n"
        f"<script>{_SCRIPT}</script>\n"
        "</body></html>\n"
    )


def load_json(path: Optional[str | Path]) -> Optional[dict]:
    """Best-effort JSON read; None for missing/unreadable files."""
    if not path:
        return None
    path = Path(path)
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text())
    except (ValueError, OSError):
        return None
    return doc if isinstance(doc, dict) else None


def load_jsonl(path: Optional[str | Path]) -> List[dict]:
    """Best-effort JSONL read; skips torn lines like the ledger reader."""
    if not path:
        return []
    path = Path(path)
    if not path.exists():
        return []
    out = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            out.append(record)
    return out
