"""The run ledger: a durable, append-only record of every sweep point.

A sweep that reproduces the paper is hundreds of ``(workload, config)``
simulation points; the ledger is the audit trail of what actually ran.
:class:`RunLedger` appends one schema-versioned JSON line per *point*
(config digest, workload, window, outcome, duration, key statistics,
telemetry-artifact path, and — for failed points — the exception string)
plus one ``sweep`` header line per writing process (host metadata).

Durability model — the same one the sharded result cache uses:

* **append-only** — records are never rewritten; every ``record_point``
  is a single ``write`` of one line to a file opened in append mode;
* **crash-safe** — the only damage a kill can inflict is a torn final
  line, which :func:`read_ledger` skips; everything that reached disk
  stays;
* **resume without duplicates** — a ledger opened over an existing file
  loads the point keys already present and silently skips re-recording
  them, so a killed sweep re-run against the same result cache ends with
  exactly one record per point;
* **order-independent** — records carry no sequence numbers, and
  :func:`canonical_points` strips the volatile fields (timestamps,
  durations, artifact paths), so a serial and a parallel run of the same
  sweep produce record-equivalent ledgers no matter which worker
  finished first.

The ledger is observability: a write failure warns and never fails the
sweep it observes.
"""

from __future__ import annotations

import json
import time
import warnings
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from repro.common.hostinfo import host_metadata

#: bump when a record's field set changes incompatibly.
LEDGER_SCHEMA = 1

#: point-record fields that vary run to run without the result changing.
#: trace ids are volatile by construction — every submit mints a fresh
#: trace — so traced and untraced sweeps stay record-equivalent.
VOLATILE_FIELDS = ("ts", "duration_s", "telemetry_dir", "trace_id", "span_id")

#: the outcomes a point record can carry.
OUTCOMES = ("simulated", "cached", "failed")


def point_key(workload: str, config: str, horizon: float, warmup: float) -> str:
    """The identity of one sweep point (matches the result-cache key)."""
    return f"{workload}:{config}:{horizon}:{warmup}"


def key_stats(result) -> dict:
    """The per-point statistics a ledger record carries.

    Deliberately small — full statistics trees and telemetry live in
    their own artifacts; the ledger keeps just what scorecards and diffs
    compare.
    """
    return {
        "ipc": result.ipc,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "bandwidth_utilization": result.bandwidth_utilization,
        "l2_miss_rate": result.l2_miss_rate,
        "counter_overflows": result.counter_overflows,
        "dram_txn": dict(result.dram_txn),
    }


class RunLedger:
    """Single-writer append-only JSONL ledger of sweep points."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._seen: Set[str] = set()
        self._header_written = False
        if self.path.exists():
            for record in read_ledger(self.path):
                if record.get("event") == "point":
                    self._seen.add(
                        point_key(
                            record.get("workload", ""),
                            record.get("config", ""),
                            record.get("horizon", 0),
                            record.get("warmup", 0),
                        )
                    )
            # resuming an existing ledger: headers from earlier sessions
            # are already on disk; this process adds its own lazily.

    def __contains__(self, key: str) -> bool:
        return key in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    # ------------------------------------------------------------------

    def record_point(
        self,
        workload: str,
        config: str,
        horizon: float,
        warmup: float,
        outcome: str,
        duration_s: Optional[float] = None,
        stats: Optional[dict] = None,
        telemetry_dir: Optional[str | Path] = None,
        error: Optional[str] = None,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
    ) -> bool:
        """Append one point record; returns False if the key was present.

        ``outcome`` is one of :data:`OUTCOMES`; ``stats`` is
        :func:`key_stats` output for completed points and None for failed
        ones, where ``error`` carries the exception string instead.
        ``trace_id``/``span_id`` join the record to its distributed-trace
        span; they are only written when a trace is live, so untraced
        ledgers (the golden-dump path) keep their exact field set.
        """
        key = point_key(workload, config, horizon, warmup)
        if key in self._seen:
            return False
        self._seen.add(key)
        record = {
            "schema": LEDGER_SCHEMA,
            "event": "point",
            "ts": time.time(),
            "workload": workload,
            "config": config,
            "horizon": horizon,
            "warmup": warmup,
            "outcome": outcome,
            "duration_s": round(duration_s, 6) if duration_s is not None else None,
            "stats": stats,
            "telemetry_dir": str(telemetry_dir) if telemetry_dir else None,
            "error": error,
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
            record["span_id"] = span_id
        self._append(record)
        return True

    def _append(self, record: dict) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            lines = ""
            if not self._header_written:
                self._header_written = True
                lines += json.dumps(
                    {
                        "schema": LEDGER_SCHEMA,
                        "event": "sweep",
                        "ts": time.time(),
                        "host": host_metadata(),
                    }
                ) + "\n"
            lines += json.dumps(record) + "\n"
            with open(self.path, "a") as fh:
                fh.write(lines)
        except OSError as exc:
            # observability must never fail the sweep it observes.
            warnings.warn(
                f"run ledger {self.path} not writable: {exc}", RuntimeWarning
            )


# ---------------------------------------------------------------------------
# readers
# ---------------------------------------------------------------------------


def read_ledger(path: str | Path) -> List[dict]:
    """Every intact record in file order; torn/blank lines are skipped.

    Missing and unreadable paths (including directories) read as empty
    rather than raising — callers that must distinguish "no ledger" from
    "empty ledger" check the path themselves (as the CLI does).
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        text = path.read_text()
    except OSError as exc:
        warnings.warn(f"unreadable ledger {path}: {exc}", RuntimeWarning)
        return []
    records: List[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn append from a killed run
        if isinstance(record, dict):
            records.append(record)
    return records


def ledger_points(records: Iterable[dict]) -> List[dict]:
    """Only the point records (headers and unknown events dropped)."""
    return [r for r in records if r.get("event") == "point"]


def canonical_points(records: Iterable[dict]) -> List[dict]:
    """Point records stripped of volatile fields, in a canonical order.

    Two sweeps over the same matrix are *record-equivalent* when their
    canonical points are equal — regardless of completion order, worker
    count, wall-clock, or where telemetry artifacts landed.
    """
    canon = []
    for record in ledger_points(records):
        slim = {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}
        canon.append(slim)
    canon.sort(key=lambda r: (r.get("workload", ""), r.get("config", ""),
                              str(r.get("horizon")), str(r.get("warmup"))))
    return canon


def summarize_ledger(records: Iterable[dict]) -> dict:
    """Per-sweep aggregate: outcome counts, coverage, failures, timing."""
    points = ledger_points(records)
    outcomes = Counter(r.get("outcome", "unknown") for r in points)
    durations = [r["duration_s"] for r in points if r.get("duration_s")]
    timestamps = [r["ts"] for r in points if r.get("ts")]
    failures = [
        {
            "workload": r.get("workload"),
            "config": r.get("config"),
            "error": r.get("error"),
        }
        for r in points
        if r.get("outcome") == "failed"
    ]
    ipcs: Dict[str, float] = {}
    for r in points:
        stats = r.get("stats") or {}
        if "ipc" in stats:
            ipcs.setdefault(r.get("workload", "?"), stats["ipc"])
    return {
        "points": len(points),
        "outcomes": dict(sorted(outcomes.items())),
        "workloads": sorted({r.get("workload", "?") for r in points}),
        "configs": len({r.get("config", "?") for r in points}),
        "failures": failures,
        "sim_seconds": round(sum(durations), 3),
        "first_ts": min(timestamps) if timestamps else None,
        "last_ts": max(timestamps) if timestamps else None,
        "schema_versions": sorted({r.get("schema", 0) for r in points}),
    }
