"""Structured JSONL logging with trace correlation.

One record per line::

    {"ts": 1754650000.123, "level": "info", "event": "http.request",
     "trace_id": "…", "span_id": "…", "method": "GET", "status": 200}

``ts``/``level``/``event`` always lead; ``trace_id``/``span_id`` are
stamped when the caller has an active span so a grep for one trace id
sweeps service access lines, worker lifecycle lines, and exported
spans in one pass.  The service's ``--access-log`` and the worker's
``--log`` both ride on this logger.

Like every ``repro.obsv`` facility the logger is passive (its own I/O
errors are swallowed, never raised into the serving path) and has a
zero-cost NULL stub (``NULL_LOG``) guarded by ``enabled``.

Long-running serves rotate by size: when the file would exceed
``max_bytes`` it is renamed to ``<path>.1`` (replacing any previous
rollover) and a fresh file starts, bounding disk use at roughly twice
``max_bytes``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

#: default rollover threshold — generous for CI, bounded for servers.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

LEVELS = ("debug", "info", "warning", "error")


class StructuredLogger:
    """Append structured records to a JSONL file with size rollover."""

    enabled = True

    def __init__(self, path: Any, max_bytes: int = DEFAULT_MAX_BYTES):
        self.path = os.fspath(path)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._size: Optional[int] = None
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    def log(self, event: str, level: str = "info",
            trace_id: Optional[str] = None, span_id: Optional[str] = None,
            **fields: Any) -> None:
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level if level in LEVELS else "info",
            "event": event,
        }
        if trace_id:
            record["trace_id"] = trace_id
        if span_id:
            record["span_id"] = span_id
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        data = line.encode("utf-8")
        try:
            with self._lock:
                self._roll_if_needed(len(data))
                with open(self.path, "ab") as handle:
                    handle.write(data)
                if self._size is not None:
                    self._size += len(data)
        except OSError:
            pass  # logging is passive; never fail the logged work.

    # -- rollover ---------------------------------------------------------

    def _roll_if_needed(self, incoming: int) -> None:
        if self.max_bytes <= 0:
            return
        if self._size is None:
            try:
                self._size = os.path.getsize(self.path)
            except OSError:
                self._size = 0
        if self._size and self._size + incoming > self.max_bytes:
            try:
                os.replace(self.path, self.path + ".1")
            except OSError:
                pass
            self._size = 0


class NullLogger:
    """Disabled logger: ``log`` is a no-op."""

    enabled = False
    path = None

    def log(self, event: str, level: str = "info",
            trace_id: Optional[str] = None, span_id: Optional[str] = None,
            **fields: Any) -> None:
        pass


NULL_LOG = NullLogger()


def read_log(path: Any) -> List[Dict[str, Any]]:
    """Read a structured log back (current file only, not rollovers);
    torn or foreign lines are skipped."""
    records: List[Dict[str, Any]] = []
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except FileNotFoundError:
        return []
    return records
