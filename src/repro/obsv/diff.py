"""Sweep diffing and regression detection over two run ledgers.

``repro diff A B`` answers the question every perf or refactoring PR
raises: *did any simulated number move?*  Points are joined across the
two ledgers (by full point key, or by workload when comparing different
configs), each key statistic is compared under a noise-aware relative
tolerance with a direction (lower IPC is a regression, fewer cycles an
improvement, neutral metrics just "changed"), and per-workload outliers
are flagged with a MAD-based robust z-score — a sweep-wide 1% shift is a
tolerance question, one workload moving 20% while the rest sit still is
an anomaly even when the mean hides it.

When both sweeps persisted latency telemetry artifacts, the per-point
``latency.json`` histograms are merged per sweep with the associative
:meth:`~repro.telemetry.latency.LogHistogram.merge_from` and the
end-to-end distributions compared — a regression in tail latency shows
up here even when IPC barely moves.

The simulator is deterministic, so two ledgers from identical code and
configs must diff clean: any flagged metric is a real behavior change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.report import render_table
from repro.obsv.ledger import ledger_points, read_ledger
from repro.telemetry.latency import HOP_E2E, LogHistogram

#: bump when the diff report's field set changes incompatibly.
DIFF_SCHEMA = 1

#: (metric, direction): +1 = higher is better, -1 = lower is better,
#: 0 = neutral (a change beyond tolerance is flagged, unsigned).
METRICS: Tuple[Tuple[str, int], ...] = (
    ("ipc", +1),
    ("cycles", -1),
    ("bandwidth_utilization", 0),
    ("l2_miss_rate", 0),
    ("dram_txn_total", 0),
)

#: default relative tolerance — the simulator is deterministic, so this
#: only absorbs float-formatting noise; raise it when diffing across
#: hosts or intentionally perturbed runs.
REL_TOL = 1e-9

#: robust z-score threshold for the MAD anomaly flagging.
MAD_K = 3.5

#: 1.4826 * MAD estimates sigma for normal data.
_MAD_SCALE = 1.4826


def _metric_values(record: dict) -> Optional[Dict[str, float]]:
    stats = record.get("stats")
    if not stats:
        return None
    values = {name: float(stats.get(name, 0.0)) for name, _sign in METRICS[:-1]}
    values["dram_txn_total"] = float(sum((stats.get("dram_txn") or {}).values()))
    return values


def _index(records: Iterable[dict], match: str) -> Dict[str, dict]:
    """Point records keyed for the join; later records win a key."""
    indexed: Dict[str, dict] = {}
    for record in ledger_points(records):
        if record.get("outcome") == "failed":
            continue
        if match == "workload":
            key = str(record.get("workload"))
        else:
            key = (
                f"{record.get('workload')}:{record.get('config')}:"
                f"{record.get('horizon')}:{record.get('warmup')}"
            )
        indexed[key] = record
    return indexed


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


def mad_outliers(
    deltas: Dict[str, float], k: float = MAD_K, floor: float = REL_TOL
) -> List[dict]:
    """Keys whose delta is a robust outlier among *deltas*.

    Uses the scaled median-absolute-deviation as the spread estimate;
    with zero spread (every point moved identically) any point deviating
    from the median by more than *floor* is an outlier.
    """
    if len(deltas) < 3:
        return []
    values = list(deltas.values())
    med = _median(values)
    mad = _median([abs(v - med) for v in values])
    sigma = _MAD_SCALE * mad
    out = []
    for key, value in deltas.items():
        deviation = abs(value - med)
        if deviation <= floor:
            continue
        score = deviation / sigma if sigma > 0.0 else float("inf")
        if score > k:
            out.append({"key": key, "delta": value, "median": med, "z": round(score, 2) if score != float("inf") else None})
    out.sort(key=lambda r: -abs(r["delta"]))
    return out


# ---------------------------------------------------------------------------
# latency-histogram comparison
# ---------------------------------------------------------------------------


def _merge_sweep_latency(records: Iterable[dict]) -> Optional[dict]:
    """Merge every point's persisted e2e latency histograms into one.

    Reads ``latency.json`` from each record's ``telemetry_dir`` (when it
    still exists) and folds the end-to-end queue+service histograms
    together with ``LogHistogram.merge_from`` — associative, so the
    result is independent of record order.
    """
    queue, service = LogHistogram(), LogHistogram()
    found = 0
    for record in ledger_points(records):
        directory = record.get("telemetry_dir")
        if not directory:
            continue
        path = Path(directory) / "latency.json"
        if not path.exists():
            continue
        try:
            doc = json.loads(path.read_text())
        except (ValueError, OSError):
            continue
        hops = ((doc.get("latency") or {}).get("hops") or {}).get(HOP_E2E, {})
        for per_class in hops.values():
            queue.merge_from(LogHistogram.from_dict(per_class["queue"]))
            service.merge_from(LogHistogram.from_dict(per_class["service"]))
        found += 1
    if not found:
        return None

    def summary(hist: LogHistogram) -> dict:
        return {
            "n": hist.n,
            "mean": round(hist.mean, 3),
            "p50": round(hist.quantile(0.50), 3),
            "p95": round(hist.quantile(0.95), 3),
            "p99": round(hist.quantile(0.99), 3),
        }

    return {"points": found, "queue": summary(queue), "service": summary(service)}


# ---------------------------------------------------------------------------
# the diff itself
# ---------------------------------------------------------------------------


def diff_ledgers(
    a_records: Iterable[dict],
    b_records: Iterable[dict],
    match: str = "key",
    rel_tol: float = REL_TOL,
    mad_k: float = MAD_K,
) -> dict:
    """Compare two sweeps' ledgers metric-by-metric.

    Returns the full report dict (see :data:`DIFF_SCHEMA`); ``match`` is
    ``"key"`` (same configs, e.g. before/after a code change) or
    ``"workload"`` (compare different configs workload-by-workload).
    """
    a_records, b_records = list(a_records), list(b_records)
    a_index = _index(a_records, match)
    b_index = _index(b_records, match)
    shared = sorted(set(a_index) & set(b_index))

    comparisons: List[dict] = []
    regressions: List[dict] = []
    improvements: List[dict] = []
    ipc_deltas: Dict[str, float] = {}
    for key in shared:
        a_values = _metric_values(a_index[key])
        b_values = _metric_values(b_index[key])
        if a_values is None or b_values is None:
            continue
        for name, sign in METRICS:
            a_value, b_value = a_values[name], b_values[name]
            base = max(abs(a_value), 1e-12)
            rel = (b_value - a_value) / base
            if name == "ipc":
                ipc_deltas[key] = rel
            if abs(rel) <= rel_tol:
                continue
            row = {
                "key": key,
                "metric": name,
                "a": a_value,
                "b": b_value,
                "rel_delta": round(rel, 6),
            }
            if sign == 0:
                row["flag"] = "change"
                comparisons.append(row)
            elif rel * sign < 0:
                row["flag"] = "regression"
                regressions.append(row)
            else:
                row["flag"] = "improvement"
                improvements.append(row)

    anomalies = mad_outliers(ipc_deltas, k=mad_k, floor=rel_tol)

    latency_a = _merge_sweep_latency(a_records)
    latency_b = _merge_sweep_latency(b_records)
    latency = None
    if latency_a and latency_b:
        latency = {"a": latency_a, "b": latency_b}

    return {
        "schema": DIFF_SCHEMA,
        "match": match,
        "rel_tol": rel_tol,
        "points_compared": len(shared),
        "only_in_a": sorted(set(a_index) - set(b_index)),
        "only_in_b": sorted(set(b_index) - set(a_index)),
        "changes": comparisons,
        "regressions": regressions,
        "improvements": improvements,
        "anomalies": anomalies,
        "latency": latency,
        "identical": not (comparisons or regressions or improvements),
    }


def render_diff(report: dict) -> str:
    """The plain-text ``repro diff`` report."""
    sections: List[str] = []
    head = (
        f"{report['points_compared']} points compared "
        f"(match by {report['match']}, rel tol {report['rel_tol']:g}); "
        f"{len(report['only_in_a'])} only in A, "
        f"{len(report['only_in_b'])} only in B"
    )
    sections.append(head)

    def table(rows: List[dict], title: str) -> None:
        if not rows:
            return
        sections.append(
            f"{title}\n"
            + render_table(
                ["point", "metric", "A", "B", "delta"],
                [
                    [
                        r["key"], r["metric"], f"{r['a']:.6g}", f"{r['b']:.6g}",
                        f"{100 * r['rel_delta']:+.2f}%",
                    ]
                    for r in rows
                ],
            )
        )

    table(report["regressions"], "regressions")
    table(report["improvements"], "improvements")
    table(report["changes"], "neutral changes")

    if report["anomalies"]:
        sections.append(
            "per-workload anomalies (MAD outliers on IPC delta)\n"
            + render_table(
                ["point", "ipc delta", "sweep median", "robust z"],
                [
                    [
                        r["key"], f"{100 * r['delta']:+.2f}%",
                        f"{100 * r['median']:+.2f}%",
                        "inf" if r["z"] is None else f"{r['z']:.1f}",
                    ]
                    for r in report["anomalies"]
                ],
            )
        )

    latency = report.get("latency")
    if latency:
        rows = []
        for side in ("a", "b"):
            for part in ("queue", "service"):
                s = latency[side][part]
                rows.append(
                    [
                        side.upper(), part, f"{s['n']}", f"{s['mean']:.1f}",
                        f"{s['p50']:.1f}", f"{s['p95']:.1f}", f"{s['p99']:.1f}",
                    ]
                )
        sections.append(
            "merged e2e latency (all persisted points)\n"
            + render_table(["sweep", "part", "n", "mean", "p50", "p95", "p99"], rows)
        )

    verdict = (
        "sweeps are metric-identical"
        if report["identical"]
        else f"{len(report['regressions'])} regression(s), "
        f"{len(report['improvements'])} improvement(s), "
        f"{len(report['changes'])} neutral change(s), "
        f"{len(report['anomalies'])} anomaly(ies)"
    )
    sections.append(verdict)
    return "\n\n".join(sections)
