"""Distributed spans: one trace across service, store, workers, simulator.

A *span* is a named, timed unit of work (an HTTP request, a job claim,
one point's simulation) carrying a ``trace_id`` shared by every span in
the same logical operation and a ``parent_id`` linking it to the span
that caused it.  The sweep service mints a trace at submit time, the
store persists it with the sweep, workers inherit it from the job row,
and the runner hangs per-point spans underneath — so ``repro spans``
can render one merged timeline of request → claim → execute → simulate.

Context crosses process boundaries as a W3C-``traceparent``-style
string (``00-<32 hex trace>-<16 hex span>-<flags>``), which survives
HTTP headers, JSON bodies, and SQLite columns alike.

Design points, mirroring the rest of ``repro.obsv``:

* **Zero cost when off.**  ``NULL_SPANS`` is a module-level singleton
  whose ``start_span``/``record`` are no-ops returning a reusable
  no-op span; call sites guard on ``recorder.enabled`` so the disabled
  path adds only attribute checks and golden dumps stay bit-identical.
* **Wall clock for position, monotonic clock for duration.**  Spans
  are placed on the timeline with ``time.time()`` but timed with
  ``time.perf_counter()`` so durations never go negative under NTP
  steps.
* **Passive.**  Sinks swallow their own I/O errors; tracing must never
  fail a sweep.

Export is either JSONL (one record per line, torn-tail tolerant like
the run ledger) or the Chrome ``trace_event`` format consumed by
Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

#: bump when the span record shape changes incompatibly.
SPAN_SCHEMA = 1

#: the only traceparent version this codec understands.
_TP_VERSION = "00"

_HEX = set("0123456789abcdef")


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-digit span id."""
    return uuid.uuid4().hex[:16]


def _is_hex(text: str, width: int) -> bool:
    return len(text) == width and set(text) <= _HEX


class SpanContext:
    """The portable part of a span: just ids and a sampled flag."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def traceparent(self) -> str:
        """Serialize as ``00-<trace>-<span>-<flags>``."""
        flags = "01" if self.sampled else "00"
        return f"{_TP_VERSION}-{self.trace_id}-{self.span_id}-{flags}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext({self.traceparent()!r})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SpanContext)
                and other.trace_id == self.trace_id
                and other.span_id == self.span_id
                and other.sampled == self.sampled)


def format_traceparent(trace_id: str, span_id: str,
                       sampled: bool = True) -> str:
    return SpanContext(trace_id, span_id, sampled).traceparent()


def parse_traceparent(text: Optional[str]) -> Optional[SpanContext]:
    """Decode a traceparent string; ``None`` on anything malformed.

    Malformed context is *dropped*, not raised: a worker meeting a
    corrupt traceparent should simply run untraced, exactly like the
    W3C processing model.
    """
    if not text or not isinstance(text, str):
        return None
    parts = text.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if version != _TP_VERSION:
        return None
    if not _is_hex(trace_id, 32) or set(trace_id) == {"0"}:
        return None
    if not _is_hex(span_id, 16) or set(span_id) == {"0"}:
        return None
    if not _is_hex(flags, 2):
        return None
    return SpanContext(trace_id, span_id, sampled=bool(int(flags, 16) & 1))


def _parent_context(parent: Any) -> Optional[SpanContext]:
    """Coerce Span | SpanContext | traceparent str | None to a context."""
    if parent is None:
        return None
    if isinstance(parent, SpanContext):
        return parent
    if isinstance(parent, Span):
        return parent.context()
    if isinstance(parent, str):
        return parse_traceparent(parent)
    return None


class Span:
    """A live span.  Use as a context manager or call ``end()``.

    Instant events (``event()``) ride inside the span record — lease
    heartbeats, cache decisions — and become Chrome ``i`` events on
    export.
    """

    __slots__ = ("name", "component", "trace_id", "span_id", "parent_id",
                 "ts", "attrs", "events", "status", "duration_s",
                 "_t0", "_recorder", "_done")

    def __init__(self, recorder: "SpanRecorder", name: str, component: str,
                 trace_id: str, parent_id: Optional[str],
                 attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.component = component
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.ts = time.time()
        self.attrs = dict(attrs) if attrs else {}
        self.events: List[Dict[str, Any]] = []
        self.status = "ok"
        self.duration_s: Optional[float] = None
        self._t0 = time.perf_counter()
        self._recorder = recorder
        self._done = False

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def traceparent(self) -> str:
        return self.context().traceparent()

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant event inside this span."""
        record: Dict[str, Any] = {"name": name, "ts": time.time()}
        if attrs:
            record["attrs"] = attrs
        self.events.append(record)

    def end(self, status: Optional[str] = None) -> None:
        if self._done:
            return
        self._done = True
        if status is not None:
            self.status = status
        self.duration_s = time.perf_counter() - self._t0
        self._recorder._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end(status="error" if exc_type is not None else None)

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "schema": SPAN_SCHEMA,
            "event": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "component": self.component,
            "ts": self.ts,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": self.attrs,
            "events": self.events,
        }
        return record


class _NullSpan:
    """Reusable no-op span: absorbs every call the real one accepts."""

    __slots__ = ()
    name = ""
    component = ""
    trace_id = None
    span_id = None
    parent_id = None
    status = "ok"
    duration_s = None
    attrs: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []

    def context(self) -> None:
        return None

    def traceparent(self) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def end(self, status: Optional[str] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Creates spans and routes finished records to a sink.

    ``sink`` is any callable taking one record dict — a
    :class:`JsonlSpanSink`, a store-backed closure, a list's
    ``append`` — or ``None`` to time spans without persisting them
    (the service uses that for request spans whose ids only feed the
    access log).
    """

    enabled = True

    def __init__(self, sink: Optional[Callable[[Dict[str, Any]], None]] = None):
        self.sink = sink

    def start_span(self, name: str, component: str = "",
                   parent: Any = None, trace_id: Optional[str] = None,
                   attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span.  ``parent`` may be a Span, SpanContext,
        traceparent string, or None; an explicit ``trace_id`` wins,
        otherwise the parent's is inherited, otherwise a fresh trace
        starts here."""
        ctx = _parent_context(parent)
        resolved = trace_id or (ctx.trace_id if ctx else None) or new_trace_id()
        parent_id = ctx.span_id if ctx else None
        return Span(self, name, component, resolved, parent_id, attrs)

    def record(self, name: str, component: str = "", parent: Any = None,
               trace_id: Optional[str] = None, ts: Optional[float] = None,
               duration_s: float = 0.0, status: str = "ok",
               attrs: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Emit a pre-measured span in one shot (for work timed
        externally, e.g. a claim RPC or a pool worker's elapsed)."""
        ctx = _parent_context(parent)
        resolved = trace_id or (ctx.trace_id if ctx else None) or new_trace_id()
        record: Dict[str, Any] = {
            "schema": SPAN_SCHEMA,
            "event": "span",
            "trace_id": resolved,
            "span_id": new_span_id(),
            "parent_id": ctx.span_id if ctx else None,
            "name": name,
            "component": component,
            "ts": time.time() if ts is None else ts,
            "duration_s": duration_s,
            "status": status,
            "attrs": dict(attrs) if attrs else {},
            "events": [],
        }
        self._emit(record)
        return record

    def _finish(self, span: Span) -> None:
        self._emit(span.to_record())

    def _emit(self, record: Dict[str, Any]) -> None:
        if self.sink is None:
            return
        try:
            self.sink(record)
        except Exception:
            pass  # tracing is passive; never fail the traced work.


class NullSpanRecorder:
    """The disabled recorder: every operation is a no-op."""

    enabled = False
    sink = None

    def start_span(self, name: str, component: str = "", parent: Any = None,
                   trace_id: Optional[str] = None,
                   attrs: Optional[Dict[str, Any]] = None) -> _NullSpan:
        return NULL_SPAN

    def record(self, *args: Any, **kwargs: Any) -> None:
        return None

    def _finish(self, span: Any) -> None:
        pass


NULL_SPANS = NullSpanRecorder()


class JsonlSpanSink:
    """Append span records to a JSONL file (one line per record)."""

    def __init__(self, path: Any):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    def __call__(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")


def read_spans(path: Any) -> List[Dict[str, Any]]:
    """Read a span JSONL file; a torn final line (crash mid-write) is
    skipped, same contract as ``read_ledger``."""
    records: List[Dict[str, Any]] = []
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except FileNotFoundError:
        return []
    return records


# ---------------------------------------------------------------------------
# export + rendering
# ---------------------------------------------------------------------------


def _component_lane(record: Dict[str, Any]) -> str:
    return record.get("component") or "unknown"


def spans_to_chrome(records: Sequence[Dict[str, Any]],
                    meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Convert span records to a Chrome ``trace_event`` document.

    Each component (service, worker:<id>, runner, …) gets its own lane
    (tid); spans become ``X`` complete events placed at wall-clock
    microseconds relative to the earliest span, and instant events
    become ``i`` events inside their parent's lane.  The result loads
    directly in Perfetto / ``chrome://tracing``.
    """
    events: List[Dict[str, Any]] = []
    lanes: Dict[str, int] = {}

    def lane(record: Dict[str, Any]) -> int:
        name = _component_lane(record)
        if name not in lanes:
            tid = len(lanes) + 1
            lanes[name] = tid
            events.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                "args": {"name": name},
            })
        return lanes[name]

    starts = [r["ts"] for r in records if isinstance(r.get("ts"), (int, float))]
    origin = min(starts) if starts else 0.0

    for record in sorted(records, key=lambda r: (r.get("ts") or 0.0)):
        ts = record.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        tid = lane(record)
        duration = record.get("duration_s") or 0.0
        args = {
            "trace_id": record.get("trace_id"),
            "span_id": record.get("span_id"),
            "parent_id": record.get("parent_id"),
            "status": record.get("status"),
        }
        args.update(record.get("attrs") or {})
        events.append({
            "name": record.get("name", "span"),
            "cat": _component_lane(record),
            "ph": "X",
            "pid": 0,
            "tid": tid,
            "ts": round((ts - origin) * 1e6, 3),
            "dur": round(duration * 1e6, 3),
            "args": args,
        })
        for instant in record.get("events") or []:
            its = instant.get("ts")
            if not isinstance(its, (int, float)):
                continue
            events.append({
                "name": instant.get("name", "event"),
                "cat": _component_lane(record),
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": tid,
                "ts": round((its - origin) * 1e6, 3),
                "args": dict(instant.get("attrs") or {},
                             span_id=record.get("span_id")),
            })

    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": SPAN_SCHEMA, "origin_ts": origin},
    }
    if meta:
        doc["otherData"].update(meta)
    return doc


def span_tree(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Render span records as indented text lines, children under
    parents, siblings in start order.  Orphans (parent span never
    recorded, e.g. a store-only submission) surface as roots."""
    by_id = {r.get("span_id"): r for r in records if r.get("span_id")}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for record in records:
        parent = record.get("parent_id")
        if parent not in by_id:
            parent = None  # orphan → root
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r.get("ts") or 0.0))

    starts = [r["ts"] for r in records if isinstance(r.get("ts"), (int, float))]
    origin = min(starts) if starts else 0.0
    lines: List[str] = []

    def walk(record: Dict[str, Any], depth: int) -> None:
        offset = (record.get("ts") or origin) - origin
        duration = record.get("duration_s") or 0.0
        status = record.get("status", "ok")
        flag = "" if status == "ok" else f"  [{status}]"
        lines.append(
            f"{'  ' * depth}{record.get('name', 'span')}"
            f"  ({_component_lane(record)})"
            f"  +{offset * 1e3:.1f}ms  {duration * 1e3:.2f}ms{flag}"
        )
        for child in children.get(record.get("span_id"), []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return lines


def validate_links(
    records: Iterable[Dict[str, Any]],
    roots: Optional[Iterable[str]] = None,
) -> List[str]:
    """Return human-readable problems: mixed trace ids or dangling
    parents.  Empty list means the trace is internally consistent.

    ``roots`` names span ids that are legitimate parents despite having
    no record of their own — e.g. the root span a store-direct
    ``submit_sweep`` mints without an HTTP request span to persist.
    """
    records = list(records)
    problems: List[str] = []
    traces = {r.get("trace_id") for r in records if r.get("trace_id")}
    if len(traces) > 1:
        problems.append(f"multiple trace ids in one export: {sorted(traces)}")
    ids = {r.get("span_id") for r in records} | set(roots or ())
    for record in records:
        parent = record.get("parent_id")
        if parent and parent not in ids:
            problems.append(
                f"span {record.get('span_id')} ({record.get('name')}) has "
                f"unrecorded parent {parent}"
            )
    return problems
