"""Host provenance metadata shared by benchmarks and the run ledger.

A throughput number or a sweep record only means something when the
machine (and its load) that produced it is known; every durable artifact
that carries performance data embeds this dict alongside the numbers.
"""

from __future__ import annotations

import os
import platform


def host_metadata() -> dict:
    """What machine produced an artifact — for judging comparability.

    A points/s delta between two benchmark files (or two sweep ledgers)
    only means something when the host and its load were comparable;
    record both alongside the numbers.
    """
    meta = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    if hasattr(os, "getloadavg"):
        try:
            meta["loadavg"] = [round(x, 2) for x in os.getloadavg()]
        except OSError:
            pass
    return meta
