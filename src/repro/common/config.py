"""Configuration dataclasses mirroring Tables I-III of the paper.

``GpuConfig.paper_baseline()`` reproduces Table I exactly.  Experiments use
``GpuConfig.scaled()`` which keeps every per-partition parameter and the
SM-to-partition ratio, but instantiates fewer SMs/partitions so that a Python
event simulation finishes in seconds per data point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.common import params


class EncryptionMode(enum.Enum):
    """Memory-encryption approach (Section II-C, Fig. 2)."""

    NONE = "none"
    COUNTER = "counter"
    DIRECT = "direct"


class IntegrityMode(enum.Enum):
    """Level of integrity protection layered on top of encryption."""

    NONE = "none"
    #: BMT over the counters only (counter-mode confidentiality requirement).
    BMT = "bmt"
    #: MACs over ciphertext (data tamper detection), no tree.
    MAC = "mac"
    #: MACs plus a tree (BMT over counters in counter-mode, MT over MACs in
    #: direct mode) — the full protection of Section VI-C.
    MAC_TREE = "mac_tree"


class MetadataKind(enum.Enum):
    """The three kinds of security metadata cached on chip."""

    COUNTER = "ctr"
    MAC = "mac"
    TREE = "bmt"


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative, optionally sectored, cache."""

    size_bytes: int
    line_bytes: int = params.CACHE_LINE_BYTES
    associativity: int = 8
    sectored: bool = False
    sector_bytes: int = params.SECTOR_BYTES
    num_mshrs: int = 64
    mshr_merge_cap: int = 64
    #: allocate-on-fill (the paper's metadata-cache policy) vs allocate-on-miss.
    allocate_on_fill: bool = False
    hit_latency: int = 30

    def __post_init__(self) -> None:
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a whole number of lines")
        if self.sectored and self.line_bytes % self.sector_bytes:
            raise ValueError("line size must be a whole number of sectors")
        if self.num_sets < 1:
            raise ValueError("cache must have at least one set")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.associativity)

    @property
    def sectors_per_line(self) -> int:
        return self.line_bytes // self.sector_bytes if self.sectored else 1


@dataclass(frozen=True)
class MetadataCacheConfig:
    """Table III: per-partition metadata cache organization."""

    size_bytes: int = params.DEFAULT_METADATA_CACHE_SIZE
    num_mshrs: int = params.DEFAULT_METADATA_MSHRS
    mshr_merge_cap: int = params.MSHR_MERGE_CAP_MAC
    hit_latency: int = 2

    def to_cache_config(self) -> CacheConfig:
        #: metadata caches are small and fully usable: use high associativity
        #: so a 2KB cache is 16-way (single set), as tiny dedicated caches are.
        lines = self.size_bytes // params.CACHE_LINE_BYTES
        return CacheConfig(
            size_bytes=self.size_bytes,
            line_bytes=params.CACHE_LINE_BYTES,
            associativity=min(16, lines),
            sectored=False,
            num_mshrs=self.num_mshrs,
            mshr_merge_cap=self.mshr_merge_cap,
            allocate_on_fill=True,
            hit_latency=self.hit_latency,
        )


@dataclass(frozen=True)
class DramConfig:
    """Per-partition GDDR channel model.

    Write accesses occupy the channel but complete immediately for the
    requester (a write queue drained at channel bandwidth).  ``efficiency``
    models row conflicts and read/write turnaround: achieved bandwidth tops
    out at ``efficiency * peak``, which is why the paper's most saturated
    workloads report ~80% utilization rather than 100%.
    """

    #: total GPU bandwidth divided by partitions, in GB/s.
    bandwidth_gbps: float = params.PAPER_DRAM_BANDWIDTH_GBPS / params.PAPER_NUM_PARTITIONS
    #: fixed access latency (row access + transfer + controller), core cycles.
    access_latency: int = 220
    #: fraction of peak bandwidth achievable by real access streams.
    efficiency: float = 0.85
    #: "simple" = fixed latency + efficiency-discounted bandwidth (default,
    #: what the experiments are calibrated on); "banked" = per-bank
    #: row-buffer model where efficiency emerges from row conflicts.
    model: str = "simple"
    num_banks: int = 16
    row_bytes: int = 2048
    #: core cycles for a row-buffer hit / miss (activate + precharge).
    row_hit_latency: int = 160
    row_miss_latency: int = 340

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if self.model not in ("simple", "banked"):
            raise ValueError(f"unknown DRAM model {self.model!r}")
        if self.num_banks < 1 or self.row_bytes < params.SECTOR_BYTES:
            raise ValueError("banked model needs >=1 bank and a sane row size")

    def bytes_per_core_cycle(self, core_clock_mhz: float) -> float:
        return self.bandwidth_gbps * 1e9 / (core_clock_mhz * 1e6)


@dataclass(frozen=True)
class SecureMemoryConfig:
    """The secure-memory engine in each memory controller (Section IV)."""

    encryption: EncryptionMode = EncryptionMode.COUNTER
    integrity: IntegrityMode = IntegrityMode.MAC_TREE
    aes_engines: int = params.DEFAULT_AES_ENGINES_PER_PARTITION
    aes_latency: int = params.DEFAULT_AES_LATENCY
    mac_latency: int = params.DEFAULT_MAC_LATENCY
    #: zero both crypto latencies (the ``0_crypto`` design of Table V).
    zero_crypto_latency: bool = False
    #: perfect metadata caches: every access hits, no writebacks (``perf_mdc``).
    perfect_metadata_cache: bool = False
    #: unbounded metadata caches: only cold misses (``large_mdc``).
    infinite_metadata_cache: bool = False
    #: one unified metadata cache instead of three separate ones (Section V-D).
    unified_metadata_cache: bool = False
    #: supply data before integrity checks finish (Section IV; state of the
    #: art on CPUs).  False = block loads on MAC/tree verification.
    speculative_verification: bool = True
    #: update a tree parent only when its dirty child is evicted (Section
    #: IV).  False = eager: every counter/MAC write touches its parent.
    lazy_update: bool = True
    #: fraction of the protected range actually covered by the secure path
    #: (selective encryption in the spirit of Zuo et al.; 1.0 = everything).
    protected_fraction: float = 1.0
    counter_cache: MetadataCacheConfig = field(
        default_factory=lambda: MetadataCacheConfig(
            mshr_merge_cap=params.MSHR_MERGE_CAP_COUNTER
        )
    )
    mac_cache: MetadataCacheConfig = field(
        default_factory=lambda: MetadataCacheConfig(
            mshr_merge_cap=params.MSHR_MERGE_CAP_MAC
        )
    )
    tree_cache: MetadataCacheConfig = field(
        default_factory=lambda: MetadataCacheConfig(
            mshr_merge_cap=params.MSHR_MERGE_CAP_BMT
        )
    )
    unified_cache: MetadataCacheConfig = field(
        default_factory=lambda: MetadataCacheConfig(
            size_bytes=params.UNIFIED_METADATA_CACHE_SIZE,
            num_mshrs=params.UNIFIED_METADATA_MSHRS,
        )
    )
    protected_bytes: int = params.PROTECTED_MEMORY_BYTES

    def __post_init__(self) -> None:
        if not 0.0 <= self.protected_fraction <= 1.0:
            raise ValueError("protected_fraction must be in [0, 1]")

    @property
    def enabled(self) -> bool:
        return self.encryption is not EncryptionMode.NONE or (
            self.integrity is not IntegrityMode.NONE
        )

    @property
    def uses_counters(self) -> bool:
        return self.encryption is EncryptionMode.COUNTER

    @property
    def uses_macs(self) -> bool:
        return self.integrity in (IntegrityMode.MAC, IntegrityMode.MAC_TREE)

    @property
    def uses_tree(self) -> bool:
        if self.encryption is EncryptionMode.COUNTER:
            return self.integrity in (IntegrityMode.BMT, IntegrityMode.MAC_TREE)
        return self.integrity is IntegrityMode.MAC_TREE

    def with_metadata_cache_size(self, size_bytes: int) -> "SecureMemoryConfig":
        """Return a copy with every separate metadata cache set to *size_bytes*."""
        return replace(
            self,
            counter_cache=replace(self.counter_cache, size_bytes=size_bytes),
            mac_cache=replace(self.mac_cache, size_bytes=size_bytes),
            tree_cache=replace(self.tree_cache, size_bytes=size_bytes),
        )

    def with_metadata_mshrs(self, num_mshrs: int) -> "SecureMemoryConfig":
        """Return a copy with every metadata cache using *num_mshrs* MSHRs."""
        return replace(
            self,
            counter_cache=replace(self.counter_cache, num_mshrs=num_mshrs),
            mac_cache=replace(self.mac_cache, num_mshrs=num_mshrs),
            tree_cache=replace(self.tree_cache, num_mshrs=num_mshrs),
            unified_cache=replace(self.unified_cache, num_mshrs=num_mshrs),
        )


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability knobs for the :mod:`repro.telemetry` subsystem.

    Disabled by default: the simulator runs with no-op tracing stubs and no
    sampler events, so timing and statistics are bit-identical to a build
    without telemetry.  The block is deliberately excluded from the result
    cache key (``repro.experiments.runner.config_key``) because it can
    never affect simulated time.
    """

    enabled: bool = False
    #: record typed events (request/cache/MSHR/DRAM) into the ring buffer.
    trace_events: bool = True
    #: bounded event ring: oldest events are dropped past this many.
    ring_capacity: int = 65536
    #: cycles between sampler epochs (gauge snapshots); 0 disables sampling.
    sample_every: float = 500.0
    #: hard cap on sampler rows, a runaway guard for huge horizons.
    max_samples: int = 100_000
    #: per-hop latency histograms and stall accounting (repro bottleneck).
    latency_histograms: bool = True

    def __post_init__(self) -> None:
        if self.ring_capacity < 1:
            raise ValueError("ring_capacity must be positive")
        if self.sample_every < 0:
            raise ValueError("sample_every must be non-negative")
        if self.max_samples < 1:
            raise ValueError("max_samples must be positive")


@dataclass(frozen=True)
class GpuConfig:
    """Top-level GPU model configuration (Table I)."""

    num_sms: int = params.PAPER_NUM_SMS
    num_partitions: int = params.PAPER_NUM_PARTITIONS
    core_clock_mhz: float = params.PAPER_CORE_CLOCK_MHZ
    dram_clock_mhz: float = params.PAPER_DRAM_CLOCK_MHZ
    #: SM front-end issue bandwidth, instructions per cycle per SM.
    sm_issue_width: int = 4
    max_warps_per_sm: int = 64
    l1_config: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=params.PAPER_L1_SIZE,
            associativity=4,
            sectored=True,
            num_mshrs=32,
            mshr_merge_cap=8,
            hit_latency=28,
        )
    )
    l2_bank_bytes: int = params.PAPER_L2_BANK_SIZE
    l2_banks_per_partition: int = params.PAPER_L2_BANKS_PER_PARTITION
    l2_associativity: int = 16
    #: GPUs use sectored L2 caches (Section II-A); False is the ablation
    #: that removes the secondary-miss mechanism of Section V-B.
    l2_sectored: bool = True
    l2_hit_latency: int = 120
    l2_mshrs_per_partition: int = 256
    l2_mshr_merge_cap: int = 8
    interconnect_latency: int = 40
    dram: DramConfig = field(default_factory=DramConfig)
    secure: SecureMemoryConfig = field(
        default_factory=lambda: SecureMemoryConfig(
            encryption=EncryptionMode.NONE, integrity=IntegrityMode.NONE
        )
    )
    #: address-interleaving granularity across partitions.
    partition_interleave_bytes: int = 256
    #: observability: tracing + time-series sampling (off by default).
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    def __post_init__(self) -> None:
        if self.num_sms < 1 or self.num_partitions < 1:
            raise ValueError("need at least one SM and one partition")
        if self.partition_interleave_bytes % params.CACHE_LINE_BYTES:
            raise ValueError("interleave must be a multiple of the line size")

    @property
    def l2_partition_bytes(self) -> int:
        return self.l2_bank_bytes * self.l2_banks_per_partition

    @property
    def l2_total_bytes(self) -> int:
        return self.l2_partition_bytes * self.num_partitions

    @property
    def total_bandwidth_gbps(self) -> float:
        return self.dram.bandwidth_gbps * self.num_partitions

    def l2_cache_config(self) -> CacheConfig:
        return CacheConfig(
            size_bytes=self.l2_partition_bytes,
            associativity=self.l2_associativity,
            sectored=self.l2_sectored,
            num_mshrs=self.l2_mshrs_per_partition,
            mshr_merge_cap=self.l2_mshr_merge_cap,
            hit_latency=self.l2_hit_latency,
        )

    @classmethod
    def paper_baseline(cls, secure: SecureMemoryConfig | None = None) -> "GpuConfig":
        """The exact Table I configuration."""
        return cls(secure=secure) if secure is not None else cls()

    @classmethod
    def scaled(
        cls,
        num_partitions: int = 8,
        secure: SecureMemoryConfig | None = None,
        warps_per_sm: int | None = None,
    ) -> "GpuConfig":
        """A smaller GPU keeping the paper's per-partition parameters.

        SM count follows the 80:32 SM-to-partition ratio.  Per-partition
        DRAM bandwidth, L2 capacity and metadata caches are unchanged, so
        every contention ratio the paper studies is preserved.
        """
        num_sms = max(1, round(num_partitions * params.PAPER_NUM_SMS / params.PAPER_NUM_PARTITIONS))
        kwargs = {
            "num_sms": num_sms,
            "num_partitions": num_partitions,
        }
        if warps_per_sm is not None:
            kwargs["max_warps_per_sm"] = warps_per_sm
        if secure is not None:
            kwargs["secure"] = secure
        return cls(**kwargs)
