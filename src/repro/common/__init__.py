"""Shared configuration, constants and statistics infrastructure."""

from repro.common.config import (
    CacheConfig,
    DramConfig,
    GpuConfig,
    MetadataCacheConfig,
    SecureMemoryConfig,
)
from repro.common.hostinfo import host_metadata
from repro.common.stats import StatGroup

__all__ = [
    "CacheConfig",
    "DramConfig",
    "GpuConfig",
    "MetadataCacheConfig",
    "SecureMemoryConfig",
    "StatGroup",
    "host_metadata",
]
