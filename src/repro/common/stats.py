"""Hierarchical statistics counters.

Every simulated component owns a :class:`StatGroup`; groups nest, and the GPU
root group renders the full tree.  Counters are created on first use so
components never need to pre-declare them, but reads of absent counters
return 0 (a component that never saw an event reports zero, not KeyError).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator


class StatGroup:
    """A named bag of integer/float counters with nested child groups."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)
        self._children: Dict[str, "StatGroup"] = {}

    # -- counters ----------------------------------------------------------

    def add(self, key: str, amount: float = 1.0) -> None:
        self._counters[key] += amount

    def set(self, key: str, value: float) -> None:
        self._counters[key] = value

    def get(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def raw(self) -> Dict[str, float]:
        """The live counter mapping, for hot paths that accumulate in bulk.

        ``raw()[key] += x`` is equivalent to ``add(key, x)`` (the mapping
        is a ``defaultdict(float)``) without the method-call overhead;
        simulation inner loops bind this once at construction.
        """
        return self._counters

    def __getitem__(self, key: str) -> float:
        return self.get(key)

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    # -- hierarchy -----------------------------------------------------------

    def child(self, name: str) -> "StatGroup":
        """Return (creating if needed) the child group called *name*."""
        if name not in self._children:
            self._children[name] = StatGroup(name)
        return self._children[name]

    def children(self) -> Dict[str, "StatGroup"]:
        return dict(self._children)

    def walk(self, prefix: str = "") -> Iterator[tuple[str, str, float]]:
        """Yield ``(group_path, counter, value)`` for the whole subtree."""
        path = f"{prefix}{self.name}"
        for key in sorted(self._counters):
            yield path, key, self._counters[key]
        for name in sorted(self._children):
            yield from self._children[name].walk(prefix=f"{path}.")

    # -- aggregation ----------------------------------------------------------

    def total(self, key: str) -> float:
        """Sum of *key* over this group and every descendant."""
        result = self.get(key)
        for group in self._children.values():
            result += group.total(key)
        return result

    def merge_from(self, other: "StatGroup") -> None:
        """Accumulate *other*'s counters (recursively) into this group.

        Child insertion order is normalized to sorted-by-name afterwards, so
        a tree assembled by merging shards serializes identically no matter
        the merge order (the ``to_dict`` round-trip guarantee).
        """
        for key, value in other._counters.items():
            self._counters[key] += value
        for name in sorted(other._children):
            self.child(name).merge_from(other._children[name])
        self._children = {name: self._children[name] for name in sorted(self._children)}

    def reset(self) -> None:
        self._counters.clear()
        for group in self._children.values():
            group.reset()

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able snapshot of the whole subtree, keys sorted at every
        level — byte-stable output for ``repro stats --json`` and tests."""
        return {
            "name": self.name,
            "counters": {key: self._counters[key] for key in sorted(self._counters)},
            "children": {
                name: self._children[name].to_dict() for name in sorted(self._children)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StatGroup":
        """Rebuild a tree produced by :meth:`to_dict`."""
        group = cls(data.get("name", "stats"))
        for key, value in data.get("counters", {}).items():
            group._counters[key] = float(value)
        for name, child_data in data.get("children", {}).items():
            child = cls.from_dict(child_data)
            child.name = name
            group._children[name] = child
        return group

    # -- rendering -------------------------------------------------------------

    def render(self) -> str:
        lines = []
        for path, key, value in self.walk():
            if value == int(value):
                lines.append(f"{path}.{key} = {int(value)}")
            else:
                lines.append(f"{path}.{key} = {value:.4f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatGroup({self.name!r}, {len(self._counters)} counters)"
