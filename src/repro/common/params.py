"""Named constants taken directly from the paper (Tables I-III and Section IV).

Everything size-like is in bytes unless the name says otherwise; everything
latency-like is in core cycles unless the name says otherwise.
"""

# --- Data geometry (Section II-A, IV) -------------------------------------

CACHE_LINE_BYTES = 128
SECTOR_BYTES = 32
SECTORS_PER_LINE = CACHE_LINE_BYTES // SECTOR_BYTES  # 4

#: Size of the protected device-memory range ("a range of 4GB device memory
#: is protected").
PROTECTED_MEMORY_BYTES = 4 * 1024**3

# --- Baseline GPU (Table I) ------------------------------------------------

PAPER_NUM_SMS = 80
PAPER_CORE_CLOCK_MHZ = 1132
PAPER_REGISTER_FILE_PER_SM = 256 * 1024
PAPER_L1_SIZE = 32 * 1024
PAPER_SHARED_MEM_PER_SM = 96 * 1024
PAPER_L2_BANKS_PER_PARTITION = 2
PAPER_L2_BANK_SIZE = 96 * 1024
PAPER_L2_TOTAL = 6 * 1024 * 1024
PAPER_DRAM_CLOCK_MHZ = 850
PAPER_DRAM_BANDWIDTH_GBPS = 868.0
PAPER_NUM_PARTITIONS = 32

# --- Counter geometry (Section IV) -----------------------------------------
#
# "each counter cache line maintains one 128-bit major counter (shared by
#  data blocks within a 16KB memory chunk) and 128 7-bit per block minor
#  counters, thereby covering 128 lines of data"

MAJOR_COUNTER_BITS = 128
MINOR_COUNTER_BITS = 7
MINOR_COUNTERS_PER_BLOCK = 128
DATA_PER_COUNTER_BLOCK = MINOR_COUNTERS_PER_BLOCK * CACHE_LINE_BYTES  # 16 KB
COUNTER_STORAGE_RATIO = DATA_PER_COUNTER_BLOCK // CACHE_LINE_BYTES  # 128

# --- MAC geometry (Section IV) ---------------------------------------------
#
# "Using a 64-bit MAC for each 128B data ... we use truncated MAC, i.e.,
#  16-bit MAC for each 32B sector."

MAC_BITS_PER_LINE = 64
MAC_BYTES_PER_LINE = MAC_BITS_PER_LINE // 8  # 8
MAC_BITS_PER_SECTOR = 16
MAC_BYTES_PER_SECTOR = MAC_BITS_PER_SECTOR // 8  # 2
DATA_PER_MAC_BLOCK = (CACHE_LINE_BYTES // MAC_BYTES_PER_LINE) * CACHE_LINE_BYTES  # 2 KB
MACS_PER_BLOCK = CACHE_LINE_BYTES // MAC_BYTES_PER_LINE  # 16 data lines per MAC line

# --- Integrity trees (Section IV, Table II) ---------------------------------

TREE_ARITY = 16
BMT_LEVELS = 6  # counter-mode: BMT over the counter blocks
MT_LEVELS = 7   # direct: MT over the MAC blocks

# --- Secure engine (Section IV, Table III) ----------------------------------

#: A pipelined AES-128 engine produces 16B per memory-clock cycle.
AES_BYTES_PER_MEM_CYCLE = 16
DEFAULT_AES_ENGINES_PER_PARTITION = 2
DEFAULT_AES_LATENCY = 40
DEFAULT_MAC_LATENCY = 40

DEFAULT_METADATA_CACHE_SIZE = 2 * 1024
DEFAULT_METADATA_MSHRS = 64
UNIFIED_METADATA_CACHE_SIZE = 6 * 1024
UNIFIED_METADATA_MSHRS = 192

#: Maximum merged requests per MSHR entry for counter / MAC / BMT caches
#: (Section V-B: "each MSHR entry can merge at most 512/64/64 requests").
MSHR_MERGE_CAP_COUNTER = 512
MSHR_MERGE_CAP_MAC = 64
MSHR_MERGE_CAP_BMT = 64

# --- Storage overheads reported in Table II (for verification) --------------

TABLE2_COUNTER_STORAGE = 32 * 1024**2        # 32 MB
TABLE2_MAC_STORAGE = 256 * 1024**2           # 256 MB
TABLE2_BMT_STORAGE_MB = 2.14                 # ~2.14 MB (excl. leaf counters)
TABLE2_MT_STORAGE_MB = 17.1                  # ~17.1 MB (excl. leaf MACs)

# --- Die area constants (Tables VI-VII) --------------------------------------

AES_AREA_MM2_14NM = 0.0049
AES_AREA_MM2_12NM = 0.0036
CACHE_64KB_AREA_MM2_32NM = 0.125821
CACHE_96KB_AREA_MM2_32NM = 0.128101
CACHE_64KB_AREA_MM2_12NM = 0.01769
CACHE_96KB_AREA_MM2_12NM = 0.01801
