"""repro — reproduction of "Analyzing Secure Memory Architecture for GPUs".

(S. Yuan, A. W. B. Yudha, Y. Solihin, H. Zhou — ISPASS 2021.)

Public API quick tour::

    from repro import GpuConfig, SecureMemoryConfig, simulate, get_benchmark
    from repro.common.config import EncryptionMode, IntegrityMode

    secure = SecureMemoryConfig(encryption=EncryptionMode.COUNTER,
                                integrity=IntegrityMode.MAC_TREE)
    config = GpuConfig.scaled(num_partitions=4, secure=secure)
    result = simulate(config, get_benchmark("fdtd2d"), horizon=20_000)
    print(result.ipc, result.traffic_fractions())

The named design points of the paper's Tables V and VIII live in
:mod:`repro.experiments.designs`; per-figure drivers in
:mod:`repro.experiments.figures`.
"""

from repro.common.config import (
    CacheConfig,
    DramConfig,
    EncryptionMode,
    GpuConfig,
    IntegrityMode,
    MetadataCacheConfig,
    MetadataKind,
    SecureMemoryConfig,
)
from repro.sim.gpu import Gpu, SimulationResult, simulate
from repro.workloads.suite import BENCHMARKS, get_benchmark

#: the single source of truth for the package version: pyproject.toml
#: declares ``version`` dynamic and reads this attribute at build time,
#: and ``repro --version`` prints it — one string, three consumers.
__version__ = "1.1.0"

__all__ = [
    "BENCHMARKS",
    "CacheConfig",
    "DramConfig",
    "EncryptionMode",
    "Gpu",
    "GpuConfig",
    "IntegrityMode",
    "MetadataCacheConfig",
    "MetadataKind",
    "SecureMemoryConfig",
    "SimulationResult",
    "get_benchmark",
    "simulate",
]
