"""Reuse-distance (LRU stack distance) analysis for metadata traces.

Section V-D studies the reuse distance of counter and MAC accesses (Figures
10 and 11): the number of *distinct* cache blocks referenced between two
accesses to the same block.  A distance of 0 means back-to-back accesses to
the same metadata line — the dominant case on GPUs because of streaming plus
sectored L2 misses.

The implementation is the classic Fenwick-tree stack-distance algorithm,
O(n log n) over the trace.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: the paper's histogram buckets: [x, y] of Figures 10-11.
DEFAULT_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (0, 0),
    (1, 8),
    (9, 64),
    (65, 512),
    (513, 4096),
)


class _Fenwick:
    """Binary indexed tree over trace positions."""

    def __init__(self, n: int) -> None:
        self._tree = [0] * (n + 1)
        self._n = n

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self._n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        i += 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum over positions in [lo, hi]."""
        if hi < lo:
            return 0
        return self.prefix(hi) - (self.prefix(lo - 1) if lo > 0 else 0)


def stack_distances(trace: Sequence[int]) -> List[Optional[int]]:
    """LRU stack distance for each access; ``None`` for first accesses.

    ``trace`` is a sequence of block identifiers (e.g. metadata block
    addresses).  The distance of access *i* to block *b* is the number of
    distinct blocks touched strictly between *i* and the previous access to
    *b*.
    """
    n = len(trace)
    tree = _Fenwick(n)
    last_pos: Dict[int, int] = {}
    distances: List[Optional[int]] = []
    for i, block in enumerate(trace):
        prev = last_pos.get(block)
        if prev is None:
            distances.append(None)
        else:
            distances.append(tree.range_sum(prev + 1, i - 1))
            tree.add(prev, -1)
        tree.add(i, 1)
        last_pos[block] = i
    return distances


def reuse_distance_histogram(
    trace: Sequence[int],
    buckets: Iterable[Tuple[int, int]] = DEFAULT_BUCKETS,
) -> Dict[str, int]:
    """Bucketed reuse-distance counts, plus ``cold`` and ``>max`` bins."""
    buckets = tuple(buckets)
    histogram: Dict[str, int] = {_label(lo, hi): 0 for lo, hi in buckets}
    top = max(hi for _, hi in buckets)
    histogram[f">{top}"] = 0
    histogram["cold"] = 0
    for distance in stack_distances(trace):
        if distance is None:
            histogram["cold"] += 1
            continue
        for lo, hi in buckets:
            if lo <= distance <= hi:
                histogram[_label(lo, hi)] += 1
                break
        else:
            histogram[f">{top}"] += 1
    return histogram


def _label(lo: int, hi: int) -> str:
    return str(lo) if lo == hi else f"[{lo},{hi}]"
