"""Die-area model (Section V-F, Tables VI and VII).

The paper takes published AES-engine areas, scales the most recent (14 nm)
design to the GPU's 12 nm node, estimates metadata-cache area with CACTI's
32 nm numbers scaled the same way, and asks how much L2 capacity must be
sacrificed to fit the security hardware.  Area scales with the square of
the feature size, which reproduces the paper's numbers exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common import params


def scale_area(area_mm2: float, from_nm: float, to_nm: float) -> float:
    """Quadratic technology scaling of a die area."""
    if from_nm <= 0 or to_nm <= 0:
        raise ValueError("feature sizes must be positive")
    return area_mm2 * (to_nm / from_nm) ** 2


@dataclass(frozen=True)
class AreaModel:
    """Security-hardware area and the L2 capacity it displaces."""

    num_partitions: int = params.PAPER_NUM_PARTITIONS
    target_nm: float = 12.0
    aes_area_mm2_14nm: float = params.AES_AREA_MM2_14NM
    cache64_area_mm2_32nm: float = params.CACHE_64KB_AREA_MM2_32NM
    cache96_area_mm2_32nm: float = params.CACHE_96KB_AREA_MM2_32NM

    @property
    def aes_area_mm2(self) -> float:
        """One AES engine at the target node (Table VII: 0.0036 mm^2)."""
        return scale_area(self.aes_area_mm2_14nm, 14.0, self.target_nm)

    @property
    def cache64_area_mm2(self) -> float:
        """A 64 KB cache at the target node (Table VII: 0.01769 mm^2)."""
        return scale_area(self.cache64_area_mm2_32nm, 32.0, self.target_nm)

    @property
    def cache96_area_mm2(self) -> float:
        """A 96 KB (one L2 bank) cache at the target node (0.01801 mm^2)."""
        return scale_area(self.cache96_area_mm2_32nm, 32.0, self.target_nm)

    # ------------------------------------------------------------------

    def aes_total_area(self, engines_per_partition: int) -> float:
        """All AES engines on the chip (0.1152 / 0.2304 mm^2 for 1 / 2)."""
        return self.aes_area_mm2 * engines_per_partition * self.num_partitions

    def metadata_cache_area(self, kinds: int = 3) -> float:
        """Aggregated metadata caches: 64 KB total per kind across partitions.

        The paper sizes each kind at 2 KB x 32 partitions = 64 KB and uses
        CACTI's 64 KB estimate per kind (CACTI cannot model 2 KB caches).
        """
        return self.cache64_area_mm2 * kinds

    def l2_equivalent_kb(self, area_mm2: float) -> float:
        """How many KB of L2 the given area corresponds to."""
        return area_mm2 / self.cache96_area_mm2 * 96.0

    def l2_reduction_kb(
        self, aes_engines_per_partition: int = 1, mac_units_per_partition: int = 1
    ) -> float:
        """Total L2 capacity displaced by AES engines, MAC units and caches.

        The paper assumes MAC units match AES engines in area, yielding
        614 + 614 + ~283 KB (~1.5 MB, 24.84% of the 6 MB L2) for one engine
        and one MAC unit per partition.
        """
        aes_kb = self.l2_equivalent_kb(self.aes_total_area(aes_engines_per_partition))
        mac_kb = self.l2_equivalent_kb(self.aes_total_area(mac_units_per_partition))
        cache_kb = self.l2_equivalent_kb(self.metadata_cache_area())
        return aes_kb + mac_kb + cache_kb

    def l2_reduction_fraction(self, **kwargs) -> float:
        total_kb = params.PAPER_L2_TOTAL / 1024
        return self.l2_reduction_kb(**kwargs) / total_kb

    # ------------------------------------------------------------------

    def table6(self) -> Dict[str, Dict[str, float]]:
        """The published AES-engine datapoints (Table VI)."""
        return {
            "JSSC'11": {"tech_nm": 45, "area_mm2": 0.15},
            "JSSC'19": {"tech_nm": 130, "area_mm2": 13241e-6},
            "JSSC'20": {"tech_nm": 14, "area_mm2": params.AES_AREA_MM2_14NM},
        }

    def table7(self) -> Dict[str, Dict[str, float]]:
        """Scaled-to-12nm areas (Table VII)."""
        return {
            "AES engine": {
                "native_mm2": self.aes_area_mm2_14nm,
                "native_nm": 14,
                "scaled_mm2": self.aes_area_mm2,
            },
            "64KB cache": {
                "native_mm2": self.cache64_area_mm2_32nm,
                "native_nm": 32,
                "scaled_mm2": self.cache64_area_mm2,
            },
            "96KB cache": {
                "native_mm2": self.cache96_area_mm2_32nm,
                "native_nm": 32,
                "scaled_mm2": self.cache96_area_mm2,
            },
        }
