"""Bottleneck attribution from a latency-telemetry export.

Turns one run's :class:`~repro.telemetry.latency.LatencyRecorder` export
into the paper's causal story: *where* do a secure-mode request's cycles
go — DRAM queueing (bandwidth contention, the paper's answer), DRAM
service, crypto serialization, MSHR waits, or back-pressure — and does
the per-class byte accounting conserve against the DRAM statistics?

Consumed by the ``repro bottleneck`` CLI subcommand and the tests that
demonstrate the Section-V conclusions from measured queueing/service
splits instead of IPC deltas.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.analysis.report import render_table, render_traffic_breakdown
from repro.telemetry.latency import ALL_HOPS, conservation_check
from repro.telemetry.latency import (
    STALL_CRYPTO,
    STALL_DRAM_QUEUE,
    STALL_L1_MSHR_FULL,
    STALL_L2_ADMISSION,
    STALL_L2_MSHR_FULL,
    STALL_MDC_MSHR_FULL,
)

#: human-readable stall-cause descriptions for the report.
_STALL_LABELS = {
    STALL_DRAM_QUEUE: "DRAM channel queueing (bandwidth contention)",
    STALL_CRYPTO: "crypto serialization (AES/OTP exposed latency)",
    STALL_L2_ADMISSION: "L2 admission back-pressure (DRAM backlog)",
    STALL_L2_MSHR_FULL: "L2 MSHR table full",
    STALL_MDC_MSHR_FULL: "metadata-cache MSHR table full",
    STALL_L1_MSHR_FULL: "L1 MSHR table full (untracked fetches)",
}


def hop_rows(latency_export: Mapping) -> List[Dict[str, float]]:
    """Flatten the export's hop histograms into per-(hop, class) rows.

    Rows come out in pipeline order (:data:`ALL_HOPS`), then any custom
    hops alphabetically; each row carries sample count, queueing and
    service means/p95/p99, and total cycles in each bucket.
    """
    hops = latency_export.get("hops", {})
    ordered = [h for h in ALL_HOPS if h in hops]
    ordered += sorted(set(hops) - set(ALL_HOPS))
    rows: List[Dict[str, float]] = []
    for hop in ordered:
        for cls in sorted(hops[hop]):
            queue = hops[hop][cls]["queue"]
            service = hops[hop][cls]["service"]
            rows.append(
                {
                    "hop": hop,
                    "class": cls,
                    "n": queue["n"],
                    "queue_mean": queue["mean"],
                    "queue_p95": queue["p95"],
                    "queue_p99": queue["p99"],
                    "queue_max": queue["max"],
                    "queue_cycles": queue["sum"],
                    "service_mean": service["mean"],
                    "service_p95": service["p95"],
                    "service_p99": service["p99"],
                    "service_max": service["max"],
                    "service_cycles": service["sum"],
                }
            )
    return rows


def stall_rows(latency_export: Mapping) -> List[Dict[str, float]]:
    """Stall causes sorted by total cycles lost, descending."""
    stalls = latency_export.get("stalls", {})
    rows = [
        {
            "cause": cause,
            "label": _STALL_LABELS.get(cause, cause),
            "events": entry["events"],
            "cycles": entry["cycles"],
        }
        for cause, entry in stalls.items()
    ]
    rows.sort(key=lambda r: (-r["cycles"], r["cause"]))
    return rows


def overhead_components(latency_export: Mapping) -> Dict[str, float]:
    """Cycles lost to each secure-mode overhead mechanism.

    Built from the stall accounting, so the components are *added delay*
    and (to first order) non-overlapping — the decomposition the paper's
    Section-V argument discriminates between:

    * ``dram_queue``    — cycles transfers waited for the channel
      (bandwidth contention, the paper's answer);
    * ``crypto``        — crypto cycles exposed beyond the data fetch
      (the AES-latency alternative the paper rejects);
    * ``l2_admission``  — partition back-pressure from DRAM backlog;
    * ``l2_mshr_full`` / ``mdc_mshr_full`` / ``l1_mshr_full`` — structural
      MSHR stalls.

    Two observables are deliberately *excluded* from the ranking: DRAM
    service time (moving a byte costs its occupancy in any design — the
    secure-mode byte inflation is the traffic breakdown's story, not a
    stall), and merged-MSHR waits (they overlap the primary fetch's DRAM
    time, so ranking them would double-count it; both remain visible in
    the per-hop table).
    """
    stalls = latency_export.get("stalls", {})

    def stall_cycles(cause: str) -> float:
        entry = stalls.get(cause)
        return float(entry["cycles"]) if entry else 0.0

    return {
        "dram_queue": stall_cycles(STALL_DRAM_QUEUE),
        "crypto": stall_cycles(STALL_CRYPTO),
        "l2_admission": stall_cycles(STALL_L2_ADMISSION),
        "l2_mshr_full": stall_cycles(STALL_L2_MSHR_FULL),
        "mdc_mshr_full": stall_cycles(STALL_MDC_MSHR_FULL),
        "l1_mshr_full": stall_cycles(STALL_L1_MSHR_FULL),
    }


def dominant_overhead(latency_export: Mapping) -> str:
    """Name of the largest overhead component (``""`` if nothing recorded)."""
    components = overhead_components(latency_export)
    best = ""
    best_cycles = 0.0
    for name, cycles in components.items():
        if cycles > best_cycles:
            best, best_cycles = name, cycles
    return best


def render_bottleneck_report(
    latency_export: Mapping,
    class_bytes: Optional[Mapping[str, float]] = None,
) -> str:
    """The full plain-text ``repro bottleneck`` report.

    Per-hop queueing-vs-service table, top stall causes, the dominant
    overhead component, the per-class traffic breakdown, and (when
    *class_bytes* from the DRAM stats is given) the conservation check.
    """
    sections: List[str] = []

    rows = hop_rows(latency_export)
    if rows:
        sections.append(
            "per-hop latency (cycles; queue = waiting, service = using)\n"
            + render_table(
                ["hop", "class", "n", "q_mean", "q_p95", "q_p99",
                 "s_mean", "s_p95", "s_p99", "q_cycles", "s_cycles"],
                [
                    [
                        r["hop"], r["class"], f"{r['n']:.0f}",
                        f"{r['queue_mean']:.1f}", f"{r['queue_p95']:.1f}",
                        f"{r['queue_p99']:.1f}", f"{r['service_mean']:.1f}",
                        f"{r['service_p95']:.1f}", f"{r['service_p99']:.1f}",
                        f"{r['queue_cycles']:.0f}", f"{r['service_cycles']:.0f}",
                    ]
                    for r in rows
                ],
            )
        )

    stalls = stall_rows(latency_export)
    if stalls:
        sections.append(
            "top stall causes\n"
            + render_table(
                ["cause", "events", "cycles", "what it means"],
                [
                    [r["cause"], f"{r['events']:.0f}", f"{r['cycles']:.0f}", r["label"]]
                    for r in stalls
                ],
            )
        )

    components = overhead_components(latency_export)
    if any(components.values()):
        dominant = dominant_overhead(latency_export)
        sections.append(
            "overhead components (total cycles)\n"
            + render_table(
                ["component", "cycles", ""],
                [
                    [name, f"{cycles:.0f}", "<-- dominant" if name == dominant else ""]
                    for name, cycles in sorted(
                        components.items(), key=lambda kv: -kv[1]
                    )
                ],
            )
        )

    observed_bytes = latency_export.get("class_bytes", {})
    if observed_bytes:
        sections.append(
            "DRAM bytes by traffic class\n" + render_traffic_breakdown(observed_bytes)
        )
    if class_bytes is not None:
        check = conservation_check(latency_export, class_bytes)
        status = "OK" if check["ok"] else "VIOLATED"
        sections.append(
            f"byte conservation vs DRAM stats: {status} "
            f"(expected {check['total_expected']:.0f}, "
            f"observed {check['total_observed']:.0f})"
        )
    return "\n\n".join(sections)
