"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures and
tables report; these helpers keep the formatting consistent everywhere
(benches, examples, EXPERIMENTS.md generation).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A fixed-width ASCII table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series_table(
    title: str,
    series: Mapping[str, Mapping[str, float]],
    value_format: str = "{:.3f}",
    row_order: Sequence[str] | None = None,
) -> str:
    """Render ``{row: {column: value}}`` (the shape every figure returns)."""
    columns: List[str] = []
    for row_values in series.values():
        for col in row_values:
            if col not in columns:
                columns.append(col)
    rows = []
    names = list(row_order) if row_order else list(series)
    for name in names:
        values = series.get(name, {})
        rows.append(
            [name] + [value_format.format(values[c]) if c in values else "-" for c in columns]
        )
    body = render_table(["benchmark"] + columns, rows)
    return f"{title}\n{body}"


def render_traffic_breakdown(class_bytes: Mapping[str, float]) -> str:
    """Per-traffic-class DRAM bytes and shares (the telemetry breakdown)."""
    total = sum(class_bytes.values())
    rows = [
        [name, f"{value:.0f}", f"{(value / total if total else 0.0):.1%}"]
        for name, value in class_bytes.items()
    ]
    rows.append(["total", f"{total:.0f}", "100.0%" if total else "-"])
    return render_table(["class", "bytes", "share"], rows)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
