"""ASCII bar charts, for figure-shaped terminal output.

The paper's figures are bar charts; :func:`render_bar_chart` gives the
benchmark harness a visual rendition next to the numeric tables, e.g.::

    fdtd2d     secureMem |#####                                   | 0.148
               large_mdc |###################################     | 0.886
"""

from __future__ import annotations

from typing import Mapping

DEFAULT_WIDTH = 40


def render_bar(value: float, peak: float, width: int = DEFAULT_WIDTH) -> str:
    """One bar scaled so that *peak* fills *width* characters."""
    if peak <= 0:
        filled = 0
    else:
        filled = max(0, min(width, round(width * value / peak)))
    return "#" * filled + " " * (width - filled)


def render_bar_chart(
    series: Mapping[str, Mapping[str, float]],
    peak: float | None = None,
    width: int = DEFAULT_WIDTH,
    value_format: str = "{:.3f}",
) -> str:
    """Grouped bars for ``{row: {column: value}}`` (the figure shape)."""
    values = [v for row in series.values() for v in row.values()]
    if not values:
        return "(empty)"
    scale = peak if peak is not None else max(values)
    row_width = max((len(r) for r in series), default=0)
    col_width = max((len(c) for row in series.values() for c in row), default=0)
    lines = []
    for row_name, row in series.items():
        for i, (column, value) in enumerate(row.items()):
            label = row_name if i == 0 else ""
            bar = render_bar(value, scale, width)
            lines.append(
                f"{label:<{row_width}} {column:<{col_width}} |{bar}| "
                + value_format.format(value)
            )
        lines.append("")
    return "\n".join(lines).rstrip()
