"""Post-processing: reuse-distance analysis, die-area model, bottleneck
attribution, reporting."""

from repro.analysis.area import AreaModel
from repro.analysis.bottleneck import (
    dominant_overhead,
    hop_rows,
    overhead_components,
    render_bottleneck_report,
    stall_rows,
)
from repro.analysis.reuse import reuse_distance_histogram, stack_distances

__all__ = [
    "AreaModel",
    "dominant_overhead",
    "hop_rows",
    "overhead_components",
    "render_bottleneck_report",
    "reuse_distance_histogram",
    "stack_distances",
    "stall_rows",
]
