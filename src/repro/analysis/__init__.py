"""Post-processing: reuse-distance analysis, die-area model, reporting."""

from repro.analysis.area import AreaModel
from repro.analysis.reuse import reuse_distance_histogram, stack_distances

__all__ = ["AreaModel", "reuse_distance_histogram", "stack_distances"]
