"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``        simulate one workload on one design and print the result
``profile``    run one point under cProfile and print the hottest functions
``trace``      run one workload with telemetry and export a Chrome trace
``bottleneck`` latency decomposition: per-hop queueing/service + stall causes
``stats``      dump the full statistics tree for one run (``--json`` for tools)
``sweep``      run all 14 workloads on one design (optionally normalized)
``figure``     regenerate one paper figure/table and print it
``designs``    list the named design points
``attack``     run the functional-security attack demonstration
``storage``    print Table II's metadata storage arithmetic
``area``       print Tables VI-VII's die-area arithmetic
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.report import render_series_table, render_traffic_breakdown
from repro.common.config import MetadataKind, TelemetryConfig
from repro.experiments import designs as design_mod
from repro.experiments import figures
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner
from repro.sim.gpu import simulate
from repro.telemetry import write_artifacts
from repro.workloads.suite import BENCHMARK_ORDER, get_benchmark

#: name -> zero-argument design factory (GPU-level ablations excluded).
DESIGNS = {
    "baseline": design_mod.baseline,
    "secureMem": lambda: design_mod.secure_mem(0),
    "secureMem_mshr64": lambda: design_mod.secure_mem(64),
    "0_crypto": lambda: design_mod.zero_crypto(0),
    "perf_mdc": lambda: design_mod.perfect_mdc(0),
    "large_mdc": lambda: design_mod.large_mdc(0),
    "separate": design_mod.separate,
    "unified": design_mod.unified,
    "ctr": design_mod.ctr,
    "ctr_bmt": design_mod.ctr_bmt,
    "ctr_mac_bmt": design_mod.ctr_mac_bmt,
    "direct_40": lambda: design_mod.direct(40),
    "direct_80": lambda: design_mod.direct(80),
    "direct_160": lambda: design_mod.direct(160),
    "direct_mac": design_mod.direct_mac,
    "direct_mac_mt": design_mod.direct_mac_mt,
    "aes_1": lambda: design_mod.aes_engines(1),
    "blocking_verify": design_mod.blocking_verification,
    "eager_update": design_mod.eager_update,
    "selective_50": lambda: design_mod.selective(0.5),
    "selective_25": lambda: design_mod.selective(0.25),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Analyzing Secure Memory Architecture for GPUs'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale(p):
        p.add_argument("--partitions", type=int, default=4)
        p.add_argument("--horizon", type=float, default=10_000)
        p.add_argument("--warmup", type=float, default=30_000)
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for independent simulation points "
            "(0 = all cores; 1 = serial)",
        )

    run = sub.add_parser("run", help="simulate one workload on one design")
    run.add_argument("workload", choices=BENCHMARK_ORDER)
    run.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    add_scale(run)

    profile = sub.add_parser(
        "profile", help="run one simulation point under cProfile"
    )
    profile.add_argument("workload", choices=BENCHMARK_ORDER)
    profile.add_argument(
        "--design", choices=sorted(DESIGNS), default="secureMem_mshr64"
    )
    profile.add_argument(
        "--top", type=int, default=25, help="functions to print (by cumulative time)"
    )
    profile.add_argument(
        "--sort",
        choices=["cumulative", "cumtime", "tottime", "ncalls"],
        default="cumulative",
        help="pstats sort order (cumtime is an alias for cumulative)",
    )
    profile.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the profile rows as machine-readable JSON",
    )
    add_scale(profile)

    trace = sub.add_parser(
        "trace", help="run one workload with telemetry and export a Chrome trace"
    )
    trace.add_argument("workload", choices=BENCHMARK_ORDER)
    trace.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    trace.add_argument(
        "--out",
        default=None,
        help="artifact directory (default results/trace/<workload>-<design>/)",
    )
    trace.add_argument(
        "--ring", type=int, default=65536, help="event ring-buffer capacity"
    )
    trace.add_argument(
        "--sample-every",
        type=float,
        default=500.0,
        help="gauge sampling epoch in cycles (0 disables sampling)",
    )
    add_scale(trace)

    bottleneck = sub.add_parser(
        "bottleneck",
        help="latency decomposition: per-hop queueing/service and stall causes",
    )
    bottleneck.add_argument("workload", choices=BENCHMARK_ORDER)
    bottleneck.add_argument(
        "--design", choices=sorted(DESIGNS), default="secureMem_mshr64"
    )
    bottleneck.add_argument(
        "--out",
        default=None,
        help="also write telemetry artifacts (latency.json et al.) to this "
        "directory (default: print only)",
    )
    bottleneck.add_argument(
        "--json",
        action="store_true",
        help="print the latency export as JSON instead of the table report",
    )
    add_scale(bottleneck)

    stats = sub.add_parser(
        "stats", help="dump the full statistics tree for one run"
    )
    stats.add_argument("workload", choices=BENCHMARK_ORDER)
    stats.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    stats.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON with stable sorted keys",
    )
    add_scale(stats)

    sweep = sub.add_parser("sweep", help="all 14 workloads on one design")
    sweep.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    sweep.add_argument(
        "--normalize", action="store_true", help="report IPC relative to the baseline"
    )
    add_scale(sweep)

    figure = sub.add_parser("figure", help="regenerate one paper figure/table")
    figure.add_argument(
        "name",
        choices=sorted(set(figures.ALL_FIGURES) | {"fig10_11", "table2", "table6_7"}),
    )
    add_scale(figure)

    sub.add_parser("designs", help="list the named design points")
    sub.add_parser("attack", help="run the functional-security attack demo")
    sub.add_parser("storage", help="print Table II metadata storage")
    sub.add_parser("area", help="print Tables VI-VII die areas")
    return parser


def _cmd_run(args) -> int:
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print(f"bandwidth util    {result.bandwidth_utilization:.1%}")
    print(f"L2 miss rate      {result.l2_miss_rate:.1%}")
    for category, share in result.traffic_fractions().items():
        print(f"traffic {category:5s}     {share:.1%}")
    for kind in MetadataKind:
        if result.metadata[kind]["accesses"]:
            print(
                f"{kind.value} miss rate     {result.metadata_miss_rate(kind):.1%} "
                f"(secondary {result.secondary_miss_ratio(kind):.1%})"
            )
    return 0


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    workload = get_benchmark(args.workload)
    profiler = cProfile.Profile()
    profiler.enable()
    result = simulate(config, workload, horizon=args.horizon, warmup=args.warmup)
    profiler.disable()
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print(f"events processed  {result.events_processed}")
    print()
    sort = "cumulative" if args.sort == "cumtime" else args.sort
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(args.top)
    if args.json:
        _write_profile_json(args, result, stats, sort)
        print(f"profile json      {args.json}")
    return 0


def _write_profile_json(args, result, stats, sort: str) -> None:
    """Persist the profile as rows of per-function timings (sorted)."""
    sort_index = {"cumulative": "cumtime", "tottime": "tottime", "ncalls": "ncalls"}[sort]
    rows = []
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": func,
                "file": filename,
                "line": lineno,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": tt,
                "cumtime": ct,
            }
        )
    rows.sort(key=lambda r: (-(r[sort_index] if sort_index != "ncalls" else r["ncalls"]),
                             r["file"], r["line"]))
    doc = {
        "workload": args.workload,
        "design": args.design,
        "horizon": args.horizon,
        "warmup": args.warmup,
        "ipc": result.ipc,
        "events_processed": result.events_processed,
        "sort": sort,
        "rows": rows[: max(args.top, 0) or len(rows)],
    }
    path = Path(args.json)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")


def _cmd_trace(args) -> int:
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    config = dataclasses.replace(
        config,
        telemetry=TelemetryConfig(
            enabled=True, ring_capacity=args.ring, sample_every=args.sample_every
        ),
    )
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    out = (
        Path(args.out)
        if args.out
        else Path("results") / "trace" / f"{args.workload}-{args.design}"
    )
    write_artifacts(out, result.telemetry)
    export = result.telemetry
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print()
    print(render_traffic_breakdown(export["meta"]["class_bytes"]))
    print()
    print(
        f"events            {len(export['events'])} recorded, "
        f"{export['events_dropped']} dropped (ring {export['ring_capacity']})"
    )
    print(f"samples           {len(export['samples']['cycle'])} epochs")
    print(f"artifacts         {out}")
    print("open trace.json in chrome://tracing or https://ui.perfetto.dev")
    return 0


def _cmd_bottleneck(args) -> int:
    from repro.analysis.bottleneck import dominant_overhead, render_bottleneck_report

    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    # only the latency recorder is needed: leave the event ring and the
    # sampler off so the report costs no trace memory.
    config = dataclasses.replace(
        config,
        telemetry=TelemetryConfig(
            enabled=True, trace_events=False, sample_every=0.0, latency_histograms=True
        ),
    )
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    export = result.telemetry
    latency = export["latency"]
    class_bytes = export["meta"]["class_bytes"]
    if args.json:
        print(json.dumps(latency, sort_keys=True, indent=2))
        return 0
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print(f"bandwidth util    {result.bandwidth_utilization:.1%}")
    print()
    print(render_bottleneck_report(latency, class_bytes))
    dominant = dominant_overhead(latency)
    if dominant:
        print()
        print(f"dominant overhead component: {dominant}")
    if args.out:
        out = Path(args.out)
        write_artifacts(out, export)
        print(f"artifacts         {out}")
    return 0


def _cmd_stats(args) -> int:
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    if args.json:
        print(json.dumps(result.stats.to_dict(), sort_keys=True, indent=2))
    else:
        print(result.stats.render())
    return 0


def _make_runner(args) -> Runner:
    jobs = getattr(args, "jobs", 1)
    if jobs != 1:
        return ParallelRunner(
            horizon=args.horizon, warmup=args.warmup, jobs=jobs or None
        )
    return Runner(horizon=args.horizon, warmup=args.warmup)


def _cmd_sweep(args) -> int:
    runner = _make_runner(args)
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    if args.normalize:
        base = design_mod.build_gpu(None, num_partitions=args.partitions)
        series = runner.normalized_sweep(config, base)
        table = {name: {"norm_ipc": value} for name, value in series.items()}
    else:
        table = {
            name: {
                "ipc": result.ipc,
                "bw_util": result.bandwidth_utilization,
                "l2_miss": result.l2_miss_rate,
            }
            for name, result in runner.sweep(config).items()
        }
    print(render_series_table(f"design: {args.design}", table))
    return 0


def _cmd_figure(args) -> int:
    runner = _make_runner(args)
    if args.name == "fig10_11":
        out = figures.fig10_11(runner, args.partitions)
        for title, table in out.items():
            print(render_series_table(title, table, value_format="{:.0f}"))
        return 0
    if args.name == "table2":
        print(render_series_table("table2 (MB)", figures.table2(), "{:.2f}"))
        return 0
    if args.name == "table6_7":
        print(render_series_table("tables 6-7", figures.table6_7(), "{:.5f}"))
        return 0
    table = figures.ALL_FIGURES[args.name](runner, args.partitions)
    print(render_series_table(args.name, table))
    return 0


def _cmd_designs() -> int:
    for name in sorted(DESIGNS):
        factory = DESIGNS[name]
        secure = factory()
        if secure is None:
            print(f"{name:18s} insecure baseline")
            continue
        print(
            f"{name:18s} enc={secure.encryption.value:7s} "
            f"integrity={secure.integrity.value:8s} "
            f"mshrs={secure.counter_cache.num_mshrs}"
        )
    return 0


def _cmd_attack() -> int:
    from repro.secure.functional import IntegrityError, SecureMemory, SecureMemoryMode

    size = 16 * 1024
    print("attack matrix (16 KB functional secure memory):\n")
    print(f"{'mode':14s} {'tamper':>10s} {'splice':>10s} {'replay':>10s}")
    for mode in SecureMemoryMode:
        outcomes = []
        for attack in ("tamper", "splice", "replay"):
            memory = SecureMemory(protected_bytes=size, mode=mode)
            memory.write(0, b"A" * 64)
            memory.write(128, b"B" * 64)
            if attack == "tamper":
                memory.tamper(4, b"\xff\xff")
            elif attack == "splice":
                line0 = bytes(memory.store[0:128])
                memory.tamper(0, bytes(memory.store[128:256]))
                memory.tamper(128, line0)
            else:
                stale = memory.snapshot()
                memory.write(0, b"C" * 64)
                memory.restore(stale)
            try:
                memory.read(0, 64)
                outcomes.append("missed")
            except IntegrityError:
                outcomes.append("DETECTED")
        print(f"{mode.value:14s} {outcomes[0]:>10s} {outcomes[1]:>10s} {outcomes[2]:>10s}")
    print(
        "\nencryption-only modes miss everything; MACs catch tampering and"
        "\nsplicing; only a tree (BMT/MT) catches replay."
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bottleneck":
        return _cmd_bottleneck(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "designs":
        return _cmd_designs()
    if args.command == "attack":
        return _cmd_attack()
    if args.command == "storage":
        print(render_series_table("Table II (MB)", figures.table2(), "{:.2f}"))
        return 0
    if args.command == "area":
        print(render_series_table("Tables VI-VII", figures.table6_7(), "{:.5f}"))
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
