"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``        simulate one workload on one design and print the result
``profile``    run one point under cProfile and print the hottest functions
``trace``      run one workload with telemetry and export a Chrome trace
``bottleneck`` latency decomposition: per-hop queueing/service + stall causes
``stats``      dump the full statistics tree for one run (``--json`` for tools)
``sweep``      run all 14 workloads on one design (optionally normalized);
               ``--store`` submits to a shared job store and drains it
``bench``      benchmark the simulation core (``--check`` guards against
               the committed ``BENCH_core.json``)
``figure``     regenerate one paper figure/table and print it
``serve``      long-lived HTTP/JSON sweep service over a shared job store
``spans``      print a sweep's distributed-trace span tree (``--chrome``
               exports a trace_event file for Perfetto)
``top``        live terminal view of the fleet (sweeps, workers, rates)
``worker``     claim and execute points from a shared job store
``scorecard``  evaluate the paper-fidelity scorecard (exit 1 on FAIL)
``diff``       compare two sweep run-ledgers metric-by-metric
``dashboard``  render a self-contained HTML observability report
``designs``    list the named design points
``attack``     run the functional-security attack demonstration
``storage``    print Table II's metadata storage arithmetic
``area``       print Tables VI-VII's die-area arithmetic
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import List, Optional

import repro
from repro.analysis.report import render_series_table, render_traffic_breakdown
from repro.common.config import MetadataKind, TelemetryConfig
from repro.experiments import designs as design_mod
from repro.experiments import figures
from repro.experiments.designs import DESIGNS
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner, gmean
from repro.sim.gpu import simulate
from repro.telemetry import write_artifacts
from repro.workloads.suite import BENCHMARK_ORDER, get_benchmark


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Analyzing Secure Memory Architecture for GPUs'",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    # fast-path switches (global: they apply to whatever command runs).
    # Results are bit-identical either way; these exist for A/B timing and
    # for debugging with the simpler scalar core.
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the batched core (grouped crossbar delivery, epoch "
        "trace pregeneration); equivalent to REPRO_NO_BATCH=1",
    )
    parser.add_argument(
        "--no-pool",
        action="store_true",
        help="disable object pooling/slot reuse; equivalent to REPRO_NO_POOL=1",
    )
    parser.add_argument(
        "--no-columnar",
        action="store_true",
        help="disable the columnar delivery lane (regular delivery groups "
        "fall back to per-access events); equivalent to REPRO_NO_COLUMNAR=1",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale(p):
        p.add_argument("--partitions", type=int, default=4)
        p.add_argument("--horizon", type=float, default=10_000)
        p.add_argument("--warmup", type=float, default=30_000)
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for independent simulation points "
            "(0 = all cores; 1 = serial)",
        )

    run = sub.add_parser("run", help="simulate one workload on one design")
    run.add_argument("workload", choices=BENCHMARK_ORDER)
    run.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    run.add_argument(
        "--warm-state",
        action="store_true",
        help="after the run, print the process-wide secure-geometry warm "
        "state (memoized layouts, address translations, tree parents)",
    )
    add_scale(run)

    profile = sub.add_parser(
        "profile", help="run one simulation point under cProfile"
    )
    profile.add_argument("workload", choices=BENCHMARK_ORDER)
    profile.add_argument(
        "--design", choices=sorted(DESIGNS), default="secureMem_mshr64"
    )
    profile.add_argument(
        "--top", type=int, default=25, help="functions to print (by cumulative time)"
    )
    profile.add_argument(
        "--sort",
        choices=["cumulative", "cumtime", "tottime", "ncalls"],
        default="cumulative",
        help="pstats sort order (cumtime is an alias for cumulative)",
    )
    profile.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the profile rows as machine-readable JSON",
    )
    add_scale(profile)

    trace = sub.add_parser(
        "trace", help="run one workload with telemetry and export a Chrome trace"
    )
    trace.add_argument("workload", choices=BENCHMARK_ORDER)
    trace.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    trace.add_argument(
        "--out",
        default=None,
        help="artifact directory (default results/trace/<workload>-<design>/)",
    )
    trace.add_argument(
        "--ring", type=int, default=65536, help="event ring-buffer capacity"
    )
    trace.add_argument(
        "--sample-every",
        type=float,
        default=500.0,
        help="gauge sampling epoch in cycles (0 disables sampling)",
    )
    trace.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write a machine-readable trace summary (class bytes, "
        "event/sample counts) to this file",
    )
    add_scale(trace)

    bottleneck = sub.add_parser(
        "bottleneck",
        help="latency decomposition: per-hop queueing/service and stall causes",
    )
    bottleneck.add_argument("workload", choices=BENCHMARK_ORDER)
    bottleneck.add_argument(
        "--design", choices=sorted(DESIGNS), default="secureMem_mshr64"
    )
    bottleneck.add_argument(
        "--out",
        default=None,
        help="also write telemetry artifacts (latency.json et al.) to this "
        "directory (default: print only)",
    )
    bottleneck.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the latency export as JSON: to stdout (bare --json, "
        "instead of the table report) or to PATH (table still printed)",
    )
    add_scale(bottleneck)

    stats = sub.add_parser(
        "stats", help="dump the full statistics tree for one run"
    )
    stats.add_argument("workload", choices=BENCHMARK_ORDER)
    stats.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    stats.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON with stable sorted keys",
    )
    add_scale(stats)

    sweep = sub.add_parser("sweep", help="all 14 workloads on one design")
    sweep.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    sweep.add_argument(
        "--normalize", action="store_true", help="report IPC relative to the baseline"
    )
    sweep.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="submit the sweep's points to this shared job store (SQLite), "
        "participate as a worker until the store drains, then report — the "
        "same execution path `repro serve` + `repro worker` use; --jobs N "
        "spawns N worker processes instead of one in-process worker",
    )
    sweep.add_argument(
        "--bench",
        action="append",
        default=None,
        metavar="NAME",
        choices=BENCHMARK_ORDER,
        help="restrict to these benchmarks (repeatable; default: all 14)",
    )
    add_scale(sweep)

    bench = sub.add_parser(
        "bench",
        help="benchmark the simulation core (wraps scripts/perf_smoke.py)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="guard events/sec against the committed BENCH_core.json "
        "baseline (skips itself when the baseline was taken under "
        "different fastpath switches or the host is loaded)",
    )
    bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the core-bench report JSON to PATH",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline report for --check (default: the committed "
        "BENCH_core.json at the repo root)",
    )

    figure = sub.add_parser("figure", help="regenerate one paper figure/table")
    figure.add_argument(
        "name",
        choices=sorted(set(figures.ALL_FIGURES) | {"fig10_11", "table2", "table6_7"}),
    )
    add_scale(figure)

    serve = sub.add_parser(
        "serve",
        help="HTTP/JSON sweep service: submit sweeps, poll progress, fetch "
        "dashboards over a shared job store",
    )
    serve.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="SQLite job store path (created if missing); workers on any "
        "host sharing this path drain the submitted sweeps",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default 8076; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="also spawn N embedded worker processes polling this store",
    )
    serve.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="sharded result cache embedded workers consult read-only",
    )
    serve.add_argument(
        "--ledger-dir",
        default=None,
        metavar="DIR",
        help="directory embedded workers write per-worker run ledgers into",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.add_argument(
        "--access-log",
        default=None,
        metavar="PATH",
        help="append one structured JSONL record per request "
        "(ts, level, event, method, path, status, duration_ms, trace_id)",
    )
    serve.add_argument(
        "--access-log-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="roll the access log to <path>.1 when it would exceed N bytes "
        "(default 64 MiB)",
    )
    serve.add_argument(
        "--reaper-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="background expired-lease reaper period (default 15; "
        "0 disables the reaper thread)",
    )

    spans = sub.add_parser(
        "spans",
        help="print one sweep's distributed-trace span tree; optionally "
        "export a Chrome trace_event file",
    )
    spans.add_argument("sweep_id", metavar="SWEEP", help="sweep id to inspect")
    spans_source = spans.add_mutually_exclusive_group(required=True)
    spans_source.add_argument(
        "--store", metavar="PATH", help="read a job store SQLite file directly"
    )
    spans_source.add_argument(
        "--url", metavar="URL", help="read a running `repro serve` over HTTP"
    )
    spans.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="also write a chrome://tracing / Perfetto trace_event JSON file",
    )
    spans.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the raw span records as JSON",
    )

    top = sub.add_parser(
        "top",
        help="live terminal view of the sweep fleet: sweeps, rates, ETAs, "
        "per-worker throughput",
    )
    top_source = top.add_mutually_exclusive_group(required=True)
    top_source.add_argument(
        "--store", metavar="PATH", help="read a job store SQLite file directly"
    )
    top_source.add_argument(
        "--url", metavar="URL", help="read a running `repro serve` over HTTP"
    )
    top.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period between frames",
    )

    worker = sub.add_parser(
        "worker", help="claim and execute sweep points from a shared job store"
    )
    worker.add_argument(
        "--store", required=True, metavar="PATH", help="SQLite job store path"
    )
    worker.add_argument(
        "--count",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to run (N>1 forks; 1 runs in-process)",
    )
    worker.add_argument(
        "--poll",
        action="store_true",
        help="keep polling for new sweeps instead of exiting once the "
        "store is drained",
    )
    worker.add_argument(
        "--lease",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="claim lease; a worker dead for this long forfeits its point",
    )
    worker.add_argument(
        "--max-points",
        type=int,
        default=None,
        metavar="N",
        help="exit after executing N claims (testing / bounded shifts)",
    )
    worker.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="sharded result cache to consult read-only before simulating",
    )
    worker.add_argument(
        "--ledger-dir",
        default=None,
        metavar="DIR",
        help="directory to write this worker's run ledger into "
        "(worker-<id>.jsonl)",
    )

    scorecard = sub.add_parser(
        "scorecard",
        help="evaluate the paper's Section-V conclusions against a sweep",
    )
    scorecard.add_argument(
        "--profile",
        choices=["paper", "smoke"],
        default="paper",
        help="which calibrated expectation set / scale to evaluate at",
    )
    scorecard.add_argument(
        "--partitions", type=int, default=None, help="override the profile's scale"
    )
    scorecard.add_argument("--horizon", type=float, default=None)
    scorecard.add_argument("--warmup", type=float, default=None)
    scorecard.add_argument(
        "--bench",
        action="append",
        default=None,
        metavar="NAME",
        choices=BENCHMARK_ORDER,
        help="restrict to these benchmarks (repeatable; default: profile's set)",
    )
    scorecard.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for missing points (0 = all cores; 1 = serial)",
    )
    scorecard.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="result cache (default: results/experiments_p<P>_h<H>_w<W>.json, "
        "the regeneration cache for the chosen scale)",
    )
    scorecard.add_argument(
        "--ledger", default=None, metavar="PATH", help="append a run ledger here"
    )
    scorecard.add_argument(
        "--heartbeat",
        default=None,
        metavar="PATH",
        help="progress heartbeat JSONL (parallel runs only)",
    )
    scorecard.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the scorecard.json document here",
    )

    diff = sub.add_parser(
        "diff", help="compare two sweep run-ledgers metric-by-metric"
    )
    diff.add_argument("ledger_a", metavar="A", help="run-ledger JSONL (before)")
    diff.add_argument("ledger_b", metavar="B", help="run-ledger JSONL (after)")
    diff.add_argument(
        "--match",
        choices=["key", "workload"],
        default="key",
        help="join points by full key (same configs) or by workload "
        "(compare different configs)",
    )
    diff.add_argument(
        "--rel-tol",
        type=float,
        default=None,
        help="relative tolerance below which a metric counts as unchanged",
    )
    diff.add_argument(
        "--json", default=None, metavar="PATH", help="write the diff report here"
    )

    dashboard = sub.add_parser(
        "dashboard", help="render a self-contained HTML observability report"
    )
    dashboard.add_argument(
        "-o", "--out", required=True, metavar="PATH", help="output HTML file"
    )
    dashboard.add_argument("--title", default="Sweep observability report")
    dashboard.add_argument(
        "--ledger", default=None, metavar="PATH", help="run-ledger JSONL"
    )
    dashboard.add_argument(
        "--heartbeat", default=None, metavar="PATH", help="heartbeat JSONL"
    )
    dashboard.add_argument(
        "--scorecard",
        default=None,
        metavar="PATH",
        help="scorecard.json (repro scorecard --json)",
    )
    dashboard.add_argument(
        "--bottleneck",
        default=None,
        metavar="PATH",
        help="latency export JSON (repro bottleneck --json PATH)",
    )
    dashboard.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace summary JSON (repro trace --json PATH)",
    )
    dashboard.add_argument(
        "--bench",
        action="append",
        default=None,
        metavar="PATH",
        help="BENCH_*.json perf snapshots (repeatable; default: "
        "BENCH_*.json in the working directory)",
    )

    sub.add_parser("designs", help="list the named design points")
    sub.add_parser("attack", help="run the functional-security attack demo")
    sub.add_parser("storage", help="print Table II metadata storage")
    sub.add_parser("area", help="print Tables VI-VII die areas")
    return parser


def _cmd_run(args) -> int:
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print(f"bandwidth util    {result.bandwidth_utilization:.1%}")
    print(f"L2 miss rate      {result.l2_miss_rate:.1%}")
    for category, share in result.traffic_fractions().items():
        print(f"traffic {category:5s}     {share:.1%}")
    for kind in MetadataKind:
        if result.metadata[kind]["accesses"]:
            print(
                f"{kind.value} miss rate     {result.metadata_miss_rate(kind):.1%} "
                f"(secondary {result.secondary_miss_ratio(kind):.1%})"
            )
    if args.warm_state:
        from repro.sim import fastpath

        print()
        for key, value in fastpath.warm_state().items():
            print(f"warm {key:24s} {value}")
    return 0


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    workload = get_benchmark(args.workload)
    profiler = cProfile.Profile()
    profiler.enable()
    result = simulate(config, workload, horizon=args.horizon, warmup=args.warmup)
    profiler.disable()
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print(f"events processed  {result.events_processed}")
    print()
    sort = "cumulative" if args.sort == "cumtime" else args.sort
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(args.top)
    if args.json:
        _write_profile_json(args, result, stats, sort)
        print(f"profile json      {args.json}")
    return 0


def _write_profile_json(args, result, stats, sort: str) -> None:
    """Persist the profile as rows of per-function timings (sorted)."""
    sort_index = {"cumulative": "cumtime", "tottime": "tottime", "ncalls": "ncalls"}[sort]
    rows = []
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": func,
                "file": filename,
                "line": lineno,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": tt,
                "cumtime": ct,
            }
        )
    rows.sort(key=lambda r: (-(r[sort_index] if sort_index != "ncalls" else r["ncalls"]),
                             r["file"], r["line"]))
    doc = {
        "workload": args.workload,
        "design": args.design,
        "horizon": args.horizon,
        "warmup": args.warmup,
        "ipc": result.ipc,
        "events_processed": result.events_processed,
        "sort": sort,
        "rows": rows[: max(args.top, 0) or len(rows)],
    }
    path = Path(args.json)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")


def _cmd_trace(args) -> int:
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    config = dataclasses.replace(
        config,
        telemetry=TelemetryConfig(
            enabled=True, ring_capacity=args.ring, sample_every=args.sample_every
        ),
    )
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    out = (
        Path(args.out)
        if args.out
        else Path("results") / "trace" / f"{args.workload}-{args.design}"
    )
    write_artifacts(out, result.telemetry)
    export = result.telemetry
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print()
    print(render_traffic_breakdown(export["meta"]["class_bytes"]))
    print()
    print(
        f"events            {len(export['events'])} recorded, "
        f"{export['events_dropped']} dropped (ring {export['ring_capacity']})"
    )
    print(f"samples           {len(export['samples']['cycle'])} epochs")
    print(f"artifacts         {out}")
    print("open trace.json in chrome://tracing or https://ui.perfetto.dev")
    if args.json:
        doc = {
            "workload": args.workload,
            "design": args.design,
            "horizon": args.horizon,
            "warmup": args.warmup,
            "ipc": result.ipc,
            "bandwidth_utilization": result.bandwidth_utilization,
            "class_bytes": dict(export["meta"]["class_bytes"]),
            "events": len(export["events"]),
            "events_dropped": export["events_dropped"],
            "samples": len(export["samples"]["cycle"]),
            "artifacts": str(out),
        }
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        print(f"trace json        {path}")
    return 0


def _cmd_bottleneck(args) -> int:
    from repro.analysis.bottleneck import dominant_overhead, render_bottleneck_report

    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    # only the latency recorder is needed: leave the event ring and the
    # sampler off so the report costs no trace memory.
    config = dataclasses.replace(
        config,
        telemetry=TelemetryConfig(
            enabled=True, trace_events=False, sample_every=0.0, latency_histograms=True
        ),
    )
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    export = result.telemetry
    latency = export["latency"]
    class_bytes = export["meta"]["class_bytes"]
    if args.json == "-":
        print(json.dumps(latency, sort_keys=True, indent=2))
        return 0
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(latency, sort_keys=True, indent=2) + "\n")
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print(f"bandwidth util    {result.bandwidth_utilization:.1%}")
    print()
    print(render_bottleneck_report(latency, class_bytes))
    dominant = dominant_overhead(latency)
    if dominant:
        print()
        print(f"dominant overhead component: {dominant}")
    if args.out:
        out = Path(args.out)
        write_artifacts(out, export)
        print(f"artifacts         {out}")
    if args.json and args.json != "-":
        print(f"latency json      {args.json}")
    return 0


def _cmd_stats(args) -> int:
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    if args.json:
        print(json.dumps(result.stats.to_dict(), sort_keys=True, indent=2))
    else:
        print(result.stats.render())
    return 0


def _load_perf_smoke():
    """Load the perf harness from ``scripts/`` (repo tooling, not package API).

    ``repro bench`` wraps the same ``core_bench``/``regression_guard``
    machinery ``scripts/perf_smoke.py`` uses, so the CLI verb and the CI
    harness can never disagree on methodology.  The script lives outside
    the package; it is located relative to the installed tree and loaded
    by path.
    """
    import importlib.util

    path = Path(repro.__file__).resolve().parents[2] / "scripts" / "perf_smoke.py"
    if not path.exists():
        raise FileNotFoundError(
            f"perf harness not found at {path} - `repro bench` needs a "
            "source checkout (scripts/perf_smoke.py)"
        )
    spec = importlib.util.spec_from_file_location("perf_smoke", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def _cmd_bench(args) -> int:
    import os

    try:
        perf_smoke = _load_perf_smoke()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        start_load = os.getloadavg()[0]
    except (AttributeError, OSError):  # platforms without getloadavg
        start_load = 0.0
    report = perf_smoke.core_bench()
    blob = json.dumps(report, indent=2)
    print(blob)
    if args.json:
        Path(args.json).write_text(blob + "\n")
    if not report["identical_results"]:
        print("ERROR: serial results differ between reps", file=sys.stderr)
        return 1
    if not report["telemetry"]["drift_free"]:
        print("ERROR: telemetry changed simulation statistics", file=sys.stderr)
        return 1
    if args.check:
        baseline = (
            Path(args.baseline)
            if args.baseline
            else perf_smoke.ROOT / "BENCH_core.json"
        )
        return perf_smoke.regression_guard(report, baseline, start_load)
    return 0


def _make_runner(args, benchmarks: Optional[List[str]] = None) -> Runner:
    jobs = getattr(args, "jobs", 1)
    if jobs != 1:
        return ParallelRunner(
            horizon=args.horizon,
            warmup=args.warmup,
            benchmarks=benchmarks,
            jobs=jobs or None,
        )
    return Runner(horizon=args.horizon, warmup=args.warmup, benchmarks=benchmarks)


def _cmd_sweep(args) -> int:
    if args.store:
        return _cmd_sweep_store(args)
    runner = _make_runner(args, benchmarks=args.bench)
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    if args.normalize:
        base = design_mod.build_gpu(None, num_partitions=args.partitions)
        series = runner.normalized_sweep(config, base)
        table = {name: {"norm_ipc": value} for name, value in series.items()}
    else:
        table = {
            name: {
                "ipc": result.ipc,
                "bw_util": result.bandwidth_utilization,
                "l2_miss": result.l2_miss_rate,
            }
            for name, result in runner.sweep(config).items()
        }
    print(render_series_table(f"design: {args.design}", table))
    return 0


def _cmd_sweep_store(args) -> int:
    """``repro sweep --store``: submit to the shared job store and drain it.

    The same rows, worker loop, and result payloads `repro serve` +
    `repro worker` use — this command just also *participates* (one
    in-process worker, or ``--jobs N`` worker processes) so it always
    terminates, then renders the familiar sweep table from the store.
    """
    import os

    from repro.experiments.runner import result_from_dict
    from repro.jobs.store import SQLiteJobStore, iter_points
    from repro.jobs.worker import Worker, run_workers

    benchmarks = args.bench if args.bench else list(BENCHMARK_ORDER)
    design_names = [args.design]
    if args.normalize and "baseline" not in design_names:
        design_names.append("baseline")
    points = iter_points(
        benchmarks, [{"design": d, "partitions": args.partitions} for d in design_names]
    )
    store = SQLiteJobStore(args.store)
    sweep_id = store.submit_sweep(
        points,
        horizon=args.horizon,
        warmup=args.warmup,
        label=f"cli sweep --design {args.design}",
    )
    print(f"submitted sweep {sweep_id} ({len(points)} points) to {args.store}")
    if args.jobs != 1:
        count = args.jobs if args.jobs > 1 else (os.cpu_count() or 1)
        for process in run_workers(args.store, count, until="drained"):
            process.join()
    else:
        Worker(store).run(until="drained")

    progress = store.progress(sweep_id)
    results = store.results(sweep_id)
    store.close()
    by_point = {
        (row["workload"], row["spec"].get("design")): result_from_dict(row["result"])
        for row in results
        if row["result"] is not None
    }
    if args.normalize:
        series = {}
        for name in benchmarks:
            secure = by_point.get((name, args.design))
            base = by_point.get((name, "baseline"))
            if secure is not None and base is not None:
                series[name] = secure.ipc / base.ipc if base.ipc else 0.0
        if series:
            series["Gmean"] = gmean(series.values())
        table = {name: {"norm_ipc": value} for name, value in series.items()}
    else:
        table = {
            name: {
                "ipc": by_point[(name, args.design)].ipc,
                "bw_util": by_point[(name, args.design)].bandwidth_utilization,
                "l2_miss": by_point[(name, args.design)].l2_miss_rate,
            }
            for name in benchmarks
            if (name, args.design) in by_point
        }
    print(render_series_table(f"design: {args.design} (sweep {sweep_id})", table))
    if progress["failures"]:
        print(f"\n{len(progress['failures'])} point(s) failed:", file=sys.stderr)
        for failure in progress["failures"]:
            print(
                f"  {failure['workload']} {failure['spec'].get('design')}: "
                f"{failure['error']} (after {failure['attempts']} attempt(s))",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_serve(args) -> int:
    from repro.jobs.service import DEFAULT_PORT, SweepService
    from repro.jobs.worker import run_workers

    port = DEFAULT_PORT if args.port is None else args.port
    extra = {}
    if args.access_log_max_bytes is not None:
        extra["access_log_max_bytes"] = args.access_log_max_bytes
    if args.reaper_interval is not None:
        extra["reaper_interval_s"] = args.reaper_interval
    service = SweepService(
        args.store,
        host=args.host,
        port=port,
        quiet=not args.verbose,
        access_log=args.access_log,
        **extra,
    )
    workers = []
    if args.workers:
        workers = run_workers(
            args.store,
            args.workers,
            until="forever",
            cache_dir=args.cache,
            ledger_dir=args.ledger_dir,
        )
    # the smoke script and humans both read this line; keep it first and
    # flushed so a piped consumer sees the bound port immediately.
    print(f"repro serve: listening on {service.url} (store {args.store})", flush=True)
    if workers:
        print(f"repro serve: {len(workers)} embedded worker process(es)", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for process in workers:
            process.terminate()
        service.server_close()
    return 0


def _cmd_worker(args) -> int:
    from repro.jobs.store import SQLiteJobStore
    from repro.jobs.worker import Worker, run_workers

    until = "forever" if args.poll else "drained"
    if args.count > 1:
        processes = run_workers(
            args.store,
            args.count,
            until=until,
            lease_s=args.lease,
            cache_dir=args.cache,
            ledger_dir=args.ledger_dir,
            max_points=args.max_points,
        )
        try:
            for process in processes:
                process.join()
        except KeyboardInterrupt:
            for process in processes:
                process.terminate()
        return 0
    from repro.obsv.metrics import MetricsRegistry

    # one shared registry: store ops and worker series land in the same
    # snapshot the heartbeat persists for the fleet views.
    registry = MetricsRegistry()
    store = SQLiteJobStore(args.store, metrics=registry)
    worker = Worker(
        store,
        lease_s=args.lease,
        cache_dir=args.cache,
        ledger_dir=args.ledger_dir,
        max_points=args.max_points,
        metrics=registry,
    )
    try:
        worker.run(until=until)
    except KeyboardInterrupt:
        pass
    executed = worker.executed
    print(
        f"worker {worker.worker_id}: {sum(executed.values())} claim(s) — "
        f"{executed['simulated']} simulated, {executed['cached']} cached, "
        f"{executed['failed']} failed"
    )
    store.close()
    return 0


def _cmd_spans(args) -> int:
    import json as _json
    import urllib.error
    import urllib.request

    from repro.obsv.spans import span_tree, spans_to_chrome, validate_links

    root_span = None
    if args.url:
        url = args.url.rstrip("/") + f"/sweeps/{args.sweep_id}/spans"
        try:
            with urllib.request.urlopen(url, timeout=10.0) as response:
                doc = _json.loads(response.read())
        except urllib.error.URLError as exc:
            print(f"repro spans: cannot fetch {url}: {exc}", file=sys.stderr)
            return 1
        records = doc["spans"]
        root_span = doc.get("root_span")
    else:
        from repro.jobs.store import SQLiteJobStore

        store = SQLiteJobStore(args.store)
        try:
            records = store.spans(args.sweep_id)
            root_span = store.progress(args.sweep_id).get("root_span")
        except KeyError:
            print(f"repro spans: unknown sweep {args.sweep_id}", file=sys.stderr)
            return 1
        finally:
            store.close()

    if not records:
        print(f"sweep {args.sweep_id}: no spans recorded (tracing disabled?)")
        return 0
    trace_ids = sorted({r.get("trace_id") for r in records if r.get("trace_id")})
    print(f"sweep             {args.sweep_id}")
    print(f"trace             {', '.join(trace_ids) or '-'}")
    print(f"spans             {len(records)}")
    for problem in validate_links(records, roots=[root_span] if root_span else None):
        print(f"warning           {problem}")
    print()
    for line in span_tree(records):
        print(line)
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_json.dumps(records, indent=2, sort_keys=True))
        print(f"\nspan records      {out}")
    if args.chrome:
        out = Path(args.chrome)
        out.parent.mkdir(parents=True, exist_ok=True)
        doc = spans_to_chrome(records, meta={"sweep_id": args.sweep_id})
        out.write_text(_json.dumps(doc, indent=2, sort_keys=True))
        print(
            f"\nchrome trace      {out} "
            f"({len(doc['traceEvents'])} events; open in ui.perfetto.dev)"
        )
    return 0


def _cmd_top(args) -> int:
    import functools

    from repro.obsv.top import fleet_from_store, fleet_from_url, run_top

    if args.url:
        fleet_fn = functools.partial(fleet_from_url, args.url)
        return run_top(fleet_fn, once=args.once, interval_s=args.interval)
    from repro.jobs.store import SQLiteJobStore

    store = SQLiteJobStore(args.store)
    try:
        return run_top(
            functools.partial(fleet_from_store, store),
            once=args.once,
            interval_s=args.interval,
        )
    finally:
        store.close()


def _cmd_figure(args) -> int:
    runner = _make_runner(args)
    if args.name == "fig10_11":
        out = figures.fig10_11(runner, args.partitions)
        for title, table in out.items():
            print(render_series_table(title, table, value_format="{:.0f}"))
        return 0
    if args.name == "table2":
        print(render_series_table("table2 (MB)", figures.table2(), "{:.2f}"))
        return 0
    if args.name == "table6_7":
        print(render_series_table("tables 6-7", figures.table6_7(), "{:.5f}"))
        return 0
    table = figures.ALL_FIGURES[args.name](runner, args.partitions)
    print(render_series_table(args.name, table))
    return 0


def _write_json(path: str | Path, doc: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")


def _cmd_scorecard(args) -> int:
    from repro.obsv.scorecard import PROFILES, build_scorecard, render_scorecard

    if args.ledger is not None and Path(args.ledger).is_dir():
        print(
            f"error: --ledger {args.ledger} is a directory; pass a JSONL "
            "file path to append run-ledger records to",
            file=sys.stderr,
        )
        return 2
    profile = PROFILES[args.profile]
    partitions = args.partitions if args.partitions is not None else profile["partitions"]
    horizon = args.horizon if args.horizon is not None else profile["horizon"]
    warmup = args.warmup if args.warmup is not None else profile["warmup"]
    benchmarks = args.bench if args.bench is not None else profile["benchmarks"]
    if args.cache is not None:
        cache = Path(args.cache)
    else:
        # the regeneration cache for this scale: a populated results/
        # directory makes the paper profile pure cache reads.
        cache = Path("results") / (
            f"experiments_p{partitions}_h{horizon:g}_w{warmup:g}.json"
        )
        if not cache.is_file():
            sharded = cache.with_name(cache.name + ".d")
            cache = sharded if sharded.is_dir() else cache
    # always the parallel runner: jobs=1 follows the exact serial path,
    # and it opens both cache formats (legacy single-file and sharded).
    runner = ParallelRunner(
        horizon=horizon,
        warmup=warmup,
        benchmarks=benchmarks,
        cache_path=cache,
        jobs=args.jobs or None,
        heartbeat_path=args.heartbeat,
        ledger_path=args.ledger,
    )
    with runner:
        doc = build_scorecard(runner, args.profile, partitions)
    print(render_scorecard(doc))
    if args.json:
        _write_json(args.json, doc)
        print(f"\nscorecard json    {args.json}")
    return 1 if doc["status"] == "fail" else 0


def _cmd_diff(args) -> int:
    from repro.obsv.diff import REL_TOL, diff_ledgers, render_diff
    from repro.obsv.ledger import ledger_points, read_ledger

    records = {}
    for path in (args.ledger_a, args.ledger_b):
        if Path(path).is_dir():
            print(
                f"error: {path} is a directory, not a run-ledger JSONL file",
                file=sys.stderr,
            )
            return 2
        if not Path(path).exists():
            print(f"error: no such ledger: {path}", file=sys.stderr)
            return 2
        records[path] = read_ledger(path)
        if not ledger_points(records[path]):
            print(
                f"error: ledger has no point records: {path} — generate one "
                "with `repro sweep`, `repro scorecard --ledger`, or "
                "regenerate_experiments.py --ledger",
                file=sys.stderr,
            )
            return 2
    report = diff_ledgers(
        records[args.ledger_a],
        records[args.ledger_b],
        match=args.match,
        rel_tol=args.rel_tol if args.rel_tol is not None else REL_TOL,
    )
    print(render_diff(report))
    if args.json:
        _write_json(args.json, report)
        print(f"\ndiff json         {args.json}")
    return 1 if report["regressions"] else 0


def _cmd_dashboard(args) -> int:
    from repro.obsv.dashboard import build_dashboard, load_json, load_jsonl
    from repro.obsv.ledger import read_ledger

    bench_paths = (
        [Path(p) for p in args.bench]
        if args.bench is not None
        else sorted(Path(".").glob("BENCH_*.json"))
    )
    bench = {}
    bench_sources = {}
    for path in bench_paths:
        doc = load_json(path)
        if doc is not None:
            bench[path.stem] = doc
            bench_sources[f"bench:{path.stem}"] = str(path)
    sources = {
        name: str(value)
        for name, value in (
            ("ledger", args.ledger),
            ("heartbeat", args.heartbeat),
            ("scorecard", args.scorecard),
            ("bottleneck", args.bottleneck),
            ("trace", args.trace),
        )
        if value
    }
    sources.update(bench_sources)
    html_text = build_dashboard(
        title=args.title,
        ledger_records=read_ledger(args.ledger) if args.ledger else None,
        heartbeat_lines=load_jsonl(args.heartbeat),
        scorecard=load_json(args.scorecard),
        bottleneck=load_json(args.bottleneck),
        trace=load_json(args.trace),
        bench=bench,
        sources=sources,
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html_text)
    print(f"dashboard         {out} ({len(html_text)} bytes, self-contained)")
    return 0


def _cmd_designs() -> int:
    for name in sorted(DESIGNS):
        factory = DESIGNS[name]
        secure = factory()
        if secure is None:
            print(f"{name:18s} insecure baseline")
            continue
        print(
            f"{name:18s} enc={secure.encryption.value:7s} "
            f"integrity={secure.integrity.value:8s} "
            f"mshrs={secure.counter_cache.num_mshrs}"
        )
    return 0


def _cmd_attack() -> int:
    from repro.secure.functional import IntegrityError, SecureMemory, SecureMemoryMode

    size = 16 * 1024
    print("attack matrix (16 KB functional secure memory):\n")
    print(f"{'mode':14s} {'tamper':>10s} {'splice':>10s} {'replay':>10s}")
    for mode in SecureMemoryMode:
        outcomes = []
        for attack in ("tamper", "splice", "replay"):
            memory = SecureMemory(protected_bytes=size, mode=mode)
            memory.write(0, b"A" * 64)
            memory.write(128, b"B" * 64)
            if attack == "tamper":
                memory.tamper(4, b"\xff\xff")
            elif attack == "splice":
                line0 = bytes(memory.store[0:128])
                memory.tamper(0, bytes(memory.store[128:256]))
                memory.tamper(128, line0)
            else:
                stale = memory.snapshot()
                memory.write(0, b"C" * 64)
                memory.restore(stale)
            try:
                memory.read(0, 64)
                outcomes.append("missed")
            except IntegrityError:
                outcomes.append("DETECTED")
        print(f"{mode.value:14s} {outcomes[0]:>10s} {outcomes[1]:>10s} {outcomes[2]:>10s}")
    print(
        "\nencryption-only modes miss everything; MACs catch tampering and"
        "\nsplicing; only a tree (BMT/MT) catches replay."
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.no_batch or args.no_pool or args.no_columnar:
        from repro.sim import fastpath

        fastpath.configure(
            batching=False if args.no_batch else None,
            pooling=False if args.no_pool else None,
            columnar=False if args.no_columnar else None,
        )
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bottleneck":
        return _cmd_bottleneck(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "spans":
        return _cmd_spans(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "scorecard":
        return _cmd_scorecard(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    if args.command == "designs":
        return _cmd_designs()
    if args.command == "attack":
        return _cmd_attack()
    if args.command == "storage":
        print(render_series_table("Table II (MB)", figures.table2(), "{:.2f}"))
        return 0
    if args.command == "area":
        print(render_series_table("Tables VI-VII", figures.table6_7(), "{:.5f}"))
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
