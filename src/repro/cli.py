"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``        simulate one workload on one design and print the result
``profile``    run one point under cProfile and print the hottest functions
``trace``      run one workload with telemetry and export a Chrome trace
``bottleneck`` latency decomposition: per-hop queueing/service + stall causes
``stats``      dump the full statistics tree for one run (``--json`` for tools)
``sweep``      run all 14 workloads on one design (optionally normalized)
``figure``     regenerate one paper figure/table and print it
``scorecard``  evaluate the paper-fidelity scorecard (exit 1 on FAIL)
``diff``       compare two sweep run-ledgers metric-by-metric
``dashboard``  render a self-contained HTML observability report
``designs``    list the named design points
``attack``     run the functional-security attack demonstration
``storage``    print Table II's metadata storage arithmetic
``area``       print Tables VI-VII's die-area arithmetic
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.report import render_series_table, render_traffic_breakdown
from repro.common.config import MetadataKind, TelemetryConfig
from repro.experiments import designs as design_mod
from repro.experiments import figures
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner
from repro.sim.gpu import simulate
from repro.telemetry import write_artifacts
from repro.workloads.suite import BENCHMARK_ORDER, get_benchmark

#: name -> zero-argument design factory (GPU-level ablations excluded).
DESIGNS = {
    "baseline": design_mod.baseline,
    "secureMem": lambda: design_mod.secure_mem(0),
    "secureMem_mshr64": lambda: design_mod.secure_mem(64),
    "0_crypto": lambda: design_mod.zero_crypto(0),
    "perf_mdc": lambda: design_mod.perfect_mdc(0),
    "large_mdc": lambda: design_mod.large_mdc(0),
    "separate": design_mod.separate,
    "unified": design_mod.unified,
    "ctr": design_mod.ctr,
    "ctr_bmt": design_mod.ctr_bmt,
    "ctr_mac_bmt": design_mod.ctr_mac_bmt,
    "direct_40": lambda: design_mod.direct(40),
    "direct_80": lambda: design_mod.direct(80),
    "direct_160": lambda: design_mod.direct(160),
    "direct_mac": design_mod.direct_mac,
    "direct_mac_mt": design_mod.direct_mac_mt,
    "aes_1": lambda: design_mod.aes_engines(1),
    "blocking_verify": design_mod.blocking_verification,
    "eager_update": design_mod.eager_update,
    "selective_50": lambda: design_mod.selective(0.5),
    "selective_25": lambda: design_mod.selective(0.25),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Analyzing Secure Memory Architecture for GPUs'",
    )
    # fast-path switches (global: they apply to whatever command runs).
    # Results are bit-identical either way; these exist for A/B timing and
    # for debugging with the simpler scalar core.
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the batched core (grouped crossbar delivery, epoch "
        "trace pregeneration); equivalent to REPRO_NO_BATCH=1",
    )
    parser.add_argument(
        "--no-pool",
        action="store_true",
        help="disable object pooling/slot reuse; equivalent to REPRO_NO_POOL=1",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale(p):
        p.add_argument("--partitions", type=int, default=4)
        p.add_argument("--horizon", type=float, default=10_000)
        p.add_argument("--warmup", type=float, default=30_000)
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for independent simulation points "
            "(0 = all cores; 1 = serial)",
        )

    run = sub.add_parser("run", help="simulate one workload on one design")
    run.add_argument("workload", choices=BENCHMARK_ORDER)
    run.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    run.add_argument(
        "--warm-state",
        action="store_true",
        help="after the run, print the process-wide secure-geometry warm "
        "state (memoized layouts, address translations, tree parents)",
    )
    add_scale(run)

    profile = sub.add_parser(
        "profile", help="run one simulation point under cProfile"
    )
    profile.add_argument("workload", choices=BENCHMARK_ORDER)
    profile.add_argument(
        "--design", choices=sorted(DESIGNS), default="secureMem_mshr64"
    )
    profile.add_argument(
        "--top", type=int, default=25, help="functions to print (by cumulative time)"
    )
    profile.add_argument(
        "--sort",
        choices=["cumulative", "cumtime", "tottime", "ncalls"],
        default="cumulative",
        help="pstats sort order (cumtime is an alias for cumulative)",
    )
    profile.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the profile rows as machine-readable JSON",
    )
    add_scale(profile)

    trace = sub.add_parser(
        "trace", help="run one workload with telemetry and export a Chrome trace"
    )
    trace.add_argument("workload", choices=BENCHMARK_ORDER)
    trace.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    trace.add_argument(
        "--out",
        default=None,
        help="artifact directory (default results/trace/<workload>-<design>/)",
    )
    trace.add_argument(
        "--ring", type=int, default=65536, help="event ring-buffer capacity"
    )
    trace.add_argument(
        "--sample-every",
        type=float,
        default=500.0,
        help="gauge sampling epoch in cycles (0 disables sampling)",
    )
    trace.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write a machine-readable trace summary (class bytes, "
        "event/sample counts) to this file",
    )
    add_scale(trace)

    bottleneck = sub.add_parser(
        "bottleneck",
        help="latency decomposition: per-hop queueing/service and stall causes",
    )
    bottleneck.add_argument("workload", choices=BENCHMARK_ORDER)
    bottleneck.add_argument(
        "--design", choices=sorted(DESIGNS), default="secureMem_mshr64"
    )
    bottleneck.add_argument(
        "--out",
        default=None,
        help="also write telemetry artifacts (latency.json et al.) to this "
        "directory (default: print only)",
    )
    bottleneck.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the latency export as JSON: to stdout (bare --json, "
        "instead of the table report) or to PATH (table still printed)",
    )
    add_scale(bottleneck)

    stats = sub.add_parser(
        "stats", help="dump the full statistics tree for one run"
    )
    stats.add_argument("workload", choices=BENCHMARK_ORDER)
    stats.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    stats.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON with stable sorted keys",
    )
    add_scale(stats)

    sweep = sub.add_parser("sweep", help="all 14 workloads on one design")
    sweep.add_argument("--design", choices=sorted(DESIGNS), default="secureMem_mshr64")
    sweep.add_argument(
        "--normalize", action="store_true", help="report IPC relative to the baseline"
    )
    add_scale(sweep)

    figure = sub.add_parser("figure", help="regenerate one paper figure/table")
    figure.add_argument(
        "name",
        choices=sorted(set(figures.ALL_FIGURES) | {"fig10_11", "table2", "table6_7"}),
    )
    add_scale(figure)

    scorecard = sub.add_parser(
        "scorecard",
        help="evaluate the paper's Section-V conclusions against a sweep",
    )
    scorecard.add_argument(
        "--profile",
        choices=["paper", "smoke"],
        default="paper",
        help="which calibrated expectation set / scale to evaluate at",
    )
    scorecard.add_argument(
        "--partitions", type=int, default=None, help="override the profile's scale"
    )
    scorecard.add_argument("--horizon", type=float, default=None)
    scorecard.add_argument("--warmup", type=float, default=None)
    scorecard.add_argument(
        "--bench",
        action="append",
        default=None,
        metavar="NAME",
        choices=BENCHMARK_ORDER,
        help="restrict to these benchmarks (repeatable; default: profile's set)",
    )
    scorecard.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for missing points (0 = all cores; 1 = serial)",
    )
    scorecard.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="result cache (default: results/experiments_p<P>_h<H>_w<W>.json, "
        "the regeneration cache for the chosen scale)",
    )
    scorecard.add_argument(
        "--ledger", default=None, metavar="PATH", help="append a run ledger here"
    )
    scorecard.add_argument(
        "--heartbeat",
        default=None,
        metavar="PATH",
        help="progress heartbeat JSONL (parallel runs only)",
    )
    scorecard.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the scorecard.json document here",
    )

    diff = sub.add_parser(
        "diff", help="compare two sweep run-ledgers metric-by-metric"
    )
    diff.add_argument("ledger_a", metavar="A", help="run-ledger JSONL (before)")
    diff.add_argument("ledger_b", metavar="B", help="run-ledger JSONL (after)")
    diff.add_argument(
        "--match",
        choices=["key", "workload"],
        default="key",
        help="join points by full key (same configs) or by workload "
        "(compare different configs)",
    )
    diff.add_argument(
        "--rel-tol",
        type=float,
        default=None,
        help="relative tolerance below which a metric counts as unchanged",
    )
    diff.add_argument(
        "--json", default=None, metavar="PATH", help="write the diff report here"
    )

    dashboard = sub.add_parser(
        "dashboard", help="render a self-contained HTML observability report"
    )
    dashboard.add_argument(
        "-o", "--out", required=True, metavar="PATH", help="output HTML file"
    )
    dashboard.add_argument("--title", default="Sweep observability report")
    dashboard.add_argument(
        "--ledger", default=None, metavar="PATH", help="run-ledger JSONL"
    )
    dashboard.add_argument(
        "--heartbeat", default=None, metavar="PATH", help="heartbeat JSONL"
    )
    dashboard.add_argument(
        "--scorecard",
        default=None,
        metavar="PATH",
        help="scorecard.json (repro scorecard --json)",
    )
    dashboard.add_argument(
        "--bottleneck",
        default=None,
        metavar="PATH",
        help="latency export JSON (repro bottleneck --json PATH)",
    )
    dashboard.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace summary JSON (repro trace --json PATH)",
    )
    dashboard.add_argument(
        "--bench",
        action="append",
        default=None,
        metavar="PATH",
        help="BENCH_*.json perf snapshots (repeatable; default: "
        "BENCH_*.json in the working directory)",
    )

    sub.add_parser("designs", help="list the named design points")
    sub.add_parser("attack", help="run the functional-security attack demo")
    sub.add_parser("storage", help="print Table II metadata storage")
    sub.add_parser("area", help="print Tables VI-VII die areas")
    return parser


def _cmd_run(args) -> int:
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print(f"bandwidth util    {result.bandwidth_utilization:.1%}")
    print(f"L2 miss rate      {result.l2_miss_rate:.1%}")
    for category, share in result.traffic_fractions().items():
        print(f"traffic {category:5s}     {share:.1%}")
    for kind in MetadataKind:
        if result.metadata[kind]["accesses"]:
            print(
                f"{kind.value} miss rate     {result.metadata_miss_rate(kind):.1%} "
                f"(secondary {result.secondary_miss_ratio(kind):.1%})"
            )
    if args.warm_state:
        from repro.sim import fastpath

        print()
        for key, value in fastpath.warm_state().items():
            print(f"warm {key:24s} {value}")
    return 0


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    workload = get_benchmark(args.workload)
    profiler = cProfile.Profile()
    profiler.enable()
    result = simulate(config, workload, horizon=args.horizon, warmup=args.warmup)
    profiler.disable()
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print(f"events processed  {result.events_processed}")
    print()
    sort = "cumulative" if args.sort == "cumtime" else args.sort
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(args.top)
    if args.json:
        _write_profile_json(args, result, stats, sort)
        print(f"profile json      {args.json}")
    return 0


def _write_profile_json(args, result, stats, sort: str) -> None:
    """Persist the profile as rows of per-function timings (sorted)."""
    sort_index = {"cumulative": "cumtime", "tottime": "tottime", "ncalls": "ncalls"}[sort]
    rows = []
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": func,
                "file": filename,
                "line": lineno,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": tt,
                "cumtime": ct,
            }
        )
    rows.sort(key=lambda r: (-(r[sort_index] if sort_index != "ncalls" else r["ncalls"]),
                             r["file"], r["line"]))
    doc = {
        "workload": args.workload,
        "design": args.design,
        "horizon": args.horizon,
        "warmup": args.warmup,
        "ipc": result.ipc,
        "events_processed": result.events_processed,
        "sort": sort,
        "rows": rows[: max(args.top, 0) or len(rows)],
    }
    path = Path(args.json)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")


def _cmd_trace(args) -> int:
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    config = dataclasses.replace(
        config,
        telemetry=TelemetryConfig(
            enabled=True, ring_capacity=args.ring, sample_every=args.sample_every
        ),
    )
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    out = (
        Path(args.out)
        if args.out
        else Path("results") / "trace" / f"{args.workload}-{args.design}"
    )
    write_artifacts(out, result.telemetry)
    export = result.telemetry
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print()
    print(render_traffic_breakdown(export["meta"]["class_bytes"]))
    print()
    print(
        f"events            {len(export['events'])} recorded, "
        f"{export['events_dropped']} dropped (ring {export['ring_capacity']})"
    )
    print(f"samples           {len(export['samples']['cycle'])} epochs")
    print(f"artifacts         {out}")
    print("open trace.json in chrome://tracing or https://ui.perfetto.dev")
    if args.json:
        doc = {
            "workload": args.workload,
            "design": args.design,
            "horizon": args.horizon,
            "warmup": args.warmup,
            "ipc": result.ipc,
            "bandwidth_utilization": result.bandwidth_utilization,
            "class_bytes": dict(export["meta"]["class_bytes"]),
            "events": len(export["events"]),
            "events_dropped": export["events_dropped"],
            "samples": len(export["samples"]["cycle"]),
            "artifacts": str(out),
        }
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
        print(f"trace json        {path}")
    return 0


def _cmd_bottleneck(args) -> int:
    from repro.analysis.bottleneck import dominant_overhead, render_bottleneck_report

    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    # only the latency recorder is needed: leave the event ring and the
    # sampler off so the report costs no trace memory.
    config = dataclasses.replace(
        config,
        telemetry=TelemetryConfig(
            enabled=True, trace_events=False, sample_every=0.0, latency_histograms=True
        ),
    )
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    export = result.telemetry
    latency = export["latency"]
    class_bytes = export["meta"]["class_bytes"]
    if args.json == "-":
        print(json.dumps(latency, sort_keys=True, indent=2))
        return 0
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(latency, sort_keys=True, indent=2) + "\n")
    print(f"workload          {args.workload}")
    print(f"design            {args.design}")
    print(f"IPC               {result.ipc:.2f}")
    print(f"bandwidth util    {result.bandwidth_utilization:.1%}")
    print()
    print(render_bottleneck_report(latency, class_bytes))
    dominant = dominant_overhead(latency)
    if dominant:
        print()
        print(f"dominant overhead component: {dominant}")
    if args.out:
        out = Path(args.out)
        write_artifacts(out, export)
        print(f"artifacts         {out}")
    if args.json and args.json != "-":
        print(f"latency json      {args.json}")
    return 0


def _cmd_stats(args) -> int:
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    result = simulate(
        config, get_benchmark(args.workload), horizon=args.horizon, warmup=args.warmup
    )
    if args.json:
        print(json.dumps(result.stats.to_dict(), sort_keys=True, indent=2))
    else:
        print(result.stats.render())
    return 0


def _make_runner(args) -> Runner:
    jobs = getattr(args, "jobs", 1)
    if jobs != 1:
        return ParallelRunner(
            horizon=args.horizon, warmup=args.warmup, jobs=jobs or None
        )
    return Runner(horizon=args.horizon, warmup=args.warmup)


def _cmd_sweep(args) -> int:
    runner = _make_runner(args)
    secure = DESIGNS[args.design]()
    config = design_mod.build_gpu(secure, num_partitions=args.partitions)
    if args.normalize:
        base = design_mod.build_gpu(None, num_partitions=args.partitions)
        series = runner.normalized_sweep(config, base)
        table = {name: {"norm_ipc": value} for name, value in series.items()}
    else:
        table = {
            name: {
                "ipc": result.ipc,
                "bw_util": result.bandwidth_utilization,
                "l2_miss": result.l2_miss_rate,
            }
            for name, result in runner.sweep(config).items()
        }
    print(render_series_table(f"design: {args.design}", table))
    return 0


def _cmd_figure(args) -> int:
    runner = _make_runner(args)
    if args.name == "fig10_11":
        out = figures.fig10_11(runner, args.partitions)
        for title, table in out.items():
            print(render_series_table(title, table, value_format="{:.0f}"))
        return 0
    if args.name == "table2":
        print(render_series_table("table2 (MB)", figures.table2(), "{:.2f}"))
        return 0
    if args.name == "table6_7":
        print(render_series_table("tables 6-7", figures.table6_7(), "{:.5f}"))
        return 0
    table = figures.ALL_FIGURES[args.name](runner, args.partitions)
    print(render_series_table(args.name, table))
    return 0


def _write_json(path: str | Path, doc: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")


def _cmd_scorecard(args) -> int:
    from repro.obsv.scorecard import PROFILES, build_scorecard, render_scorecard

    profile = PROFILES[args.profile]
    partitions = args.partitions if args.partitions is not None else profile["partitions"]
    horizon = args.horizon if args.horizon is not None else profile["horizon"]
    warmup = args.warmup if args.warmup is not None else profile["warmup"]
    benchmarks = args.bench if args.bench is not None else profile["benchmarks"]
    if args.cache is not None:
        cache = Path(args.cache)
    else:
        # the regeneration cache for this scale: a populated results/
        # directory makes the paper profile pure cache reads.
        cache = Path("results") / (
            f"experiments_p{partitions}_h{horizon:g}_w{warmup:g}.json"
        )
        if not cache.is_file():
            sharded = cache.with_name(cache.name + ".d")
            cache = sharded if sharded.is_dir() else cache
    # always the parallel runner: jobs=1 follows the exact serial path,
    # and it opens both cache formats (legacy single-file and sharded).
    runner = ParallelRunner(
        horizon=horizon,
        warmup=warmup,
        benchmarks=benchmarks,
        cache_path=cache,
        jobs=args.jobs or None,
        heartbeat_path=args.heartbeat,
        ledger_path=args.ledger,
    )
    with runner:
        doc = build_scorecard(runner, args.profile, partitions)
    print(render_scorecard(doc))
    if args.json:
        _write_json(args.json, doc)
        print(f"\nscorecard json    {args.json}")
    return 1 if doc["status"] == "fail" else 0


def _cmd_diff(args) -> int:
    from repro.obsv.diff import REL_TOL, diff_ledgers, render_diff
    from repro.obsv.ledger import read_ledger

    for path in (args.ledger_a, args.ledger_b):
        if not Path(path).exists():
            print(f"error: no such ledger: {path}", file=sys.stderr)
            return 2
    report = diff_ledgers(
        read_ledger(args.ledger_a),
        read_ledger(args.ledger_b),
        match=args.match,
        rel_tol=args.rel_tol if args.rel_tol is not None else REL_TOL,
    )
    print(render_diff(report))
    if args.json:
        _write_json(args.json, report)
        print(f"\ndiff json         {args.json}")
    return 1 if report["regressions"] else 0


def _cmd_dashboard(args) -> int:
    from repro.obsv.dashboard import build_dashboard, load_json, load_jsonl
    from repro.obsv.ledger import read_ledger

    bench_paths = (
        [Path(p) for p in args.bench]
        if args.bench is not None
        else sorted(Path(".").glob("BENCH_*.json"))
    )
    bench = {}
    bench_sources = {}
    for path in bench_paths:
        doc = load_json(path)
        if doc is not None:
            bench[path.stem] = doc
            bench_sources[f"bench:{path.stem}"] = str(path)
    sources = {
        name: str(value)
        for name, value in (
            ("ledger", args.ledger),
            ("heartbeat", args.heartbeat),
            ("scorecard", args.scorecard),
            ("bottleneck", args.bottleneck),
            ("trace", args.trace),
        )
        if value
    }
    sources.update(bench_sources)
    html_text = build_dashboard(
        title=args.title,
        ledger_records=read_ledger(args.ledger) if args.ledger else None,
        heartbeat_lines=load_jsonl(args.heartbeat),
        scorecard=load_json(args.scorecard),
        bottleneck=load_json(args.bottleneck),
        trace=load_json(args.trace),
        bench=bench,
        sources=sources,
    )
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html_text)
    print(f"dashboard         {out} ({len(html_text)} bytes, self-contained)")
    return 0


def _cmd_designs() -> int:
    for name in sorted(DESIGNS):
        factory = DESIGNS[name]
        secure = factory()
        if secure is None:
            print(f"{name:18s} insecure baseline")
            continue
        print(
            f"{name:18s} enc={secure.encryption.value:7s} "
            f"integrity={secure.integrity.value:8s} "
            f"mshrs={secure.counter_cache.num_mshrs}"
        )
    return 0


def _cmd_attack() -> int:
    from repro.secure.functional import IntegrityError, SecureMemory, SecureMemoryMode

    size = 16 * 1024
    print("attack matrix (16 KB functional secure memory):\n")
    print(f"{'mode':14s} {'tamper':>10s} {'splice':>10s} {'replay':>10s}")
    for mode in SecureMemoryMode:
        outcomes = []
        for attack in ("tamper", "splice", "replay"):
            memory = SecureMemory(protected_bytes=size, mode=mode)
            memory.write(0, b"A" * 64)
            memory.write(128, b"B" * 64)
            if attack == "tamper":
                memory.tamper(4, b"\xff\xff")
            elif attack == "splice":
                line0 = bytes(memory.store[0:128])
                memory.tamper(0, bytes(memory.store[128:256]))
                memory.tamper(128, line0)
            else:
                stale = memory.snapshot()
                memory.write(0, b"C" * 64)
                memory.restore(stale)
            try:
                memory.read(0, 64)
                outcomes.append("missed")
            except IntegrityError:
                outcomes.append("DETECTED")
        print(f"{mode.value:14s} {outcomes[0]:>10s} {outcomes[1]:>10s} {outcomes[2]:>10s}")
    print(
        "\nencryption-only modes miss everything; MACs catch tampering and"
        "\nsplicing; only a tree (BMT/MT) catches replay."
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.no_batch or args.no_pool:
        from repro.sim import fastpath

        fastpath.configure(
            batching=False if args.no_batch else None,
            pooling=False if args.no_pool else None,
        )
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bottleneck":
        return _cmd_bottleneck(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "scorecard":
        return _cmd_scorecard(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    if args.command == "designs":
        return _cmd_designs()
    if args.command == "attack":
        return _cmd_attack()
    if args.command == "storage":
        print(render_series_table("Table II (MB)", figures.table2(), "{:.2f}"))
        return 0
    if args.command == "area":
        print(render_series_table("Tables VI-VII", figures.table6_7(), "{:.5f}"))
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
