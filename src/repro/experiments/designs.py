"""The named design points of Tables V and VIII.

Each factory returns a :class:`SecureMemoryConfig` (or ``None`` for the
insecure baseline); :func:`build_gpu` turns one into a runnable
:class:`GpuConfig` at the experiment scale.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.common import params
from repro.common.config import (
    EncryptionMode,
    GpuConfig,
    IntegrityMode,
    MetadataCacheConfig,
    SecureMemoryConfig,
)

#: experiment scale: partitions in the scaled GPU (paper: 32).
DEFAULT_PARTITIONS = 4


def baseline() -> Optional[SecureMemoryConfig]:
    """Baseline GPU without secure memory support."""
    return None


def secure_mem(mshrs: int = 0) -> SecureMemoryConfig:
    """Counter-mode + MAC + BMT.

    Section V-A's ``secureMem`` models *no* metadata-cache MSHRs
    (``mshrs=0``); Sections V-B..V-E use 64.
    """
    return SecureMemoryConfig(
        encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.MAC_TREE
    ).with_metadata_mshrs(mshrs)


def zero_crypto(mshrs: int = 0) -> SecureMemoryConfig:
    """``0_crypto``: secureMem with zero MAC and encryption latency."""
    return replace(secure_mem(mshrs), zero_crypto_latency=True)


def perfect_mdc(mshrs: int = 0) -> SecureMemoryConfig:
    """``perf_mdc``: metadata caches never miss and never write back."""
    return replace(secure_mem(mshrs), perfect_metadata_cache=True)


def large_mdc(mshrs: int = 0) -> SecureMemoryConfig:
    """``large_mdc``: unbounded metadata caches (cold misses only)."""
    return replace(secure_mem(mshrs), infinite_metadata_cache=True)


def mshr_x(n: int) -> SecureMemoryConfig:
    """``mshr_x``: secureMem with *n* MSHRs per metadata cache (Fig. 6)."""
    return secure_mem(mshrs=n)


def mdc_size(size_bytes: int, mshrs: int = params.DEFAULT_METADATA_MSHRS) -> SecureMemoryConfig:
    """Counter-mode secureMem with each metadata cache of *size_bytes* (Fig. 7)."""
    return secure_mem(mshrs).with_metadata_cache_size(size_bytes)


def separate() -> SecureMemoryConfig:
    """Three separate 2 KB metadata caches (Section V-D)."""
    return secure_mem(mshrs=params.DEFAULT_METADATA_MSHRS)


def unified() -> SecureMemoryConfig:
    """One unified 6 KB metadata cache with 192 MSHRs (Section V-D)."""
    return replace(separate(), unified_metadata_cache=True)


def aes_engines(n: int) -> SecureMemoryConfig:
    """secureMem with *n* pipelined AES engines per partition (Fig. 12)."""
    return replace(separate(), aes_engines=n)


# --- Table VIII: direct encryption designs -----------------------------------


def ctr() -> SecureMemoryConfig:
    """Counter-mode encryption without any integrity protection."""
    return replace(
        SecureMemoryConfig(
            encryption=EncryptionMode.COUNTER, integrity=IntegrityMode.NONE
        ).with_metadata_mshrs(params.DEFAULT_METADATA_MSHRS),
    )


def ctr_bmt() -> SecureMemoryConfig:
    """Counter-mode with BMT protecting counter integrity (no MACs)."""
    return replace(ctr(), integrity=IntegrityMode.BMT)


def ctr_mac_bmt() -> SecureMemoryConfig:
    """Counter-mode with BMT and MACs (same as ``separate``)."""
    return separate()


def direct(latency: int = params.DEFAULT_AES_LATENCY) -> SecureMemoryConfig:
    """``direct_x``: direct encryption with *latency*-cycle AES, no integrity."""
    return SecureMemoryConfig(
        encryption=EncryptionMode.DIRECT,
        integrity=IntegrityMode.NONE,
        aes_latency=latency,
    ).with_metadata_mshrs(params.DEFAULT_METADATA_MSHRS)


def direct_mac() -> SecureMemoryConfig:
    """Direct encryption + MACs; the whole 6 KB budget goes to the MAC cache."""
    config = replace(direct(), integrity=IntegrityMode.MAC)
    return replace(
        config,
        mac_cache=replace(config.mac_cache, size_bytes=6 * 1024),
    )


def direct_mac_mt() -> SecureMemoryConfig:
    """Direct encryption + MACs + Merkle Tree; 3 KB MAC + 3 KB MT caches."""
    config = replace(direct(), integrity=IntegrityMode.MAC_TREE)
    return replace(
        config,
        mac_cache=replace(config.mac_cache, size_bytes=3 * 1024),
        tree_cache=replace(config.tree_cache, size_bytes=3 * 1024),
    )


# --- GPU assembly ------------------------------------------------------------


def build_gpu(
    secure: Optional[SecureMemoryConfig],
    num_partitions: int = DEFAULT_PARTITIONS,
    l2_bank_bytes: Optional[int] = None,
) -> GpuConfig:
    """A scaled GPU running the given secure-memory design.

    *l2_bank_bytes* overrides the per-bank L2 capacity (the Fig. 13 die-area
    experiment shrinks the L2 to make room for the security hardware).
    """
    config = GpuConfig.scaled(num_partitions=num_partitions, secure=secure)
    if l2_bank_bytes is not None:
        config = replace(config, l2_bank_bytes=l2_bank_bytes)
    return config


def l2_scaled_gpu(
    secure: Optional[SecureMemoryConfig],
    total_l2_mb: float,
    num_partitions: int = DEFAULT_PARTITIONS,
) -> GpuConfig:
    """``secureMem_xMB``: a GPU whose *total paper-scale* L2 is ``total_l2_mb``.

    The paper varies the full-GPU L2 from 4 MB to 6 MB (Fig. 13); the scaled
    model keeps the same per-partition share, so per-bank capacity is
    ``total_l2_mb / 32 partitions / 2 banks`` of the paper configuration.
    """
    per_bank = int(
        total_l2_mb
        * 1024
        * 1024
        / (params.PAPER_NUM_PARTITIONS * params.PAPER_L2_BANKS_PER_PARTITION)
    )
    per_bank = per_bank // params.CACHE_LINE_BYTES * params.CACHE_LINE_BYTES
    return build_gpu(secure, num_partitions=num_partitions, l2_bank_bytes=per_bank)


# --- Ablations beyond the paper's named designs -------------------------------


def blocking_verification() -> SecureMemoryConfig:
    """secureMem without speculative verification: loads wait for checks."""
    return replace(separate(), speculative_verification=False)


def eager_update() -> SecureMemoryConfig:
    """secureMem with eager tree maintenance instead of lazy update."""
    return replace(separate(), lazy_update=False)


def selective(fraction: float) -> SecureMemoryConfig:
    """secureMem protecting only *fraction* of all lines (Zuo et al.)."""
    return replace(separate(), protected_fraction=fraction)


def non_sectored_gpu(
    secure: Optional[SecureMemoryConfig], num_partitions: int = DEFAULT_PARTITIONS
) -> GpuConfig:
    """A GPU whose L2 fetches whole 128 B lines (no sectors).

    Removes the mechanism behind Section V-B's secondary misses; comparing
    against the sectored default isolates the cost of sectoring for secure
    memory.
    """
    return replace(build_gpu(secure, num_partitions), l2_sectored=False)


# --- The named-design registry ------------------------------------------------

#: name -> zero-argument design factory (GPU-level ablations excluded).
#: The single registry behind ``repro run --design``, the job store's
#: ``{"design": ...}`` point specs, and the HTTP sweep API — a design
#: submitted over the wire rebuilds the exact same config a CLI run uses.
DESIGNS = {
    "baseline": baseline,
    "secureMem": lambda: secure_mem(0),
    "secureMem_mshr64": lambda: secure_mem(64),
    "0_crypto": lambda: zero_crypto(0),
    "perf_mdc": lambda: perfect_mdc(0),
    "large_mdc": lambda: large_mdc(0),
    "separate": separate,
    "unified": unified,
    "ctr": ctr,
    "ctr_bmt": ctr_bmt,
    "ctr_mac_bmt": ctr_mac_bmt,
    "direct_40": lambda: direct(40),
    "direct_80": lambda: direct(80),
    "direct_160": lambda: direct(160),
    "direct_mac": direct_mac,
    "direct_mac_mt": direct_mac_mt,
    "aes_1": lambda: aes_engines(1),
    "blocking_verify": blocking_verification,
    "eager_update": eager_update,
    "selective_50": lambda: selective(0.5),
    "selective_25": lambda: selective(0.25),
}


def named_design(name: str) -> Optional[SecureMemoryConfig]:
    """The registry lookup, with an actionable error for unknown names."""
    try:
        factory = DESIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown design {name!r}; known designs: {', '.join(sorted(DESIGNS))}"
        ) from None
    return factory()


def build_named_gpu(name: str, num_partitions: int = DEFAULT_PARTITIONS) -> GpuConfig:
    """A runnable :class:`GpuConfig` for one registry design name."""
    return build_gpu(named_design(name), num_partitions=num_partitions)
