"""Experiment executor with result caching.

Figures share many simulation points (every figure needs the insecure
baseline, several share ``secureMem``); the :class:`Runner` memoizes
results by (workload, configuration, window) so a full paper regeneration
runs each distinct point exactly once.  An optional JSON cache file makes
re-runs across processes incremental.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.config import GpuConfig, MetadataKind
from repro.sim.gpu import SimulationResult, simulate
from repro.workloads.suite import BENCHMARK_ORDER, get_benchmark


def _jsonable(obj):
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def config_key(config: GpuConfig) -> str:
    """A stable digest of every field of a GPU configuration."""
    blob = json.dumps(_jsonable(config), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:20]


def result_to_dict(result: SimulationResult) -> dict:
    return {
        "workload": result.workload,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "bandwidth_utilization": result.bandwidth_utilization,
        "dram_txn": result.dram_txn,
        "l2_accesses": result.l2_accesses,
        "l2_misses": result.l2_misses,
        "counter_overflows": result.counter_overflows,
        "metadata": {k.value: dict(v) for k, v in result.metadata.items()},
    }


def result_from_dict(data: dict) -> SimulationResult:
    return SimulationResult(
        workload=data["workload"],
        cycles=data["cycles"],
        instructions=data["instructions"],
        ipc=data["ipc"],
        bandwidth_utilization=data["bandwidth_utilization"],
        dram_txn=dict(data["dram_txn"]),
        l2_accesses=data["l2_accesses"],
        l2_misses=data["l2_misses"],
        counter_overflows=data.get("counter_overflows", 0.0),
        metadata={MetadataKind(k): dict(v) for k, v in data["metadata"].items()},
    )


def gmean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's cross-benchmark aggregate."""
    values = [max(v, 1e-12) for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


class Runner:
    """Runs (workload, config) points once and remembers the answers."""

    def __init__(
        self,
        horizon: float = 12_000,
        warmup: float = 18_000,
        benchmarks: Optional[List[str]] = None,
        cache_path: Optional[str | Path] = None,
    ) -> None:
        self.horizon = horizon
        self.warmup = warmup
        self.benchmarks = list(benchmarks) if benchmarks is not None else list(BENCHMARK_ORDER)
        self._memory: Dict[Tuple[str, str], SimulationResult] = {}
        self._cache_path = Path(cache_path) if cache_path else None
        self._disk: Dict[str, dict] = {}
        if self._cache_path and self._cache_path.exists():
            self._disk = json.loads(self._cache_path.read_text())

    # ------------------------------------------------------------------

    def run(self, workload_name: str, config: GpuConfig) -> SimulationResult:
        key = (workload_name, config_key(config))
        if key in self._memory:
            return self._memory[key]
        disk_key = f"{workload_name}:{key[1]}:{self.horizon}:{self.warmup}"
        if disk_key in self._disk:
            result = result_from_dict(self._disk[disk_key])
        else:
            result = simulate(
                config, get_benchmark(workload_name), horizon=self.horizon, warmup=self.warmup
            )
            if self._cache_path is not None:
                self._disk[disk_key] = result_to_dict(result)
                self._flush()
        self._memory[key] = result
        return result

    def _flush(self) -> None:
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        self._cache_path.write_text(json.dumps(self._disk))

    # ------------------------------------------------------------------

    def sweep(self, config: GpuConfig) -> Dict[str, SimulationResult]:
        """Run every benchmark on one configuration."""
        return {name: self.run(name, config) for name in self.benchmarks}

    def normalized_ipc(
        self, workload_name: str, config: GpuConfig, baseline: GpuConfig
    ) -> float:
        secure = self.run(workload_name, config)
        base = self.run(workload_name, baseline)
        return secure.ipc / base.ipc if base.ipc else 0.0

    def normalized_sweep(
        self, config: GpuConfig, baseline: GpuConfig
    ) -> Dict[str, float]:
        """Normalized IPC per benchmark plus the paper's Gmean aggregate."""
        series = {
            name: self.normalized_ipc(name, config, baseline) for name in self.benchmarks
        }
        series["Gmean"] = gmean(series.values())
        return series
