"""Experiment executor with result caching.

Figures share many simulation points (every figure needs the insecure
baseline, several share ``secureMem``); the :class:`Runner` memoizes
results by (workload, configuration, window) so a full paper regeneration
runs each distinct point exactly once.  An optional JSON cache file makes
re-runs across processes incremental.

Cache writes are batched and atomic (tmp file + ``os.replace``): the cache
is flushed every ``flush_every`` new points, on :meth:`Runner.flush`, on
context-manager exit, and best-effort on garbage collection, so a killed
run never leaves a truncated file behind.  A corrupt or unreadable cache
is ignored with a warning instead of aborting construction.

:class:`~repro.experiments.parallel.ParallelRunner` subclasses this to fan
simulation points out over a process pool with a sharded on-disk cache;
:meth:`Runner.prefetch` is the hook figure drivers use to hand it whole
batches of points up front.
"""

from __future__ import annotations

import dataclasses
import enum
import gc
import hashlib
import json
import math
import os
import time
import warnings
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.config import GpuConfig, MetadataKind
from repro.sim.gpu import SimulationResult, simulate
from repro.telemetry.session import write_artifacts
from repro.workloads.suite import BENCHMARK_ORDER, get_benchmark


def _jsonable(obj):
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def _config_digest(config: GpuConfig) -> str:
    fields = _jsonable(config)
    # Telemetry is pure observability: it never changes timing or counters,
    # so it is excluded from the digest — results cached before (or without)
    # telemetry stay valid, and enabling tracing never forces a re-run.
    fields.pop("telemetry", None)
    blob = json.dumps(fields, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:20]


#: digest memo keyed by the (frozen, hashable) config itself.  A full
#: paper matrix has a few dozen distinct configs but calls ``config_key``
#: once per ``run()``/``normalized_ipc()`` — without the memo every lookup
#: re-serializes and re-hashes the whole dataclass tree.
_CONFIG_KEYS: Dict[GpuConfig, str] = {}
_CONFIG_KEYS_MAX = 4096


def config_key(config: GpuConfig) -> str:
    """A stable digest of every field of a GPU configuration."""
    try:
        cached = _CONFIG_KEYS.get(config)
    except TypeError:  # unhashable (non-frozen subclass, dict field, ...)
        return _config_digest(config)
    if cached is None:
        cached = _config_digest(config)
        if len(_CONFIG_KEYS) >= _CONFIG_KEYS_MAX:
            _CONFIG_KEYS.clear()
        _CONFIG_KEYS[config] = cached
    return cached


def result_to_dict(result: SimulationResult) -> dict:
    return {
        "workload": result.workload,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "bandwidth_utilization": result.bandwidth_utilization,
        "dram_txn": result.dram_txn,
        "l2_accesses": result.l2_accesses,
        "l2_misses": result.l2_misses,
        "counter_overflows": result.counter_overflows,
        "metadata": {k.value: dict(v) for k, v in result.metadata.items()},
    }


def result_from_dict(data: dict) -> SimulationResult:
    return SimulationResult(
        workload=data["workload"],
        cycles=data["cycles"],
        instructions=data["instructions"],
        ipc=data["ipc"],
        bandwidth_utilization=data["bandwidth_utilization"],
        dram_txn=dict(data["dram_txn"]),
        l2_accesses=data["l2_accesses"],
        l2_misses=data["l2_misses"],
        counter_overflows=data.get("counter_overflows", 0.0),
        metadata={MetadataKind(k): dict(v) for k, v in data["metadata"].items()},
    )


def gmean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's cross-benchmark aggregate."""
    values = [max(v, 1e-12) for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclasses.dataclass
class RunnerStats:
    """Throughput accounting for one runner's lifetime.

    ``phase_seconds`` is filled by the parallel runner (plan / simulate /
    merge); the serial runner only accumulates ``sim_seconds``.
    """

    points_simulated: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    sim_seconds: float = 0.0
    phase_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.points_simulated + self.memory_hits + self.disk_hits

    @property
    def cache_hit_rate(self) -> float:
        return (self.memory_hits + self.disk_hits) / self.lookups if self.lookups else 0.0

    @property
    def points_per_second(self) -> float:
        return self.points_simulated / self.sim_seconds if self.sim_seconds else 0.0

    def add_phase(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    def to_dict(self) -> dict:
        return {
            "points_simulated": self.points_simulated,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "sim_seconds": self.sim_seconds,
            "points_per_second": self.points_per_second,
            "phase_seconds": dict(self.phase_seconds),
        }

    def summary(self) -> str:
        parts = [
            f"{self.points_simulated} points simulated",
            f"{self.points_per_second:.2f} points/s",
            f"{100 * self.cache_hit_rate:.1f}% cache hit-rate "
            f"({self.memory_hits} memory / {self.disk_hits} disk)",
        ]
        for name, secs in self.phase_seconds.items():
            parts.append(f"{name} {secs:.1f}s")
        return " | ".join(parts)


class Runner:
    """Runs (workload, config) points once and remembers the answers."""

    def __init__(
        self,
        horizon: float = 12_000,
        warmup: float = 18_000,
        benchmarks: Optional[List[str]] = None,
        cache_path: Optional[str | Path] = None,
        flush_every: int = 16,
        telemetry_dir: Optional[str | Path] = None,
        ledger_path: Optional[str | Path] = None,
        metrics=None,
    ) -> None:
        self.horizon = horizon
        self.warmup = warmup
        # Live metrics are opt-in and NULL by default: the sim hot path
        # must cost nothing when nobody is watching.  Guarded by a plain
        # bool so the default path never even calls the null stubs.
        if metrics is None:
            # deferred import: repro.obsv.scorecard imports this module.
            from repro.obsv.metrics import NULL_METRICS

            metrics = NULL_METRICS
        self.metrics = metrics
        self._metrics_on = bool(metrics.enabled)
        if self._metrics_on:
            self._m_points = metrics.counter(
                "repro_runner_points_total",
                "Points resolved by this runner, by outcome",
                labels=("outcome",),
            )
            self._m_rate = metrics.gauge(
                "repro_runner_points_per_s",
                "Simulation throughput over this runner's lifetime",
            )
            self._m_hit_ratio = metrics.gauge(
                "repro_runner_cache_hit_ratio",
                "Fraction of lookups served from memory or disk cache",
            )
        self.benchmarks = list(benchmarks) if benchmarks is not None else list(BENCHMARK_ORDER)
        #: where per-point telemetry artifacts land (next to the result
        #: cache, one subdirectory per simulated point).  None disables
        #: persistence; points whose configs have telemetry off export
        #: nothing either way.
        self.telemetry_dir = Path(telemetry_dir) if telemetry_dir else None
        #: optional run ledger — one append-only JSONL record per point
        #: that reached disk (simulated, served from the disk cache, or
        #: failed).  Memory hits are never recorded: they are re-reads of
        #: a point this process already accounted for.
        self.ledger = None
        if ledger_path is not None:
            # deferred import: repro.obsv.scorecard imports this module.
            from repro.obsv.ledger import RunLedger

            self.ledger = RunLedger(ledger_path)
        self.stats = RunnerStats()
        # Distributed-trace context, NULL by default (same discipline as
        # metrics): a worker executing a claimed job injects a recorder +
        # parent span via set_trace_context, and every site below guards
        # on the plain bool so the untraced path — the one golden dumps
        # are recorded on — does no extra work.
        self._spans = None
        self._span_parent = None
        self._spans_on = False
        self._memory: Dict[Tuple[str, str], SimulationResult] = {}
        self._cache_path = Path(cache_path) if cache_path else None
        self._disk: Dict[str, dict] = {}
        self._dirty = 0
        self._flush_every = max(1, int(flush_every))
        self._cache_open()

    # -- cache primitives (overridden by ParallelRunner) ----------------

    def _cache_open(self) -> None:
        if self._cache_path is None or not self._cache_path.exists():
            return
        try:
            data = json.loads(self._cache_path.read_text())
            if not isinstance(data, dict):
                raise ValueError(f"expected a JSON object, got {type(data).__name__}")
            self._disk = data
        except (ValueError, OSError) as exc:  # json.JSONDecodeError is a ValueError
            warnings.warn(
                f"ignoring corrupt result cache {self._cache_path}: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            self._disk = {}

    def _cache_get(self, disk_key: str) -> Optional[dict]:
        return self._disk.get(disk_key)

    def _cache_put(self, disk_key: str, payload: dict) -> None:
        if self._cache_path is None:
            return
        self._disk[disk_key] = payload
        self._dirty += 1
        if self._dirty >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Write pending results to disk atomically (tmp + ``os.replace``)."""
        if self._cache_path is None or not self._dirty:
            return
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._cache_path.with_name(self._cache_path.name + ".tmp")
        tmp.write_text(json.dumps(self._disk))
        os.replace(tmp, self._cache_path)
        self._dirty = 0

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort: don't lose the cache tail
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------

    def _disk_key(self, workload_name: str, cfg_key: str) -> str:
        return f"{workload_name}:{cfg_key}:{self.horizon}:{self.warmup}"

    def _persist_telemetry(
        self, workload_name: str, cfg_key: str, export: Optional[dict]
    ) -> Optional[Path]:
        """Write one point's telemetry artifacts under :attr:`telemetry_dir`.

        The directory name embeds the config digest so different designs of
        the same workload never collide.  Returns the directory, or None
        when there is nothing to persist.
        """
        if export is None or self.telemetry_dir is None:
            return None
        directory = self.telemetry_dir / f"{workload_name}-{cfg_key[:12]}"
        write_artifacts(directory, export)
        return directory

    def set_trace_context(self, recorder, parent=None) -> None:
        """Attach (or clear) distributed-trace context.

        *recorder* is a :class:`~repro.obsv.spans.SpanRecorder` (or the
        NULL stub, or ``None`` to clear); *parent* is the span/context
        the per-point spans hang beneath — the worker's ``worker.execute``
        span on the serving path.
        """
        self._spans = recorder
        self._span_parent = parent
        self._spans_on = bool(recorder is not None and recorder.enabled)

    def _record_ledger(
        self,
        workload_name: str,
        cfg_key: str,
        outcome: str,
        duration_s: Optional[float] = None,
        stats: Optional[dict] = None,
        telemetry_dir: Optional[Path] = None,
        error: Optional[str] = None,
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
    ) -> None:
        if self.ledger is None:
            return
        self.ledger.record_point(
            workload_name,
            cfg_key,
            self.horizon,
            self.warmup,
            outcome,
            duration_s=duration_s,
            stats=stats,
            telemetry_dir=telemetry_dir,
            error=error,
            trace_id=trace_id,
            span_id=span_id,
        )

    def _refresh_metric_gauges(self) -> None:
        self._m_rate.set(self.stats.points_per_second)
        self._m_hit_ratio.set(self.stats.cache_hit_rate)

    def run(self, workload_name: str, config: GpuConfig) -> SimulationResult:
        key = (workload_name, config_key(config))
        cached = self._memory.get(key)
        if cached is not None:
            self.stats.memory_hits += 1
            if self._metrics_on:
                self._m_points.labels("memory_hit").inc()
            if self._spans_on:
                self._spans.record(
                    "runner.point", component="runner",
                    parent=self._span_parent,
                    attrs={"workload": workload_name, "config": key[1],
                           "outcome": "memory_hit"},
                )
            return cached
        disk_key = self._disk_key(workload_name, key[1])
        payload = self._cache_get(disk_key)
        if payload is not None:
            self.stats.disk_hits += 1
            if self._metrics_on:
                self._m_points.labels("disk_hit").inc()
            result = result_from_dict(payload)
            trace_id = span_id = None
            if self._spans_on:
                span_record = self._spans.record(
                    "runner.point", component="runner",
                    parent=self._span_parent,
                    attrs={"workload": workload_name, "config": key[1],
                           "outcome": "cached"},
                )
                trace_id = span_record["trace_id"]
                span_id = span_record["span_id"]
            if self.ledger is not None:
                from repro.obsv.ledger import key_stats

                self._record_ledger(
                    workload_name, key[1], "cached", stats=key_stats(result),
                    trace_id=trace_id, span_id=span_id,
                )
        else:
            point_span = None
            sim_span = None
            if self._spans_on:
                point_span = self._spans.start_span(
                    "runner.point", component="runner",
                    parent=self._span_parent,
                    attrs={"workload": workload_name, "config": key[1]},
                )
                sim_span = self._spans.start_span(
                    "runner.simulate", component="runner", parent=point_span,
                    attrs={"workload": workload_name,
                           "horizon": self.horizon, "warmup": self.warmup},
                )
            t0 = time.perf_counter()
            try:
                result = simulate(
                    config,
                    get_benchmark(workload_name),
                    horizon=self.horizon,
                    warmup=self.warmup,
                )
            except (Exception, KeyboardInterrupt) as exc:
                if point_span is not None:
                    sim_span.end(status="error")
                    point_span.set(outcome="failed")
                    point_span.end(status="error")
                self._record_ledger(
                    workload_name,
                    key[1],
                    "failed",
                    duration_s=time.perf_counter() - t0,
                    error=f"{type(exc).__name__}: {exc}",
                    trace_id=point_span.trace_id if point_span else None,
                    span_id=point_span.span_id if point_span else None,
                )
                raise
            elapsed = time.perf_counter() - t0
            if sim_span is not None:
                sim_span.end()
            self.stats.sim_seconds += elapsed
            self.stats.points_simulated += 1
            if self._metrics_on:
                self._m_points.labels("simulated").inc()
                self._refresh_metric_gauges()
            if point_span is not None and isinstance(result.telemetry, dict):
                # join the point's sim-level artifacts (trace.json meta /
                # summary.json) to its service-level span.  Only when a
                # trace is live: untraced exports stay byte-identical.
                meta = result.telemetry.get("meta")
                if isinstance(meta, dict):
                    meta["trace_id"] = point_span.trace_id
                    meta["span_id"] = point_span.span_id
            tel_dir = self._persist_telemetry(workload_name, key[1], result.telemetry)
            # the result cache stays telemetry-free: artifacts live in
            # telemetry_dir, and cached payloads are identical whether the
            # point ran with tracing on or off.
            self._cache_put(disk_key, result_to_dict(result))
            if self.ledger is not None:
                from repro.obsv.ledger import key_stats

                self._record_ledger(
                    workload_name,
                    key[1],
                    "simulated",
                    duration_s=elapsed,
                    stats=key_stats(result),
                    telemetry_dir=tel_dir,
                    trace_id=point_span.trace_id if point_span else None,
                    span_id=point_span.span_id if point_span else None,
                )
            if point_span is not None:
                point_span.set(outcome="simulated")
                point_span.end()
        self._memory[key] = result
        return result

    def prefetch(self, points: Iterable[Tuple[str, GpuConfig]]) -> int:
        """Make a batch of points resident before they are read.

        The serial runner just runs them in order; the parallel runner
        overrides this to fan the missing ones out over a process pool.
        Returns the number of points that had to be simulated.
        """
        before = self.stats.points_simulated
        # one collector pause for the whole batch: each simulate() pauses
        # gc on its own, but re-enabling between points triggers threshold
        # collections over the just-dropped model graphs mid-batch.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            for workload_name, config in points:
                self.run(workload_name, config)
        finally:
            if was_enabled:
                gc.enable()
        return self.stats.points_simulated - before

    def warm_state(self) -> dict:
        """Cross-point warm state accumulated by this process.

        The batched core shares immutable secure-geometry memos (layouts,
        address translations, tree-parent maps) across every point a
        process executes; this reports their sizes.  For a
        :class:`~repro.experiments.parallel.ParallelRunner` the answer
        describes the *parent* process only — pool workers each accumulate
        their own warm state and drop it when the pool shuts down.
        """
        from repro.sim import fastpath

        return fastpath.warm_state()

    # ------------------------------------------------------------------

    def sweep(self, config: GpuConfig) -> Dict[str, SimulationResult]:
        """Run every benchmark on one configuration."""
        self.prefetch((name, config) for name in self.benchmarks)
        return {name: self.run(name, config) for name in self.benchmarks}

    def normalized_ipc(
        self, workload_name: str, config: GpuConfig, baseline: GpuConfig
    ) -> float:
        secure = self.run(workload_name, config)
        base = self.run(workload_name, baseline)
        return secure.ipc / base.ipc if base.ipc else 0.0

    def normalized_sweep(
        self, config: GpuConfig, baseline: GpuConfig
    ) -> Dict[str, float]:
        """Normalized IPC per benchmark plus the paper's Gmean aggregate."""
        self.prefetch(
            (name, cfg) for cfg in (config, baseline) for name in self.benchmarks
        )
        series = {
            name: self.normalized_ipc(name, config, baseline) for name in self.benchmarks
        }
        series["Gmean"] = gmean(series.values())
        return series
