"""One driver per paper table/figure.

Every function takes a :class:`~repro.experiments.runner.Runner` and
returns ``{row: {column: value}}`` — rows are benchmarks (plus ``Gmean``
where the paper aggregates), columns are the compared designs.  The
benchmark harness renders these with
:func:`repro.analysis.report.render_series_table`.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.reuse import reuse_distance_histogram
from repro.common import params
from repro.common.config import GpuConfig, MetadataKind
from repro.experiments import designs
from repro.experiments.runner import Runner
from repro.sim.gpu import simulate
from repro.workloads.suite import PAPER_TABLE4, get_benchmark

Series = Dict[str, Dict[str, float]]


def _baseline(partitions: int) -> GpuConfig:
    return designs.build_gpu(designs.baseline(), num_partitions=partitions)


def _normalized_columns(
    runner: Runner, columns: Dict[str, GpuConfig], partitions: int
) -> Series:
    base = _baseline(partitions)
    # one batch with every (benchmark, column) point plus the shared
    # baseline: a ParallelRunner fans the whole figure out at once.
    runner.prefetch(
        (name, config)
        for config in list(columns.values()) + [base]
        for name in runner.benchmarks
    )
    table: Series = {name: {} for name in runner.benchmarks + ["Gmean"]}
    for label, config in columns.items():
        sweep = runner.normalized_sweep(config, base)
        for bench, value in sweep.items():
            table[bench][label] = value
    return table


# ---------------------------------------------------------------------------
# Table IV — baseline characterization
# ---------------------------------------------------------------------------


def table4(runner: Runner, partitions: int = designs.DEFAULT_PARTITIONS) -> Series:
    """Baseline IPC and bandwidth utilization, with the paper's values."""
    base = _baseline(partitions)
    runner.prefetch((name, base) for name in runner.benchmarks)
    peak_ipc = base.num_sms * base.sm_issue_width * 32
    table: Series = {}
    for name in runner.benchmarks:
        result = runner.run(name, base)
        lo, hi, paper_ipc = PAPER_TABLE4[name]
        table[name] = {
            "bw_util_%": 100 * result.bandwidth_utilization,
            "ipc_%peak": 100 * result.ipc / peak_ipc,
            "paper_bw_lo_%": lo,
            "paper_bw_hi_%": hi,
            "paper_ipc_%peak": 100 * paper_ipc / (80 * 4 * 32),
        }
    return table


# ---------------------------------------------------------------------------
# Figure 3 — counter-mode overhead and idealized designs
# ---------------------------------------------------------------------------


def fig3(runner: Runner, partitions: int = designs.DEFAULT_PARTITIONS) -> Series:
    """Normalized IPC: secureMem (no MSHRs), 0_crypto, perf_mdc, large_mdc."""
    columns = {
        "secureMem": designs.build_gpu(designs.secure_mem(0), partitions),
        "0_crypto": designs.build_gpu(designs.zero_crypto(0), partitions),
        "perf_mdc": designs.build_gpu(designs.perfect_mdc(0), partitions),
        "large_mdc": designs.build_gpu(designs.large_mdc(0), partitions),
    }
    return _normalized_columns(runner, columns, partitions)


# ---------------------------------------------------------------------------
# Figure 4 — memory-request distribution under secureMem
# ---------------------------------------------------------------------------


def fig4(runner: Runner, partitions: int = designs.DEFAULT_PARTITIONS) -> Series:
    """Traffic shares: data / ctr / mac / bmt / wb (secureMem, no MSHRs)."""
    config = designs.build_gpu(designs.secure_mem(0), partitions)
    runner.prefetch((name, config) for name in runner.benchmarks)
    table: Series = {}
    totals = {"data": 0.0, "ctr": 0.0, "mac": 0.0, "bmt": 0.0, "wb": 0.0}
    for name in runner.benchmarks:
        fractions = runner.run(name, config).traffic_fractions()
        table[name] = fractions
        for key in totals:
            totals[key] += fractions[key]
    table["Average"] = {k: v / len(runner.benchmarks) for k, v in totals.items()}
    return table


# ---------------------------------------------------------------------------
# Figure 5 — secondary misses in metadata caches
# ---------------------------------------------------------------------------


def fig5(runner: Runner, partitions: int = designs.DEFAULT_PARTITIONS) -> Series:
    """Secondary-miss share of all metadata-cache misses, per kind."""
    config = designs.build_gpu(designs.secure_mem(0), partitions)
    runner.prefetch((name, config) for name in runner.benchmarks)
    table: Series = {}
    sums = {kind: [] for kind in MetadataKind}
    for name in runner.benchmarks:
        result = runner.run(name, config)
        row = {}
        for kind in MetadataKind:
            ratio = result.secondary_miss_ratio(kind)
            row[kind.value] = ratio
            if result.metadata[kind]["misses"]:
                sums[kind].append(ratio)
        table[name] = row
    table["Average"] = {
        kind.value: (sum(v) / len(v) if v else 0.0) for kind, v in sums.items()
    }
    return table


# ---------------------------------------------------------------------------
# Figure 6 — MSHR count sweep
# ---------------------------------------------------------------------------


def fig6(
    runner: Runner,
    partitions: int = designs.DEFAULT_PARTITIONS,
    mshr_counts: Sequence[int] = (0, 16, 32, 64, 128),
) -> Series:
    """Normalized IPC with different metadata-cache MSHR counts."""
    columns = {
        f"mshr_{n}": designs.build_gpu(designs.mshr_x(n), partitions) for n in mshr_counts
    }
    return _normalized_columns(runner, columns, partitions)


# ---------------------------------------------------------------------------
# Figure 7 — metadata cache size sweep
# ---------------------------------------------------------------------------


def fig7(
    runner: Runner,
    partitions: int = designs.DEFAULT_PARTITIONS,
    sizes_kb: Sequence[int] = (2, 4, 8, 16, 32, 64),
) -> Series:
    """Normalized IPC with {2..64} KB per-kind metadata caches."""
    columns = {
        f"{kb}KB": designs.build_gpu(designs.mdc_size(kb * 1024), partitions)
        for kb in sizes_kb
    }
    return _normalized_columns(runner, columns, partitions)


# ---------------------------------------------------------------------------
# Figures 8 and 9 — unified vs separate metadata caches
# ---------------------------------------------------------------------------


def fig8(runner: Runner, partitions: int = designs.DEFAULT_PARTITIONS) -> Series:
    """Normalized IPC: separate 3x2KB caches vs one unified 6KB cache."""
    columns = {
        "separate": designs.build_gpu(designs.separate(), partitions),
        "unified": designs.build_gpu(designs.unified(), partitions),
    }
    return _normalized_columns(runner, columns, partitions)


def fig9(runner: Runner, partitions: int = designs.DEFAULT_PARTITIONS) -> Series:
    """Metadata miss rates per kind, separate vs unified.

    Also reports the metadata-writeback traffic (``wb_txn`` row): the paper
    measures 1.47x more writebacks with the unified cache, the thrashing
    signature behind Figure 8's IPC gap.
    """
    configs = {
        "separate": designs.build_gpu(designs.separate(), partitions),
        "unified": designs.build_gpu(designs.unified(), partitions),
    }
    runner.prefetch(
        (name, config) for config in configs.values() for name in runner.benchmarks
    )
    table: Series = {}
    for org, config in configs.items():
        totals = {kind: [0.0, 0.0] for kind in MetadataKind}  # misses, accesses
        writebacks = 0.0
        for name in runner.benchmarks:
            result = runner.run(name, config)
            for kind in MetadataKind:
                totals[kind][0] += result.metadata[kind]["misses"]
                totals[kind][1] += result.metadata[kind]["accesses"]
            writebacks += result.dram_txn["wb"]
        for kind in MetadataKind:
            misses, accesses = totals[kind]
            table.setdefault(kind.value, {})[org] = misses / accesses if accesses else 0.0
        table.setdefault("wb_txn", {})[org] = writebacks
    return table


# ---------------------------------------------------------------------------
# Figures 10-11 — reuse distance of counters / MACs (fdtd2d)
# ---------------------------------------------------------------------------


def fig10_11(
    runner: Runner,
    partitions: int = designs.DEFAULT_PARTITIONS,
    workload: str = "fdtd2d",
) -> Dict[str, Series]:
    """Reuse-distance histograms of counter and MAC accesses on partition 0.

    Returns ``{"fig10_ctr": {...}, "fig11_mac": {...}}``; each inner table
    has rows ``separate``/``unified`` and bucket columns.
    """
    out: Dict[str, Series] = {"fig10_ctr": {}, "fig11_mac": {}}
    for org, secure in (("separate", designs.separate()), ("unified", designs.unified())):
        config = designs.build_gpu(secure, partitions)
        _result, trace = simulate(
            config,
            get_benchmark(workload),
            horizon=runner.horizon + runner.warmup,
            metadata_trace=True,
        )
        ctr_trace = [addr for kind, addr in trace if kind is MetadataKind.COUNTER]
        mac_trace = [addr for kind, addr in trace if kind is MetadataKind.MAC]
        out["fig10_ctr"][org] = {
            k: float(v) for k, v in reuse_distance_histogram(ctr_trace).items()
        }
        out["fig11_mac"][org] = {
            k: float(v) for k, v in reuse_distance_histogram(mac_trace).items()
        }
    return out


# ---------------------------------------------------------------------------
# Figure 12 — AES engine count
# ---------------------------------------------------------------------------


def fig12(runner: Runner, partitions: int = designs.DEFAULT_PARTITIONS) -> Series:
    """Normalized IPC with 1 vs 2 AES engines per partition."""
    columns = {
        "aes_1": designs.build_gpu(designs.aes_engines(1), partitions),
        "aes_2": designs.build_gpu(designs.aes_engines(2), partitions),
    }
    return _normalized_columns(runner, columns, partitions)


# ---------------------------------------------------------------------------
# Figures 13-14 — L2 capacity sensitivity
# ---------------------------------------------------------------------------


def fig13(
    runner: Runner,
    partitions: int = designs.DEFAULT_PARTITIONS,
    l2_sizes_mb: Sequence[float] = (4.0, 4.5, 5.0, 5.5, 6.0),
) -> Series:
    """Normalized IPC of secureMem with the L2 shrunk for security hardware."""
    columns = {
        f"secureMem_{mb:g}MB": designs.l2_scaled_gpu(designs.separate(), mb, partitions)
        for mb in l2_sizes_mb
    }
    return _normalized_columns(runner, columns, partitions)


def fig14(runner: Runner, partitions: int = designs.DEFAULT_PARTITIONS) -> Series:
    """Baseline L2 miss rate per benchmark."""
    base = _baseline(partitions)
    runner.prefetch((name, base) for name in runner.benchmarks)
    return {
        name: {"l2_miss_rate": runner.run(name, base).l2_miss_rate}
        for name in runner.benchmarks
    }


# ---------------------------------------------------------------------------
# Figure 15 — direct-encryption latency sweep
# ---------------------------------------------------------------------------


def fig15(
    runner: Runner,
    partitions: int = designs.DEFAULT_PARTITIONS,
    latencies: Sequence[int] = (40, 80, 160),
) -> Series:
    """Normalized IPC of direct encryption at various AES latencies."""
    columns = {
        f"direct_{lat}": designs.build_gpu(designs.direct(lat), partitions)
        for lat in latencies
    }
    return _normalized_columns(runner, columns, partitions)


# ---------------------------------------------------------------------------
# Figure 16 — direct vs counter-mode encryption (no MAC)
# ---------------------------------------------------------------------------


def fig16(runner: Runner, partitions: int = designs.DEFAULT_PARTITIONS) -> Series:
    """Normalized IPC: direct_40 vs ctr vs ctr_bmt."""
    columns = {
        "direct_40": designs.build_gpu(designs.direct(40), partitions),
        "ctr": designs.build_gpu(designs.ctr(), partitions),
        "ctr_bmt": designs.build_gpu(designs.ctr_bmt(), partitions),
    }
    return _normalized_columns(runner, columns, partitions)


# ---------------------------------------------------------------------------
# Figure 17 — full integrity protection comparison
# ---------------------------------------------------------------------------


def fig17(runner: Runner, partitions: int = designs.DEFAULT_PARTITIONS) -> Series:
    """Normalized IPC: ctr_mac_bmt vs direct_mac vs direct_mac_mt."""
    columns = {
        "ctr_mac_bmt": designs.build_gpu(designs.ctr_mac_bmt(), partitions),
        "direct_mac": designs.build_gpu(designs.direct_mac(), partitions),
        "direct_mac_mt": designs.build_gpu(designs.direct_mac_mt(), partitions),
    }
    return _normalized_columns(runner, columns, partitions)


# ---------------------------------------------------------------------------
# Tables II, VI, VII — storage and area arithmetic (exact, no simulation)
# ---------------------------------------------------------------------------


def table2() -> Series:
    """Metadata storage for both modes over the paper's 4 GB range."""
    from repro.secure.layout import MetadataLayout

    layout = MetadataLayout(params.PROTECTED_MEMORY_BYTES)
    mb = 1024 * 1024
    return {
        "counter": {
            "counter_mode_MB": layout.counter_region_bytes / mb,
            "direct_MB": 0.0,
        },
        "mac": {
            "counter_mode_MB": layout.mac_region_bytes / mb,
            "direct_MB": layout.mac_region_bytes / mb,
        },
        "tree": {
            "counter_mode_MB": layout.bmt_region_bytes / mb,
            "direct_MB": layout.mt_region_bytes / mb,
        },
        "total": {
            "counter_mode_MB": layout.total_metadata_bytes(counter_mode=True) / mb,
            "direct_MB": layout.total_metadata_bytes(counter_mode=False) / mb,
        },
    }


def table6_7() -> Series:
    """AES/cache die areas and the L2 displacement estimate."""
    from repro.analysis.area import AreaModel

    model = AreaModel()
    table: Series = {}
    for name, row in model.table7().items():
        table[name] = {
            "native_mm2": row["native_mm2"],
            "scaled_12nm_mm2": row["scaled_mm2"],
        }
    table["L2 displaced"] = {
        "kb": model.l2_reduction_kb(),
        "fraction_%": 100 * model.l2_reduction_fraction(),
    }
    return table


#: registry used by the regeneration script and smoke tests.
ALL_FIGURES = {
    "table4": table4,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
}


# ---------------------------------------------------------------------------
# Ablations beyond the paper (design choices Section IV adopts by fiat)
# ---------------------------------------------------------------------------


def ablations(runner: Runner, partitions: int = designs.DEFAULT_PARTITIONS) -> Series:
    """Normalized IPC for the design choices the paper adopts unexamined.

    * ``blocking_verify`` — disable speculative verification,
    * ``eager_update`` — disable lazy tree updates,
    * ``selective_50/25`` — protect only half / a quarter of all lines,
    * ``non_sectored`` — secure memory on a non-sectored L2, normalized to
      the non-sectored insecure baseline (isolates what sectoring costs
      secure memory).
    """
    base = _baseline(partitions)
    columns = {
        "secureMem": designs.build_gpu(designs.separate(), partitions),
        "blocking_verify": designs.build_gpu(designs.blocking_verification(), partitions),
        "eager_update": designs.build_gpu(designs.eager_update(), partitions),
        "selective_50": designs.build_gpu(designs.selective(0.5), partitions),
        "selective_25": designs.build_gpu(designs.selective(0.25), partitions),
    }
    table = _normalized_columns(runner, columns, partitions)
    ns_base = designs.non_sectored_gpu(None, partitions)
    ns_secure = designs.non_sectored_gpu(designs.separate(), partitions)
    runner.prefetch(
        (name, config) for config in (ns_secure, ns_base) for name in runner.benchmarks
    )
    sweep = runner.normalized_sweep(ns_secure, ns_base)
    for bench, value in sweep.items():
        table[bench]["non_sectored"] = value
    return table


ALL_FIGURES["ablations"] = ablations


def occupancy_study(
    runner: Runner,
    partitions: int = designs.DEFAULT_PARTITIONS,
    warp_counts: Sequence[int] = (2, 4, 8, 16, 32),
    workload: str = "streamcluster",
    latency: int = 160,
) -> Series:
    """Latency tolerance vs occupancy: the mechanism behind Figure 15.

    Runs *workload* with different warps-per-SM caps and reports the
    direct-encryption (worst-case 160-cycle latency) slowdown at each
    occupancy.  The paper asserts GPUs tolerate crypto latency because of
    TLP; this sweep shows the tolerance appearing as warps are added.
    """
    from dataclasses import replace as _replace

    pairs = {
        warps: (
            _replace(_baseline(partitions), max_warps_per_sm=warps),
            _replace(
                designs.build_gpu(designs.direct(latency), partitions),
                max_warps_per_sm=warps,
            ),
        )
        for warps in warp_counts
    }
    runner.prefetch((workload, cfg) for pair in pairs.values() for cfg in pair)
    table: Series = {}
    for warps, (base_cfg, direct_cfg) in pairs.items():
        base = runner.run(workload, base_cfg)
        direct = runner.run(workload, direct_cfg)
        table[f"warps_{warps}"] = {
            "baseline_ipc": base.ipc,
            "direct_ipc": direct.ipc,
            "normalized": direct.ipc / base.ipc if base.ipc else 0.0,
        }
    return table


ALL_FIGURES["occupancy"] = occupancy_study
