"""Parallel experiment execution: process-pool fan-out with a sharded cache.

The paper's evaluation is a large matrix of *independent* ``(workload,
config)`` simulation points, so a full regeneration is embarrassingly
parallel.  :class:`ParallelRunner` is a drop-in superset of
:class:`~repro.experiments.runner.Runner` that

1. **plans** — collects the distinct points a figure or sweep needs and
   subtracts everything already resident in memory or on disk,
2. **simulates** — fans the missing points out over a
   :class:`concurrent.futures.ProcessPoolExecutor` (``jobs=1`` runs the
   exact serial in-process path), and
3. **merges** — folds worker results back in submission order, so the
   resulting cache and memo tables are deterministic regardless of which
   worker finished first.

The simulator is deterministic, so a point simulated in a worker process
produces a bit-identical result dict to one simulated serially.

On-disk format (:class:`ShardedResultCache`) is a directory of
append-only JSONL shards::

    cache_dir/
      shard-00.jsonl     # one JSON object per line: {"key": ..., "result": ...}
      ...
      shard-0f.jsonl

Each completed point is appended to its shard immediately (O(1) I/O per
point, unlike the legacy whole-file rewrite), so a killed run keeps every
finished point.  A torn final line (the only damage a kill can inflict on
an append) is skipped at load time.  :meth:`ShardedResultCache.compact`
deduplicates and rewrites shards atomically via tmp + ``os.replace``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.config import GpuConfig
from repro.experiments.runner import (
    Runner,
    config_key,
    result_from_dict,
    result_to_dict,
)
from repro.sim.gpu import simulate
from repro.workloads.suite import get_benchmark


def _simulate_point(
    workload_name: str, config: GpuConfig, horizon: float, warmup: float
) -> dict:
    """Worker entry point: one simulation, returned as a picklable dict.

    Exactly the serial :meth:`Runner.run` miss path, so parallel and
    serial execution produce identical results.
    """
    t0 = time.perf_counter()
    result = simulate(
        config, get_benchmark(workload_name), horizon=horizon, warmup=warmup
    )
    elapsed = time.perf_counter() - t0
    payload = result_to_dict(result)
    # the worker's wall time and telemetry ride back to the parent
    # out-of-band: both are popped before the payload reaches the result
    # cache, so cached entries stay bit-identical with and without them.
    payload["_elapsed_s"] = round(elapsed, 6)
    if result.telemetry is not None:
        payload["_telemetry"] = result.telemetry
    return payload


class ShardedResultCache:
    """A directory of append-only JSONL result shards.

    Single-writer (the parent process), crash-safe: every ``put`` is one
    appended line, corrupt/truncated lines are ignored at load, and
    compaction rewrites each shard atomically.
    """

    def __init__(
        self, directory: str | Path, num_shards: int = 16, read_only: bool = False
    ) -> None:
        self.directory = Path(directory)
        self.num_shards = max(1, int(num_shards))
        #: a read-only cache folds puts into memory but never touches
        #: disk — how job-store workers share one cache directory while
        #: it keeps exactly one writer (the process that populated it).
        self.read_only = bool(read_only)
        self._data: Dict[str, dict] = {}
        #: per-shard live line counts; a shard with more lines than live
        #: keys carries dead weight (overwrites / recovered corruption).
        self._lines: Dict[int, int] = {}
        #: whether this session wrote anything; a read-only consumer (a
        #: scorecard over a warm cache) must leave the disk untouched.
        self._mutated = False
        self._load()

    # ------------------------------------------------------------------

    def _shard_index(self, key: str) -> int:
        # stable across processes (unlike hash() with PYTHONHASHSEED).
        digest = hashlib.blake2b(key.encode(), digest_size=2).digest()
        return int.from_bytes(digest, "little") % self.num_shards

    def _shard_path(self, index: int) -> Path:
        return self.directory / f"shard-{index:02x}.jsonl"

    def _load(self) -> None:
        if self.directory.is_file():
            # A legacy single-file JSON cache at this path: import it
            # read-only, then keep the shards in a sibling directory.
            try:
                legacy = json.loads(self.directory.read_text())
                if isinstance(legacy, dict):
                    self._data.update(
                        {k: v for k, v in legacy.items() if isinstance(v, dict)}
                    )
            except (ValueError, OSError) as exc:
                warnings.warn(
                    f"ignoring corrupt legacy cache {self.directory}: {exc}",
                    RuntimeWarning,
                )
            self.directory = self.directory.with_name(self.directory.name + ".d")
        if not self.directory.is_dir():
            return
        for index in range(self.num_shards):
            path = self._shard_path(index)
            if not path.exists():
                continue
            lines = 0
            try:
                text = path.read_text()
            except OSError as exc:
                warnings.warn(
                    f"ignoring unreadable cache shard {path}: {exc}", RuntimeWarning
                )
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                lines += 1
                try:
                    entry = json.loads(line)
                    self._data[entry["key"]] = entry["result"]
                except (ValueError, KeyError, TypeError):
                    # torn append from a killed run — drop the line, keep
                    # everything that made it to disk intact.
                    continue
            self._lines[index] = lines

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str) -> Optional[dict]:
        return self._data.get(key)

    def put(self, key: str, payload: dict) -> None:
        """Record *key* and append it durably to its shard."""
        self._data[key] = payload
        if self.read_only:
            return
        index = self._shard_index(key)
        path = self._shard_path(index)
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"key": key, "result": payload})
        with open(path, "a") as fh:
            fh.write(line + "\n")
        self._lines[index] = self._lines.get(index, 0) + 1
        self._mutated = True

    def compact(self) -> None:
        """Rewrite shards with one line per live key, atomically.

        A session that never wrote (pure cache reads, e.g. a scorecard
        over a warm cache) skips compaction entirely: puts are durable
        the moment they happen, so there is nothing to rewrite, and a
        read-only consumer must not materialize shards from a legacy
        single-file cache it imported.
        """
        if not self._data or not self._mutated:
            return
        by_shard: Dict[int, List[str]] = {}
        for key in sorted(self._data):
            by_shard.setdefault(self._shard_index(key), []).append(key)
        for index, keys in by_shard.items():
            live = len(keys)
            if self._lines.get(index, 0) == live and self._shard_path(index).exists():
                continue  # already compact
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._shard_path(index)
            tmp = path.with_name(path.name + ".tmp")
            with open(tmp, "w") as fh:
                for key in keys:
                    fh.write(json.dumps({"key": key, "result": self._data[key]}) + "\n")
            os.replace(tmp, path)
            self._lines[index] = live


class ParallelRunner(Runner):
    """A :class:`Runner` that fans batches of points out over processes.

    ``cache_path`` names a *directory* holding the sharded cache (a legacy
    single-file JSON cache at that path is imported read-only).  ``jobs``
    defaults to ``os.cpu_count()``; ``jobs=1`` never spawns a pool and
    follows the exact serial code path.

    ``heartbeat_path`` names a JSONL sidecar that gets one leading
    ``{"event": "start", "total": N, ...}`` line per batch that will
    simulate anything (consumers can size progress bars before the first
    point lands), one appended line per *completed* point (``{ts, done,
    total, elapsed_s, points_per_s, eta_s}``) and one terminal
    ``{"event": "done", ...}`` line per batch, so a long sweep can be
    watched from another terminal with ``tail -f`` and a dead one told
    apart from a slow one.
    Counts are per :meth:`prefetch` batch.  Heartbeats are best-effort:
    an unwritable path never fails the sweep, and the file plays no part
    in result merging or caching.
    """

    def __init__(
        self,
        horizon: float = 12_000,
        warmup: float = 18_000,
        benchmarks: Optional[List[str]] = None,
        cache_path: Optional[str | Path] = None,
        flush_every: int = 16,
        jobs: Optional[int] = None,
        telemetry_dir: Optional[str | Path] = None,
        heartbeat_path: Optional[str | Path] = None,
        ledger_path: Optional[str | Path] = None,
        cache_read_only: bool = False,
        metrics=None,
    ) -> None:
        self.jobs = max(1, int(jobs) if jobs is not None else (os.cpu_count() or 1))
        self.heartbeat_path = Path(heartbeat_path) if heartbeat_path else None
        self._cache_read_only = bool(cache_read_only)
        self._cache: Optional[ShardedResultCache] = None
        super().__init__(
            horizon=horizon,
            warmup=warmup,
            benchmarks=benchmarks,
            cache_path=cache_path,
            flush_every=flush_every,
            telemetry_dir=telemetry_dir,
            ledger_path=ledger_path,
            metrics=metrics,
        )

    # -- sharded cache primitives ---------------------------------------

    def _cache_open(self) -> None:
        if self._cache_path is not None:
            self._cache = ShardedResultCache(
                self._cache_path, read_only=self._cache_read_only
            )

    def _cache_get(self, disk_key: str) -> Optional[dict]:
        return self._cache.get(disk_key) if self._cache is not None else None

    def _cache_put(self, disk_key: str, payload: dict) -> None:
        if self._cache is not None:
            self._cache.put(disk_key, payload)

    def flush(self) -> None:
        # appends are durable immediately; nothing is pending.
        return

    def close(self) -> None:
        if self._cache is not None:
            self._cache.compact()

    # -- progress heartbeat ---------------------------------------------

    def _append_heartbeat(self, record: dict) -> None:
        try:
            self.heartbeat_path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.heartbeat_path, "a") as fh:
                fh.write(json.dumps(record) + "\n")
        except OSError:
            # observability must never fail the sweep it observes.
            pass

    def _emit_heartbeat(self, done: int, total: int, started: float) -> None:
        """Append one progress line to the heartbeat sidecar (best-effort)."""
        if self.heartbeat_path is None:
            return
        elapsed = time.perf_counter() - started
        rate = done / elapsed if elapsed > 0.0 else 0.0
        eta = (total - done) / rate if rate > 0.0 else None
        self._append_heartbeat(
            {
                "ts": time.time(),
                "done": done,
                "total": total,
                "elapsed_s": round(elapsed, 3),
                "points_per_s": round(rate, 3),
                "eta_s": round(eta, 3) if eta is not None else None,
            }
        )

    def _emit_heartbeat_done(
        self, done: int, total: int, started: float, failures: int
    ) -> None:
        """Append the terminal ``done`` line closing out one batch.

        Its presence distinguishes a finished sweep from one whose
        process died mid-batch; ``status`` records whether every point
        completed.
        """
        if self.heartbeat_path is None:
            return
        elapsed = time.perf_counter() - started
        rate = done / elapsed if elapsed > 0.0 else 0.0
        self._append_heartbeat(
            {
                "event": "done",
                "ts": time.time(),
                "done": done,
                "total": total,
                "elapsed_s": round(elapsed, 3),
                "points_per_s": round(rate, 3),
                "status": "failed" if failures else "ok",
                "failures": failures,
            }
        )

    # -- plan / simulate / merge ----------------------------------------

    def plan(
        self, points: Iterable[Tuple[str, GpuConfig]]
    ) -> List[Tuple[Tuple[str, str], str, str, GpuConfig]]:
        """Deduplicate *points* and subtract everything already resident.

        Memory- and disk-cached points are folded into the memo table on
        the way through; the returned list is only what must be simulated,
        as ``(memo_key, disk_key, workload_name, config)`` tuples in first-
        seen order.
        """
        pending: List[Tuple[Tuple[str, str], str, str, GpuConfig]] = []
        seen = set()
        for workload_name, config in points:
            key = (workload_name, config_key(config))
            if key in seen:
                continue
            seen.add(key)
            if key in self._memory:
                self.stats.memory_hits += 1
                if self._metrics_on:
                    self._m_points.labels("memory_hit").inc()
                continue
            disk_key = self._disk_key(workload_name, key[1])
            payload = self._cache_get(disk_key)
            if payload is not None:
                self.stats.disk_hits += 1
                if self._metrics_on:
                    self._m_points.labels("disk_hit").inc()
                result = result_from_dict(payload)
                self._memory[key] = result
                trace_id = span_id = None
                if self._spans_on:
                    span_record = self._spans.record(
                        "runner.point", component="runner",
                        parent=self._span_parent,
                        attrs={"workload": workload_name, "config": key[1],
                               "outcome": "cached"},
                    )
                    trace_id = span_record["trace_id"]
                    span_id = span_record["span_id"]
                if self.ledger is not None:
                    from repro.obsv.ledger import key_stats

                    self._record_ledger(
                        workload_name, key[1], "cached", stats=key_stats(result),
                        trace_id=trace_id, span_id=span_id,
                    )
                continue
            pending.append((key, disk_key, workload_name, config))
        return pending

    def prefetch(
        self, points: Iterable[Tuple[str, GpuConfig]], jobs: Optional[int] = None
    ) -> int:
        """Plan, fan out, and merge a batch of points; returns #simulated."""
        jobs = self.jobs if jobs is None else max(1, int(jobs))

        t0 = time.perf_counter()
        pending = self.plan(points)
        self.stats.add_phase("plan", time.perf_counter() - t0)
        if not pending:
            return 0

        batch_span = None
        if self._spans_on:
            batch_span = self._spans.start_span(
                "runner.batch", component="runner", parent=self._span_parent,
                attrs={"pending": len(pending), "jobs": jobs},
            )
        if self.heartbeat_path is not None:
            # leading record: lets consumers compute progress/ETA before
            # the first point completes (and distinguishes "just started"
            # from "no heartbeat at all").
            self._append_heartbeat(
                {"event": "start", "ts": time.time(), "total": len(pending)}
            )
        t1 = time.perf_counter()
        errors: List[Tuple[int, BaseException]] = []
        if jobs == 1 or len(pending) == 1:
            payloads: List[Optional[dict]] = []
            for done, (_key, _disk_key, name, config) in enumerate(pending, start=1):
                try:
                    payloads.append(
                        _simulate_point(name, config, self.horizon, self.warmup)
                    )
                except (Exception, KeyboardInterrupt) as exc:
                    errors.append((done - 1, exc))
                    payloads.append(None)
                self._emit_heartbeat(done, len(pending), t1)
        else:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_simulate_point, name, config, self.horizon, self.warmup)
                    for (_key, _disk_key, name, config) in pending
                ]
                if self.heartbeat_path is not None:
                    # count completions as they land; the ordered reads
                    # below then return instantly from the settled futures.
                    for done, _future in enumerate(as_completed(futures), start=1):
                        self._emit_heartbeat(done, len(pending), t1)
                # collect in submission order: deterministic merge no
                # matter which worker finished first.  A failed point
                # leaves a None slot; every completed point still merges.
                payloads = []
                for index, future in enumerate(futures):
                    try:
                        payloads.append(future.result())
                    except (Exception, KeyboardInterrupt) as exc:
                        errors.append((index, exc))
                        payloads.append(None)
        wall = time.perf_counter() - t1
        completed = sum(1 for payload in payloads if payload is not None)
        self.stats.sim_seconds += wall
        self.stats.add_phase("simulate", wall)
        self.stats.points_simulated += completed
        if self._metrics_on:
            if completed:
                self._m_points.labels("simulated").inc(completed)
            self._refresh_metric_gauges()

        t2 = time.perf_counter()
        for (key, disk_key, _name, _config), payload in zip(pending, payloads):
            if payload is None:
                continue
            export = payload.pop("_telemetry", None)
            elapsed = payload.pop("_elapsed_s", None)
            trace_id = span_id = None
            if self._spans_on:
                # pool workers are trace-blind; the parent records their
                # spans at merge from the worker-reported wall time (the
                # jobs=1 path goes through Runner.run and is exact).
                span_record = self._spans.record(
                    "runner.point", component="runner", parent=batch_span,
                    ts=time.time() - (elapsed or 0.0),
                    duration_s=elapsed or 0.0,
                    attrs={"workload": key[0], "config": key[1],
                           "outcome": "simulated",
                           "timing": "worker-reported"},
                )
                trace_id = span_record["trace_id"]
                span_id = span_record["span_id"]
                if isinstance(export, dict) and isinstance(export.get("meta"), dict):
                    export["meta"]["trace_id"] = trace_id
                    export["meta"]["span_id"] = span_id
            tel_dir = self._persist_telemetry(key[0], key[1], export)
            self._cache_put(disk_key, payload)
            result = result_from_dict(payload)
            result.telemetry = export
            self._memory[key] = result
            if self.ledger is not None:
                from repro.obsv.ledger import key_stats

                self._record_ledger(
                    key[0],
                    key[1],
                    "simulated",
                    duration_s=elapsed,
                    stats=key_stats(result),
                    telemetry_dir=tel_dir,
                    trace_id=trace_id,
                    span_id=span_id,
                )
        for index, exc in errors:
            key = pending[index][0]
            trace_id = span_id = None
            if self._spans_on:
                span_record = self._spans.record(
                    "runner.point", component="runner", parent=batch_span,
                    status="error",
                    attrs={"workload": key[0], "config": key[1],
                           "outcome": "failed"},
                )
                trace_id = span_record["trace_id"]
                span_id = span_record["span_id"]
            self._record_ledger(
                key[0], key[1], "failed", error=f"{type(exc).__name__}: {exc}",
                trace_id=trace_id, span_id=span_id,
            )
        self.stats.add_phase("merge", time.perf_counter() - t2)
        if batch_span is not None:
            batch_span.set(completed=completed, failed=len(errors))
            batch_span.end(status="error" if errors else None)
        self._emit_heartbeat_done(completed, len(pending), t1, len(errors))
        if errors:
            # completed points are already durably cached and ledgered;
            # surface the first failure to the caller.
            raise errors[0][1]
        return completed
