"""Experiment drivers: one function per paper table/figure."""

from repro.experiments import designs, figures
from repro.experiments.runner import Runner

__all__ = ["Runner", "designs", "figures"]
