"""Experiment drivers: one function per paper table/figure."""

from repro.experiments import designs, figures
from repro.experiments.parallel import ParallelRunner, ShardedResultCache
from repro.experiments.runner import Runner, RunnerStats

__all__ = [
    "Runner",
    "RunnerStats",
    "ParallelRunner",
    "ShardedResultCache",
    "designs",
    "figures",
]
