"""One simulation's telemetry: tracer + sampler + artifact export.

A :class:`TelemetrySession` is created by the GPU top level when
``GpuConfig.telemetry.enabled`` is set.  After the run, :meth:`export`
condenses everything into one deterministic, JSON-able dict (safe to move
across process boundaries — the parallel runner's workers return it with
their result payloads), and :func:`write_artifacts` lays the dict out on
disk:

* ``trace.json``   — Chrome ``trace_event`` file (chrome://tracing, Perfetto)
* ``trace.jsonl``  — the typed event stream, one JSON object per line
* ``samples.json`` — the sampler's columnar time-series
* ``latency.json`` — per-hop latency histograms, stall accounting, and the
  byte-conservation check against the DRAM totals
* ``summary.json`` — run metadata, event/sample counts, per-class bytes
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

from repro.common.config import TelemetryConfig
from repro.telemetry.latency import NULL_LATENCY, LatencyRecorder, conservation_check
from repro.telemetry.tracer import NULL_TRACER, Tracer, chrome_trace
from repro.telemetry.sampler import Sampler

#: artifact file names, in the order write_artifacts produces them.
ARTIFACT_NAMES = (
    "trace.json",
    "trace.jsonl",
    "samples.json",
    "latency.json",
    "summary.json",
)


class TelemetrySession:
    """Tracer + sampler + latency-recorder bundle for one GPU instance."""

    def __init__(self, config: TelemetryConfig, events) -> None:
        self.config = config
        self.tracer = (
            Tracer(events, config.ring_capacity) if config.trace_events else NULL_TRACER
        )
        self.sampler = Sampler(events, config.sample_every, config.max_samples)
        self.latency = LatencyRecorder() if config.latency_histograms else NULL_LATENCY

    def reset(self) -> None:
        """Drop everything recorded so far; used at the warmup boundary so
        exported telemetry covers exactly the measured window (matching the
        statistics, which are zeroed at the same instant)."""
        self.tracer.clear()
        self.sampler.clear()
        self.latency.clear()

    def export(self, meta: Optional[dict] = None) -> dict:
        """Everything recorded, as one plain JSON-able dict."""
        tracer = self.tracer
        recording = isinstance(tracer, Tracer)
        return {
            "meta": dict(meta or {}),
            "events": tracer.events_as_dicts() if recording else [],
            "events_dropped": tracer.dropped if recording else 0,
            "ring_capacity": self.config.ring_capacity,
            "samples": {name: list(col) for name, col in self.sampler.columns.items()},
            "samples_truncated": self.sampler.truncated,
            "latency": self.latency.export(),
        }


def write_artifacts(directory: str | Path, export: dict) -> Dict[str, Path]:
    """Persist one session export; returns ``{artifact name: path}``.

    Output is byte-deterministic for a given export (sorted keys, no
    timestamps), so serial and parallel runs of the same point produce
    identical artifact files.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    events = export.get("events", [])
    meta = export.get("meta", {})

    paths = {name: directory / name for name in ARTIFACT_NAMES}
    paths["trace.json"].write_text(
        json.dumps(chrome_trace(events, meta=meta), sort_keys=True) + "\n"
    )
    paths["trace.jsonl"].write_text(
        "\n".join(json.dumps(e, sort_keys=True) for e in events) + "\n"
    )
    paths["samples.json"].write_text(
        json.dumps({"columns": export.get("samples", {})}, sort_keys=True) + "\n"
    )
    latency = export.get("latency")
    latency_doc: dict = {"latency": latency}
    if latency is not None and "class_bytes" in meta:
        latency_doc["conservation"] = conservation_check(latency, meta["class_bytes"])
    paths["latency.json"].write_text(
        json.dumps(latency_doc, sort_keys=True, indent=2) + "\n"
    )
    summary = {
        "meta": meta,
        "events_recorded": len(events),
        "events_dropped": export.get("events_dropped", 0),
        "ring_capacity": export.get("ring_capacity"),
        "num_samples": len(export.get("samples", {}).get("cycle", [])),
        "samples_truncated": export.get("samples_truncated", False),
    }
    paths["summary.json"].write_text(json.dumps(summary, sort_keys=True, indent=2) + "\n")
    return paths
