"""Request-lifecycle latency decomposition and stall accounting.

The paper's headline claim is *causal* — secure memory costs GPU IPC
because metadata **bandwidth contention** (DRAM queueing), not AES
latency, dominates.  This module makes that decomposition measurable
instead of inferred: every component on a memory access's path records
its hop into a :class:`LatencyRecorder` — per hop, per
:class:`~repro.telemetry.traffic.TrafficClass`, split into *queueing*
cycles (waiting for a resource) and *service* cycles (using it) — and
every structural stall site accounts the cycles it cost.

Hops (see the ``HOP_*`` constants):

* ``sm_mem``  — the round trip an SM-side read miss waits, issue → fill;
* ``l1``      — L1 hit service time;
* ``icnt``    — crossbar traversal (both directions, fixed latency);
* ``l2``      — partition admission + L2 bank queueing, hit service;
* ``mshr``    — cycles merged requests wait under an in-flight fill
  (L2 and metadata-cache MSHRs) plus full-table allocation waits;
* ``mdc``     — metadata-cache hit service, per metadata class;
* ``crypto``  — secure-engine cycles *exposed* beyond the data fetch
  (OTP/XOR serialization in counter mode, full AES latency in direct mode);
* ``dram``    — channel queueing vs. occupancy + access latency, per class;
* ``e2e``     — partition-level request round trip (arrival → response).

Stall causes (``STALL_*``): cycles lost to L1 MSHR exhaustion, L2
admission back-pressure, L2/metadata MSHR-full waits, DRAM channel
queueing, and crypto serialization.

Everything here is *observation only*: values recorded are differences of
times the simulator computed anyway, so enabling latency telemetry can
never change a simulated statistic (the golden tests enforce this).
When telemetry is off, components hold :data:`NULL_LATENCY` and each
emission site costs one attribute load.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.sim import fastpath

# -- hop names ---------------------------------------------------------------

HOP_SM = "sm_mem"
HOP_L1 = "l1"
HOP_ICNT = "icnt"
HOP_L2 = "l2"
HOP_MSHR = "mshr"
HOP_MDC = "mdc"
HOP_CRYPTO = "crypto"
HOP_DRAM = "dram"
HOP_E2E = "e2e"

#: report ordering: issue side first, memory side last.
ALL_HOPS = (
    HOP_SM,
    HOP_L1,
    HOP_ICNT,
    HOP_L2,
    HOP_MSHR,
    HOP_MDC,
    HOP_CRYPTO,
    HOP_DRAM,
    HOP_E2E,
)

# -- stall causes ------------------------------------------------------------

STALL_L1_MSHR_FULL = "l1_mshr_full"
STALL_L2_ADMISSION = "l2_admission_backpressure"
STALL_L2_MSHR_FULL = "l2_mshr_full"
STALL_MDC_MSHR_FULL = "mdc_mshr_full"
STALL_DRAM_QUEUE = "dram_queue"
STALL_CRYPTO = "crypto_serialization"

ALL_STALLS = (
    STALL_L1_MSHR_FULL,
    STALL_L2_ADMISSION,
    STALL_L2_MSHR_FULL,
    STALL_MDC_MSHR_FULL,
    STALL_DRAM_QUEUE,
    STALL_CRYPTO,
)

#: quantiles exported with every histogram summary.
QUANTILES = (0.50, 0.95, 0.99)


class LogHistogram:
    """A log2-bucketed latency histogram.

    Bucket 0 covers ``[0, 1)`` cycles; bucket ``i >= 1`` covers
    ``[2**(i-1), 2**i)``.  Each bucket tracks (count, sum), so a bucket's
    representative value is its *mean* — quantiles are exact whenever all
    values landing in the rank's bucket are equal (e.g. fixed latencies),
    and bucket-mean approximations otherwise.  Merging histograms is
    associative and commutative (pure counter addition).
    """

    __slots__ = ("buckets", "n", "total", "min", "max")

    def __init__(self) -> None:
        #: bucket index -> [count, sum]
        self.buckets: Dict[int, List[float]] = {}
        self.n = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, value: float) -> None:
        """Record one latency sample (negative values clamp to zero)."""
        if value < 0.0:
            value = 0.0
        index = int(value).bit_length() if value >= 1.0 else 0
        bucket = self.buckets.get(index)
        if bucket is None:
            bucket = self.buckets[index] = [0.0, 0.0]
        bucket[0] += 1.0
        bucket[1] += value
        self.n += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @staticmethod
    def bucket_bounds(index: int) -> Tuple[float, float]:
        """``[lo, hi)`` range of values landing in bucket *index*."""
        if index <= 0:
            return (0.0, 1.0)
        return (float(2 ** (index - 1)), float(2**index))

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile, as the mean of the bucket holding that rank.

        Rank semantics: the ``ceil(q * n)``-th smallest sample (1-indexed),
        so ``quantile(1.0)`` is the top bucket's mean and ``quantile(0.0)``
        the bottom bucket's.  Exact when the rank's bucket holds a single
        distinct value.
        """
        if self.n == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.n))
        cumulative = 0.0
        for index in sorted(self.buckets):
            count, total = self.buckets[index]
            cumulative += count
            if cumulative >= rank:
                return total / count
        return self.max  # unreachable unless counters were mutated directly

    def merge_from(self, other: "LogHistogram") -> None:
        """Accumulate *other* into this histogram (associative)."""
        for index, (count, total) in other.buckets.items():
            bucket = self.buckets.get(index)
            if bucket is None:
                bucket = self.buckets[index] = [0.0, 0.0]
            bucket[0] += count
            bucket[1] += total
        self.n += other.n
        self.total += other.total
        if other.n:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def to_dict(self) -> dict:
        """JSON-able snapshot: counters plus a quantile summary."""
        return {
            "n": self.n,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.n else 0.0,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {
                str(index): list(self.buckets[index]) for index in sorted(self.buckets)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogHistogram":
        """Rebuild from :meth:`to_dict` output (summary fields are derived)."""
        hist = cls()
        for key, (count, total) in data.get("buckets", {}).items():
            hist.buckets[int(key)] = [float(count), float(total)]
        hist.n = int(data.get("n", 0))
        hist.total = float(data.get("sum", 0.0))
        if hist.n:
            hist.min = float(data.get("min", 0.0))
            hist.max = float(data.get("max", 0.0))
        return hist


class NullLatencyRecorder:
    """Zero-cost stand-in used whenever latency telemetry is off."""

    __slots__ = ()
    enabled = False

    def record(self, hop: str, cls: str, queue: float, service: float) -> None:
        """No-op."""

    def channel(self, hop: str, cls: str):
        """Fresh throwaway buffers (sites only bind these when enabled)."""
        return ([], [])

    def stall(self, cause: str, cycles: float) -> None:
        """No-op."""

    def account_bytes(self, cls: str, nbytes: float) -> None:
        """No-op."""

    def clear(self) -> None:
        """No-op."""

    def export(self) -> Optional[dict]:
        return None


#: the shared disabled recorder; components default to this.
NULL_LATENCY = NullLatencyRecorder()


def _stall_entry() -> List[float]:
    return [0.0, 0.0]


try:  # optional: vectorizes the deferred histogram fold below.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_NO_BATCH runs
    _np = None

#: below this batch size the eager per-value replay wins — the same
#: call-overhead crossover as the columnar lane's
#: :data:`repro.sim.columnar.NUMPY_MIN_GROUP` (numpy array setup costs
#: more than it saves on the 2–8 element flushes sparse hops produce).
NUMPY_MIN_FOLD = 16


def _fold_values(hist: LogHistogram, values: List[float]) -> None:
    """Fold raw samples into *hist*, bit-identical to per-value `record`.

    The vectorized path only applies to a *fresh* histogram, where every
    derived quantity provably matches the eager sequence:

    * per-bucket counts are integers (exact);
    * per-bucket sums: ``np.bincount(idx, weights)`` accumulates each
      bucket's values in array order from 0.0 — the same left fold the
      eager path performs on a bucket that starts at 0.0;
    * ``total`` uses the builtin ``sum`` (a left fold in emission order);
    * ``min``/``max`` keep the eager tie behavior via strict comparisons;
    * ``int(v).bit_length()`` equals ``np.frexp(np.floor(v))[1]`` for
      ``v >= 0`` (frexp's exponent of an integer is its bit length, and
      both are 0 for ``v < 1``);
    * buckets are created in first-appearance order, so later
      ``merge_from`` iteration order is unchanged.

    Histograms that already hold data (or tiny batches) replay the eager
    update per value, which is trivially identical.
    """
    if (
        _np is not None
        and len(values) >= NUMPY_MIN_FOLD
        and hist.n == 0
        and not hist.buckets
    ):
        if fastpath.BATCHING:
            arr = _np.asarray(values, dtype=_np.float64)
            if (arr < 0.0).any():
                arr = _np.where(arr < 0.0, 0.0, arr)
            idx = _np.frexp(_np.floor(arr))[1]
            counts = _np.bincount(idx)
            sums = _np.bincount(idx, weights=arr)
            uniq, first_pos = _np.unique(idx, return_index=True)
            for index in uniq[_np.argsort(first_pos, kind="stable")].tolist():
                hist.buckets[index] = [float(counts[index]), float(sums[index])]
            clamped = arr.tolist()
            hist.n = len(clamped)
            hist.total = sum(clamped)
            low, high = min(clamped), max(clamped)
            if low < hist.min:
                hist.min = low
            if high > hist.max:
                hist.max = high
            return
    rec = hist.record
    for value in values:
        rec(value)


class LatencyRecorder:
    """Per-hop × per-traffic-class latency histograms + stall accounting.

    One recorder serves the whole GPU (all partitions share it), so the
    export is already the machine-level aggregate.  Hot-path emission is a
    tuple-keyed dict lookup plus two histogram records; every emission
    site is guarded by a bound ``_lat_on`` flag, so the disabled path
    costs one attribute load.
    """

    __slots__ = ("_hists", "_stalls", "_class_bytes", "_class_transfers", "_pending")

    enabled = True

    def __init__(self) -> None:
        #: (hop, class) -> (queue histogram, service histogram)
        self._hists: Dict[Tuple[str, str], Tuple[LogHistogram, LogHistogram]] = {}
        #: (hop, class) -> ([queue samples], [service samples]) awaiting fold.
        self._pending: Dict[Tuple[str, str], Tuple[List[float], List[float]]] = {}
        #: cause -> [events, cycles]
        self._stalls: Dict[str, List[float]] = defaultdict(_stall_entry)
        #: traffic class -> DRAM bytes moved / transfers issued, accounted
        #: at the channel so conservation against ``bytes_total`` is exact.
        self._class_bytes: Dict[str, float] = defaultdict(float)
        self._class_transfers: Dict[str, float] = defaultdict(float)

    # -- emission ----------------------------------------------------------

    def record(self, hop: str, cls: str, queue: float, service: float) -> None:
        """Record one hop traversal: *queue* waiting, *service* using.

        Emission is deferred: the raw sample pair is appended to a per-key
        buffer and folded into the histograms on first read (:meth:`_flush`).
        This is the hottest telemetry call — hundreds of thousands of
        emissions per simulation — and two appends are an order of magnitude
        cheaper than two histogram updates.  The fold reproduces the eager
        update sequence exactly (see :func:`_fold_values`), so nothing
        observable changes.
        """
        pend = self._pending.get((hop, cls))
        if pend is None:
            pend = self._pending[(hop, cls)] = ([], [])
        pend[0].append(queue)
        pend[1].append(service)

    def channel(self, hop: str, cls: str) -> Tuple[List[float], List[float]]:
        """The persistent ``(queue, service)`` sample buffers for one key.

        Hot emission sites bind the two lists once and append directly,
        skipping the per-call key lookup in :meth:`record`.  The buffers
        stay valid for the recorder's lifetime: flush and clear empty them
        in place instead of dropping them.
        """
        pend = self._pending.get((hop, cls))
        if pend is None:
            pend = self._pending[(hop, cls)] = ([], [])
        return pend

    def stall(self, cause: str, cycles: float) -> None:
        """Account *cycles* lost to *cause* (one stall event)."""
        entry = self._stalls[cause]
        entry[0] += 1.0
        entry[1] += cycles

    def account_bytes(self, cls: str, nbytes: float) -> None:
        """Attribute one DRAM transfer of *nbytes* to traffic class *cls*."""
        self._class_bytes[cls] += nbytes
        self._class_transfers[cls] += 1.0

    def _flush(self) -> None:
        """Fold buffered samples into the histograms (idempotent).

        Buffers are emptied in place, never dropped: emission sites that
        bound them via :meth:`channel` keep appending into the same lists.
        """
        for key, (queues, services) in self._pending.items():
            if not queues and not services:
                continue
            pair = self._hists.get(key)
            if pair is None:
                pair = self._hists[key] = (LogHistogram(), LogHistogram())
            _fold_values(pair[0], queues)
            _fold_values(pair[1], services)
            queues.clear()
            services.clear()

    # -- lifecycle ---------------------------------------------------------

    def clear(self) -> None:
        """Forget everything (the warmup-boundary reset)."""
        self._hists.clear()
        for queues, services in self._pending.values():
            queues.clear()
            services.clear()
        self._stalls.clear()
        self._class_bytes.clear()
        self._class_transfers.clear()

    # -- introspection -----------------------------------------------------

    def histogram(self, hop: str, cls: str) -> Optional[Tuple[LogHistogram, LogHistogram]]:
        """The (queue, service) histogram pair for one (hop, class), if any."""
        self._flush()
        return self._hists.get((hop, cls))

    def stalls(self) -> Dict[str, Tuple[float, float]]:
        """``{cause: (events, cycles)}`` snapshot."""
        return {cause: (e, c) for cause, (e, c) in self._stalls.items()}

    # -- export ------------------------------------------------------------

    def export(self) -> dict:
        """Everything recorded, as one deterministic JSON-able dict."""
        self._flush()
        hops: Dict[str, Dict[str, dict]] = {}
        for (hop, cls) in sorted(self._hists):
            queue, service = self._hists[(hop, cls)]
            hops.setdefault(hop, {})[cls] = {
                "queue": queue.to_dict(),
                "service": service.to_dict(),
            }
        return {
            "hops": hops,
            "stalls": {
                cause: {"events": events, "cycles": cycles}
                for cause, (events, cycles) in sorted(self._stalls.items())
            },
            "class_bytes": dict(sorted(self._class_bytes.items())),
            "class_transfers": dict(sorted(self._class_transfers.items())),
        }


def conservation_check(
    latency_export: dict, class_bytes: Dict[str, float], tolerance: float = 1e-6
) -> dict:
    """Check the recorder's per-class DRAM bytes against independent totals.

    *class_bytes* is the per-class byte breakdown derived from the DRAM
    statistics (:func:`repro.telemetry.traffic.class_bytes_from_result`);
    both sides count every transfer at the channel, so they must agree to
    the byte.  Returns ``{"ok": bool, "classes": {cls: {expected, observed,
    delta}}, "total_expected", "total_observed"}``.
    """
    observed = dict(latency_export.get("class_bytes", {}))
    classes = {}
    ok = True
    for cls in sorted(set(class_bytes) | set(observed)):
        expected = float(class_bytes.get(cls, 0.0))
        got = float(observed.get(cls, 0.0))
        delta = got - expected
        if abs(delta) > tolerance:
            ok = False
        classes[cls] = {"expected": expected, "observed": got, "delta": delta}
    return {
        "ok": ok,
        "classes": classes,
        "total_expected": sum(float(v) for v in class_bytes.values()),
        "total_observed": sum(float(v) for v in observed.values()),
    }
