"""Observability for the simulator: tracing, sampling, traffic attribution.

Three cooperating pieces (see the paper's traffic-breakdown analysis,
Section V, which this subsystem turns into queryable artifacts):

* :class:`~repro.telemetry.tracer.Tracer` — typed simulation events in a
  bounded ring buffer, exported as Chrome ``trace_event`` JSON and JSONL;
* :class:`~repro.telemetry.sampler.Sampler` — per-epoch gauge snapshots
  (MSHR occupancy, DRAM backlog, crypto-engine busy cycles, per-class
  bandwidth) in a columnar time-series;
* :class:`~repro.telemetry.traffic.TrafficClass` — DATA / COUNTER / MAC /
  TREE attribution of every DRAM byte;
* :class:`~repro.telemetry.latency.LatencyRecorder` — per-hop × per-class
  log-bucketed latency histograms (queueing vs. service) plus stall-cycle
  accounting, the raw material of ``repro bottleneck``.

Everything is off by default (``GpuConfig.telemetry``); the disabled path
uses no-op stubs and changes neither timing nor statistics.
"""

from repro.telemetry.latency import (
    ALL_HOPS,
    ALL_STALLS,
    NULL_LATENCY,
    LatencyRecorder,
    LogHistogram,
    NullLatencyRecorder,
    conservation_check,
)
from repro.telemetry.sampler import Sampler
from repro.telemetry.session import ARTIFACT_NAMES, TelemetrySession, write_artifacts
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer, chrome_trace
from repro.telemetry.traffic import (
    CLASS_OF_CATEGORY,
    CLASS_OF_KIND,
    TrafficClass,
    class_bytes_from_result,
    class_shares,
    live_class_bytes,
)

__all__ = [
    "ALL_HOPS",
    "ALL_STALLS",
    "ARTIFACT_NAMES",
    "CLASS_OF_CATEGORY",
    "CLASS_OF_KIND",
    "LatencyRecorder",
    "LogHistogram",
    "NULL_LATENCY",
    "NULL_TRACER",
    "NullLatencyRecorder",
    "NullTracer",
    "Sampler",
    "TelemetrySession",
    "Tracer",
    "TrafficClass",
    "chrome_trace",
    "class_bytes_from_result",
    "class_shares",
    "conservation_check",
    "live_class_bytes",
    "write_artifacts",
]
