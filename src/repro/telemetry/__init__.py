"""Observability for the simulator: tracing, sampling, traffic attribution.

Three cooperating pieces (see the paper's traffic-breakdown analysis,
Section V, which this subsystem turns into queryable artifacts):

* :class:`~repro.telemetry.tracer.Tracer` — typed simulation events in a
  bounded ring buffer, exported as Chrome ``trace_event`` JSON and JSONL;
* :class:`~repro.telemetry.sampler.Sampler` — per-epoch gauge snapshots
  (MSHR occupancy, DRAM backlog, crypto-engine busy cycles, per-class
  bandwidth) in a columnar time-series;
* :class:`~repro.telemetry.traffic.TrafficClass` — DATA / COUNTER / MAC /
  TREE attribution of every DRAM byte.

Everything is off by default (``GpuConfig.telemetry``); the disabled path
uses no-op stubs and changes neither timing nor statistics.
"""

from repro.telemetry.sampler import Sampler
from repro.telemetry.session import ARTIFACT_NAMES, TelemetrySession, write_artifacts
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer, chrome_trace
from repro.telemetry.traffic import (
    CLASS_OF_CATEGORY,
    CLASS_OF_KIND,
    TrafficClass,
    class_bytes_from_result,
    class_shares,
    live_class_bytes,
)

__all__ = [
    "ARTIFACT_NAMES",
    "CLASS_OF_CATEGORY",
    "CLASS_OF_KIND",
    "NULL_TRACER",
    "NullTracer",
    "Sampler",
    "TelemetrySession",
    "Tracer",
    "TrafficClass",
    "chrome_trace",
    "class_bytes_from_result",
    "class_shares",
    "live_class_bytes",
    "write_artifacts",
]
