"""Epoch sampler: periodic gauge snapshots into a columnar time-series.

Components register named gauges (zero-argument callables); every
``sample_every`` cycles the sampler appends one row — the current cycle
plus every gauge value — to its column store.  Sampling is driven by a
self-rescheduling simulation event, so rows land at exact epoch
boundaries and never perturb component state (gauges are read-only).

The column store is plain ``{name: [values...]}`` with a shared ``cycle``
column, which serializes directly to JSON and loads into numpy/pandas
without reshaping.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

Gauge = Callable[[], float]

#: a block poll returns one value per registered column, in order.
BlockPoll = Callable[[], Sequence[float]]


class Sampler:
    """Samples registered gauges every N cycles."""

    def __init__(self, events, sample_every: float, max_samples: int = 100_000) -> None:
        self.events = events
        self.sample_every = float(sample_every)
        self.max_samples = max(1, int(max_samples))
        #: registration-ordered entries: ``(name, gauge)`` for single
        #: gauges, ``(tuple_of_names, block_poll)`` for batched blocks.
        self._gauges: List[Tuple[object, Callable]] = []
        self.columns: Dict[str, List[float]] = {"cycle": []}
        self.truncated = False

    @property
    def enabled(self) -> bool:
        return self.sample_every > 0 and bool(self._gauges)

    def register(self, name: str, gauge: Gauge) -> None:
        """Add a gauge column; *gauge* is polled once per epoch."""
        if name in self.columns:
            raise ValueError(f"duplicate gauge {name!r}")
        self._gauges.append((name, gauge))
        self.columns[name] = []

    def register_block(self, names: Sequence[str], poll: BlockPoll) -> None:
        """Add several columns fed by ONE poll call per epoch.

        *poll* must return one value per name, in order.  Use this when the
        gauges share an expensive computation (e.g. the per-class DRAM byte
        totals, which walk every partition): a block computes it once per
        tick instead of once per column.
        """
        for name in names:
            if name in self.columns:
                raise ValueError(f"duplicate gauge {name!r}")
            self.columns[name] = []
        self._gauges.append((tuple(names), poll))

    def start(self) -> None:
        """Schedule the first epoch tick (call once, before the run)."""
        if self.enabled:
            self.events.schedule(self.sample_every, self._tick)

    def _tick(self) -> None:
        if len(self.columns["cycle"]) >= self.max_samples:
            self.truncated = True
            return  # runaway guard: stop rescheduling, keep what we have
        self.sample_now()
        self.events.schedule(self.sample_every, self._tick)

    def sample_now(self) -> None:
        """Append one row at the current simulation time."""
        columns = self.columns
        columns["cycle"].append(self.events.now)
        for name, poll in self._gauges:
            if type(name) is str:
                columns[name].append(float(poll()))
            else:  # block: one poll feeds every column in the group
                for col, value in zip(name, poll()):
                    columns[col].append(float(value))

    def clear(self) -> None:
        """Drop all recorded rows (gauge registrations are kept)."""
        for column in self.columns.values():
            column.clear()
        self.truncated = False

    def num_samples(self) -> int:
        return len(self.columns["cycle"])
