"""Epoch sampler: periodic gauge snapshots into a columnar time-series.

Components register named gauges (zero-argument callables); every
``sample_every`` cycles the sampler appends one row — the current cycle
plus every gauge value — to its column store.  Sampling is driven by a
self-rescheduling simulation event, so rows land at exact epoch
boundaries and never perturb component state (gauges are read-only).

The column store is plain ``{name: [values...]}`` with a shared ``cycle``
column, which serializes directly to JSON and loads into numpy/pandas
without reshaping.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

Gauge = Callable[[], float]


class Sampler:
    """Samples registered gauges every N cycles."""

    def __init__(self, events, sample_every: float, max_samples: int = 100_000) -> None:
        self.events = events
        self.sample_every = float(sample_every)
        self.max_samples = max(1, int(max_samples))
        self._gauges: List[Tuple[str, Gauge]] = []
        self.columns: Dict[str, List[float]] = {"cycle": []}
        self.truncated = False

    @property
    def enabled(self) -> bool:
        return self.sample_every > 0 and bool(self._gauges)

    def register(self, name: str, gauge: Gauge) -> None:
        """Add a gauge column; *gauge* is polled once per epoch."""
        if name in self.columns:
            raise ValueError(f"duplicate gauge {name!r}")
        self._gauges.append((name, gauge))
        self.columns[name] = []

    def start(self) -> None:
        """Schedule the first epoch tick (call once, before the run)."""
        if self.enabled:
            self.events.schedule(self.sample_every, self._tick)

    def _tick(self) -> None:
        if len(self.columns["cycle"]) >= self.max_samples:
            self.truncated = True
            return  # runaway guard: stop rescheduling, keep what we have
        self.sample_now()
        self.events.schedule(self.sample_every, self._tick)

    def sample_now(self) -> None:
        """Append one row at the current simulation time."""
        self.columns["cycle"].append(self.events.now)
        for name, gauge in self._gauges:
            self.columns[name].append(float(gauge()))

    def num_samples(self) -> int:
        return len(self.columns["cycle"])
