"""Typed simulation-event tracing into a bounded ring buffer.

A :class:`Tracer` records the simulator's interesting moments — request
issue/complete, cache hit/miss/secondary-miss, MSHR merges, DRAM channel
service — as lightweight tuples stamped with the simulation clock.  The
ring is bounded (:class:`collections.deque` with ``maxlen``) so a long run
keeps the most recent window and counts what it dropped.

When telemetry is disabled, components hold the shared :data:`NULL_TRACER`
singleton whose ``enabled`` flag is ``False``; every emission site is
guarded by ``if tracer.enabled:``, so the disabled path costs one
attribute load per candidate event and allocates nothing.

Exports:

* ``trace.jsonl`` — one JSON object per event (``events_as_dicts``);
* ``trace.json`` — Chrome ``trace_event`` format (:func:`chrome_trace`),
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev.  One core
  cycle is mapped to one microsecond of trace time.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: event record: (phase, ts, dur, tid, name, cat, args) — phase follows the
#: Chrome trace_event convention: "i" instant, "X" complete (span).
EventRecord = Tuple[str, float, float, str, str, str, Optional[Dict[str, Any]]]


class NullTracer:
    """Zero-cost stand-in used whenever tracing is off."""

    __slots__ = ()
    enabled = False

    def instant(self, name: str, cat: str, tid: str, args: Optional[dict] = None) -> None:
        """No-op."""

    def clear(self) -> None:
        """No-op."""

    def span(
        self,
        name: str,
        cat: str,
        tid: str,
        ts: float,
        dur: float,
        args: Optional[dict] = None,
    ) -> None:
        """No-op."""


#: the shared disabled tracer; components default to this.
NULL_TRACER = NullTracer()


class Tracer:
    """Bounded recorder of typed simulation events."""

    __slots__ = ("_clock", "_ring", "_append", "capacity", "emitted")

    enabled = True

    def __init__(self, clock, capacity: int = 65536) -> None:
        #: *clock* is anything with a ``.now`` attribute (the EventQueue).
        self._clock = clock
        self.capacity = max(1, int(capacity))
        self._ring: deque[EventRecord] = deque(maxlen=self.capacity)
        #: bound append: the ``maxlen`` deque evicts the oldest record
        #: itself, so emission is a counter bump plus one append — no
        #: capacity check, no branch.
        self._append = self._ring.append
        self.emitted = 0

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        """Forget everything recorded so far (e.g. at a warmup boundary)."""
        self._ring.clear()
        self.emitted = 0

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (derived, not tracked per event)."""
        overflow = self.emitted - len(self._ring)
        return overflow if overflow > 0 else 0

    # -- emission ----------------------------------------------------------

    def instant(self, name: str, cat: str, tid: str, args: Optional[dict] = None) -> None:
        """Record a point event at the current simulation time."""
        self.emitted += 1
        self._append(("i", self._clock.now, 0.0, tid, name, cat, args))

    def span(
        self,
        name: str,
        cat: str,
        tid: str,
        ts: float,
        dur: float,
        args: Optional[dict] = None,
    ) -> None:
        """Record a duration event (e.g. one DRAM channel service)."""
        self.emitted += 1
        self._append(("X", ts, dur, tid, name, cat, args))

    # -- export ------------------------------------------------------------

    def events_as_dicts(self) -> List[dict]:
        """The ring contents, oldest first, as plain JSON-able dicts."""
        _round = round
        # one dict literal per shape keeps this loop allocation-minimal,
        # and rounded timestamps are memoized — events cluster on shared
        # cycles, so well over half the round() calls repeat an input.
        # Exports run once per simulation but convert the whole ring.
        rounded: Dict[float, float] = {}
        out: List[dict] = []
        append = out.append
        for ph, ts, dur, tid, name, cat, args in self._ring:
            t = rounded.get(ts)
            if t is None:
                t = rounded[ts] = _round(ts, 3)
            if ph == "X":
                d = rounded.get(dur)
                if d is None:
                    d = rounded[dur] = _round(dur, 3)
                if args:
                    append(
                        {"ph": ph, "ts": t, "tid": tid, "name": name,
                         "cat": cat, "dur": d, "args": args}
                    )
                else:
                    append(
                        {"ph": ph, "ts": t, "tid": tid, "name": name,
                         "cat": cat, "dur": d}
                    )
            elif args:
                append(
                    {"ph": ph, "ts": t, "tid": tid, "name": name,
                     "cat": cat, "args": args}
                )
            else:
                append({"ph": ph, "ts": t, "tid": tid, "name": name, "cat": cat})
        return out

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e, sort_keys=True) for e in self.events_as_dicts())


def chrome_trace(events: Iterable[dict], meta: Optional[dict] = None) -> dict:
    """Convert exported event dicts into the Chrome ``trace_event`` format.

    Thread ids are interned in first-appearance order and named via ``M``
    (metadata) events, so chrome://tracing and Perfetto show component
    names (``p0.l2``, ``p0.dram``, ...) instead of bare integers.
    """
    tids: Dict[str, int] = {}
    trace_events: List[dict] = []
    for event in events:
        tid = tids.setdefault(event["tid"], len(tids))
        chrome_event = {
            "ph": event["ph"],
            "ts": event["ts"],
            "pid": 0,
            "tid": tid,
            "name": event["name"],
            "cat": event["cat"],
        }
        if event["ph"] == "X":
            chrome_event["dur"] = event.get("dur", 0.0)
        if event.get("args"):
            chrome_event["args"] = event["args"]
        trace_events.append(chrome_event)
    name_events = [
        {
            "ph": "M",
            "pid": 0,
            "tid": index,
            "name": "thread_name",
            "args": {"name": tid_name},
        }
        for tid_name, index in tids.items()
    ]
    return {
        "traceEvents": name_events + trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}, clock="core cycles (1 cycle rendered as 1 us)"),
    }
