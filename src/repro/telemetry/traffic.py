"""Traffic-class attribution for DRAM bandwidth.

The paper's central claim is that secure-memory slowdown is *metadata DRAM
traffic*; :class:`TrafficClass` makes that attribution first-class.  Every
DRAM transfer belongs to exactly one of four classes:

* ``DATA`` — demand reads/writes from the L2 (including counter-overflow
  re-encryption sweeps, which move data blocks);
* ``COUNTER`` / ``MAC`` / ``TREE`` — metadata fetches *and* the dirty
  metadata writebacks of that kind.

The accounting is exact and costs nothing on the hot path: fetches are
already recorded per category by the DRAM channel, and writebacks are
recorded per metadata kind by the secure engine, so class totals are a
pure derivation — the conservation invariant ``sum(classes) ==
bytes_total`` holds to the byte.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable

from repro.common import params
from repro.common.config import MetadataKind


class TrafficClass(enum.Enum):
    """The four DRAM traffic classes of the paper's Figure 4 breakdown."""

    DATA = "data"
    COUNTER = "ctr"
    MAC = "mac"
    TREE = "bmt"


#: metadata kind -> traffic class (kind labels match DRAM category labels).
CLASS_OF_KIND: Dict[MetadataKind, TrafficClass] = {
    MetadataKind.COUNTER: TrafficClass.COUNTER,
    MetadataKind.MAC: TrafficClass.MAC,
    MetadataKind.TREE: TrafficClass.TREE,
}

#: DRAM category label -> traffic class.  ``wb`` is deliberately absent:
#: metadata writebacks are attributed per victim kind by the secure engine.
CLASS_OF_CATEGORY: Dict[str, TrafficClass] = {
    "data_read": TrafficClass.DATA,
    "data_write": TrafficClass.DATA,
    "ctr": TrafficClass.COUNTER,
    "mac": TrafficClass.MAC,
    "bmt": TrafficClass.TREE,
}


def class_bytes_from_result(result) -> Dict[str, float]:
    """Per-class DRAM bytes for one :class:`SimulationResult`.

    Works on live and cache-loaded results alike (only ``dram_txn`` and the
    per-kind ``writebacks`` counters are read).  Keys are the class names
    ``DATA``/``COUNTER``/``MAC``/``TREE``; values are bytes.
    """
    sector = params.SECTOR_BYTES
    line = params.CACHE_LINE_BYTES
    out = {
        TrafficClass.DATA.name: (
            result.dram_txn["data_read"] + result.dram_txn["data_write"]
        )
        * sector
    }
    for kind, tclass in CLASS_OF_KIND.items():
        fetched = result.dram_txn[kind.value] * sector
        written_back = result.metadata[kind]["writebacks"] * line
        out[tclass.name] = fetched + written_back
    return out


def live_class_bytes(partitions: Iterable) -> Dict[str, float]:
    """Per-class cumulative DRAM bytes read straight off live partitions.

    The sampler polls this every epoch; epoch deltas give per-class
    bandwidth over time.
    """
    totals = {tclass.name: 0.0 for tclass in TrafficClass}
    line = params.CACHE_LINE_BYTES
    for partition in partitions:
        dram_stats = partition.dram.stats
        totals[TrafficClass.DATA.name] += dram_stats.get(
            "bytes_data_read"
        ) + dram_stats.get("bytes_data_write")
        for kind, tclass in CLASS_OF_KIND.items():
            totals[tclass.name] += (
                dram_stats.get(f"bytes_{kind.value}")
                + partition.engine.kind_stats(kind).get("writebacks") * line
            )
    return totals


def class_shares(class_bytes: Dict[str, float]) -> Dict[str, float]:
    """Normalize a per-class byte breakdown to fractions of the total."""
    total = sum(class_bytes.values())
    if total <= 0:
        return {name: 0.0 for name in class_bytes}
    return {name: value / total for name, value in class_bytes.items()}
