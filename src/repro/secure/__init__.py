"""Secure memory architecture models.

This package contains the paper's subject matter:

* :mod:`repro.secure.geometry` — counter/MAC block geometry (Section IV),
* :mod:`repro.secure.merkle` — BMT/MT shape and node addressing,
* :mod:`repro.secure.layout` — the off-chip metadata address-space layout,
* :mod:`repro.secure.aes` — pipelined AES engine throughput/latency model,
* :mod:`repro.secure.engine` — the per-memory-controller secure engine
  timing model (counter-mode and direct encryption paths),
* :mod:`repro.secure.functional` — a functional (real-crypto, non-timing)
  secure memory used to validate the security semantics.
"""

from repro.secure.geometry import CounterGeometry, MacGeometry
from repro.secure.layout import MetadataLayout
from repro.secure.merkle import TreeGeometry

__all__ = ["CounterGeometry", "MacGeometry", "MetadataLayout", "TreeGeometry"]
