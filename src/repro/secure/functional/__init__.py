"""Functional (real-crypto, non-timing) secure memory.

The timing model in :mod:`repro.secure.engine` assumes the metadata scheme
actually provides confidentiality and integrity; this package implements it
for real over a tamperable byte store so those claims are testable:

* :mod:`repro.secure.functional.aes128` — from-scratch FIPS-197 AES-128,
* :mod:`repro.secure.functional.mac` — truncated keyed MACs bound to
  address (and counter, in counter mode),
* :mod:`repro.secure.functional.counters` — split-counter blocks with
  minor-counter overflow handling,
* :mod:`repro.secure.functional.tree` — hash trees (BMT over counters, MT
  over MACs) with an on-chip root,
* :mod:`repro.secure.functional.memory` — :class:`SecureMemory`, the
  encrypted byte store that detects tampering, splicing and replay.
"""

from repro.secure.functional.aes128 import Aes128
from repro.secure.functional.memory import (
    IntegrityError,
    SecureMemory,
    SecureMemoryMode,
)

__all__ = ["Aes128", "IntegrityError", "SecureMemory", "SecureMemoryMode"]
