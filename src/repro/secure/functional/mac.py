"""Keyed MACs and hashes for the functional secure memory.

The paper's stateful MACs bind the ciphertext to its address and (in
counter mode) its counter, so splicing (moving valid ciphertext to another
address) and replay (restoring stale ciphertext with its stale MAC) are
detectable.  We use HMAC-SHA256 truncated to the stored width — the
security argument only needs a PRF, and the stdlib gives us a fast one.
(The paper's hardware would use a Carter-Wegman or GHASH-style MAC; the
choice does not affect any measured behaviour.)
"""

from __future__ import annotations

import hashlib
import hmac

#: stored MAC width per 128 B line (Table II: 64-bit MACs).
LINE_MAC_BYTES = 8


class MacEngine:
    """Computes line MACs and tree-node hashes under two derived keys."""

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("MAC key must be at least 16 bytes")
        self._mac_key = hmac.new(key, b"mac", hashlib.sha256).digest()
        self._hash_key = hmac.new(key, b"tree", hashlib.sha256).digest()

    def line_mac(self, ciphertext: bytes, addr: int, counter: int = 0) -> bytes:
        """64-bit stateful MAC over (ciphertext, address, counter)."""
        msg = ciphertext + addr.to_bytes(8, "little") + counter.to_bytes(16, "little")
        return hmac.new(self._mac_key, msg, hashlib.sha256).digest()[:LINE_MAC_BYTES]

    def node_hash(self, block: bytes) -> bytes:
        """64-bit hash of a 128 B block, used for tree-node slots."""
        return hmac.new(self._hash_key, block, hashlib.sha256).digest()[:LINE_MAC_BYTES]
