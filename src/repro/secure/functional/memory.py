"""A functional secure memory: encryption + integrity over raw bytes.

:class:`SecureMemory` is the semantic counterpart of the timing model: a
byte store ("off-chip DRAM") laid out by :class:`~repro.secure.layout.
MetadataLayout` — data, counters, MACs and tree nodes all live in it and
are all reachable by an attacker via :meth:`tamper`, :meth:`snapshot` and
:meth:`restore`.  The trusted side holds only the AES/MAC keys and the
tree root register.

Supported configurations mirror Table VIII:

========================  ==========================================
mode                       protection
========================  ==========================================
``CTR``                    confidentiality only (counters unverified!)
``CTR_BMT``                + counter integrity (BMT)
``CTR_MAC_BMT``            + data integrity (stateful MACs)
``DIRECT``                 confidentiality only
``DIRECT_MAC``             + data integrity (MACs over ciphertext)
``DIRECT_MAC_MT``          + replay protection (MT over MAC blocks)
========================  ==========================================

All operations are line- (128 B) or sector- (32 B) granular like the
hardware; arbitrary ranges are served by read-modify-write.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.common import params
from repro.secure.functional.aes128 import Aes128
from repro.secure.functional.counters import CounterBlock, CounterValue
from repro.secure.functional.mac import LINE_MAC_BYTES, MacEngine
from repro.secure.functional.tree import HashTree, TreeMismatch
from repro.secure.layout import MetadataLayout

_LINE = params.CACHE_LINE_BYTES


class SecureMemoryMode(enum.Enum):
    CTR = "ctr"
    CTR_BMT = "ctr_bmt"
    CTR_MAC_BMT = "ctr_mac_bmt"
    DIRECT = "direct"
    DIRECT_MAC = "direct_mac"
    DIRECT_MAC_MT = "direct_mac_mt"

    @property
    def counter_mode(self) -> bool:
        return self in (self.CTR, self.CTR_BMT, self.CTR_MAC_BMT)

    @property
    def has_macs(self) -> bool:
        return self in (self.CTR_MAC_BMT, self.DIRECT_MAC, self.DIRECT_MAC_MT)

    @property
    def has_tree(self) -> bool:
        return self in (self.CTR_BMT, self.CTR_MAC_BMT, self.DIRECT_MAC_MT)


class IntegrityError(Exception):
    """Raised when memory verification detects tampering or replay."""


class SecureMemory:
    """Encrypted, integrity-protected byte store."""

    def __init__(
        self,
        protected_bytes: int = 256 * 1024,
        mode: SecureMemoryMode = SecureMemoryMode.CTR_MAC_BMT,
        key: bytes = b"repro-secure-memory-key!",
    ) -> None:
        self.mode = mode
        self.layout = MetadataLayout(protected_bytes)
        self.store = bytearray(self.layout.end)
        self._aes = Aes128(key[:16].ljust(16, b"\x00"))
        self._tweak_aes = Aes128(key[-16:].rjust(16, b"\x01"))
        self._mac = MacEngine(key.ljust(16, b"\x00"))
        self._tree: Optional[HashTree] = None
        self._initialize()

    # ------------------------------------------------------------------
    # initialization
    # ------------------------------------------------------------------

    def _initialize(self) -> None:
        """Encrypt the all-zero initial image and build the metadata."""
        for line in range(self.layout.protected_bytes // _LINE):
            addr = line * _LINE
            ciphertext = self._encrypt_line(addr, b"\x00" * _LINE)
            self.store[addr : addr + _LINE] = ciphertext
            if self.mode.has_macs or not self.mode.counter_mode:
                self._store_mac(addr, ciphertext)
        if self.mode.has_tree:
            self._tree = self._build_tree()

    def _build_tree(self) -> HashTree:
        if self.mode.counter_mode:
            tree = HashTree(
                self.store,
                self.layout.bmt,
                self.layout.bmt_base,
                leaf_bytes=self._counter_block_bytes,
                node_hash=self._mac.node_hash,
            )
        else:
            tree = HashTree(
                self.store,
                self.layout.mt,
                self.layout.mt_base,
                leaf_bytes=self._mac_block_bytes,
                node_hash=self._mac.node_hash,
            )
        tree.build()
        return tree

    # ------------------------------------------------------------------
    # metadata views
    # ------------------------------------------------------------------

    def _counter_block(self, data_addr: int) -> CounterBlock:
        offset = self.layout.counter_block_addr(data_addr)
        return CounterBlock(self.store, offset, self.layout.counters)

    def _counter_block_bytes(self, leaf_index: int) -> bytes:
        base = self.layout.counter_base + leaf_index * _LINE
        return bytes(self.store[base : base + _LINE])

    def _mac_block_bytes(self, leaf_index: int) -> bytes:
        base = self.layout.mac_base + leaf_index * _LINE
        return bytes(self.store[base : base + _LINE])

    def _line_counter(self, addr: int) -> CounterValue:
        block = self._counter_block(addr)
        return block.value_for(self.layout.counters.minor_index(addr))

    def _mac_slot(self, addr: int) -> tuple[int, int]:
        block_addr = self.layout.mac_block_addr(addr)
        slot = self.layout.macs.slot_index(addr)
        lo = block_addr + slot * LINE_MAC_BYTES
        return lo, lo + LINE_MAC_BYTES

    def _store_mac(self, addr: int, ciphertext: bytes) -> None:
        counter = self._line_counter(addr).combined if self.mode.counter_mode else 0
        lo, hi = self._mac_slot(addr)
        self.store[lo:hi] = self._mac.line_mac(ciphertext, addr, counter)
        if self._tree is not None and not self.mode.counter_mode:
            self._tree.update_leaf(self.layout.macs.block_index(addr))

    # ------------------------------------------------------------------
    # crypto
    # ------------------------------------------------------------------

    def _otp(self, addr: int, counter: CounterValue) -> bytes:
        """One-time pad for a 128 B line under its counter."""
        pad = bytearray()
        seed = counter.seed_bytes()  # 10 bytes
        for i in range(_LINE // Aes128.BLOCK):
            block_seed = seed + addr.to_bytes(5, "little") + bytes([i])
            pad += self._aes.encrypt_block(block_seed)
        return bytes(pad)

    def _xex_tweak(self, addr: int, block_index: int) -> bytes:
        seed = addr.to_bytes(8, "little") + block_index.to_bytes(8, "little")
        return self._tweak_aes.encrypt_block(seed)

    def _encrypt_line(self, addr: int, plaintext: bytes) -> bytes:
        if self.mode.counter_mode:
            pad = self._otp(addr, self._line_counter(addr))
            return bytes(a ^ b for a, b in zip(plaintext, pad))
        out = bytearray()
        for i in range(_LINE // Aes128.BLOCK):
            tweak = self._xex_tweak(addr, i)
            block = bytes(a ^ b for a, b in zip(plaintext[16 * i : 16 * i + 16], tweak))
            enc = self._aes.encrypt_block(block)
            out += bytes(a ^ b for a, b in zip(enc, tweak))
        return bytes(out)

    def _decrypt_line(self, addr: int, ciphertext: bytes) -> bytes:
        if self.mode.counter_mode:
            pad = self._otp(addr, self._line_counter(addr))
            return bytes(a ^ b for a, b in zip(ciphertext, pad))
        out = bytearray()
        for i in range(_LINE // Aes128.BLOCK):
            tweak = self._xex_tweak(addr, i)
            block = bytes(a ^ b for a, b in zip(ciphertext[16 * i : 16 * i + 16], tweak))
            dec = self._aes.decrypt_block(block)
            out += bytes(a ^ b for a, b in zip(dec, tweak))
        return bytes(out)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    def _verify_line(self, addr: int, ciphertext: bytes) -> None:
        if self.mode.counter_mode and self._tree is not None:
            try:
                self._tree.verify_leaf(self.layout.counters.block_index(addr))
            except TreeMismatch as exc:
                raise IntegrityError(f"counter integrity failure: {exc}") from exc
        if self.mode.has_macs:
            if self._tree is not None and not self.mode.counter_mode:
                try:
                    self._tree.verify_leaf(self.layout.macs.block_index(addr))
                except TreeMismatch as exc:
                    raise IntegrityError(f"MAC-block integrity failure: {exc}") from exc
            counter = self._line_counter(addr).combined if self.mode.counter_mode else 0
            lo, hi = self._mac_slot(addr)
            expected = self._mac.line_mac(ciphertext, addr, counter)
            if bytes(self.store[lo:hi]) != expected:
                raise IntegrityError(f"MAC mismatch for line {addr:#x}")

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        """Read *size* bytes at *addr*, verifying integrity per line."""
        self._check_range(addr, size)
        out = bytearray()
        for line_addr in self._lines(addr, size):
            ciphertext = bytes(self.store[line_addr : line_addr + _LINE])
            self._verify_line(line_addr, ciphertext)
            out += self._decrypt_line(line_addr, ciphertext)
        start = addr - self._lines(addr, size)[0]
        return bytes(out[start : start + size])

    def write(self, addr: int, data: bytes) -> None:
        """Encrypt and store *data*, updating counters, MACs and the tree."""
        self._check_range(addr, len(data))
        written = 0
        for line_addr in self._lines(addr, len(data)):
            plaintext = bytearray(self._read_line_for_update(line_addr))
            lo = max(addr, line_addr) - line_addr
            hi = min(addr + len(data), line_addr + _LINE) - line_addr
            plaintext[lo:hi] = data[written : written + (hi - lo)]
            written += hi - lo
            self._write_line(line_addr, bytes(plaintext))

    def _read_line_for_update(self, line_addr: int) -> bytes:
        ciphertext = bytes(self.store[line_addr : line_addr + _LINE])
        self._verify_line(line_addr, ciphertext)
        return self._decrypt_line(line_addr, ciphertext)

    def _write_line(self, line_addr: int, plaintext: bytes) -> None:
        if self.mode.counter_mode:
            geometry = self.layout.counters
            block = self._counter_block(line_addr)
            minor_index = geometry.minor_index(line_addr)
            if block.get_minor(minor_index) + 1 >= geometry.minor_limit:
                # minor overflow: the whole 16 KB chunk must move to the new
                # major counter (the cost the timing model charges too).
                self._reencrypt_chunk(line_addr)
                # the written line now encrypts under (major+1, minor=0),
                # a counter value never used before — no pad reuse.
            else:
                block.increment(minor_index)
            if self._tree is not None:
                self._tree.update_leaf(geometry.block_index(line_addr))
        ciphertext = self._encrypt_line(line_addr, plaintext)
        self.store[line_addr : line_addr + _LINE] = ciphertext
        if self.mode.has_macs:
            self._store_mac(line_addr, ciphertext)

    def _reencrypt_chunk(self, addr: int) -> None:
        """Minor-counter overflow: re-encrypt the 16 KB chunk under a new major.

        Plaintexts are captured under the *current* (major, minor) pairs,
        then the major is bumped and every minor reset, then every line is
        re-encrypted and its MAC refreshed — the hardware's read-modify-
        write sweep.
        """
        geometry = self.layout.counters
        chunk_base = (addr // geometry.data_bytes_per_block) * geometry.data_bytes_per_block
        chunk_end = min(
            chunk_base + geometry.data_bytes_per_block, self.layout.protected_bytes
        )
        lines = range(chunk_base, chunk_end, _LINE)
        plaintexts = {
            line_addr: self._decrypt_line(
                line_addr, bytes(self.store[line_addr : line_addr + _LINE])
            )
            for line_addr in lines
        }
        block = self._counter_block(addr)
        block.major = block.major + 1
        for i in range(geometry.minors_per_block):
            block.set_minor(i, 0)
        for line_addr, plaintext in plaintexts.items():
            ciphertext = self._encrypt_line(line_addr, plaintext)
            self.store[line_addr : line_addr + _LINE] = ciphertext
            if self.mode.has_macs:
                self._store_mac(line_addr, ciphertext)

    # ------------------------------------------------------------------
    # attacker interface
    # ------------------------------------------------------------------

    def tamper(self, addr: int, data: bytes) -> None:
        """Overwrite raw stored bytes, bypassing all protection (attack)."""
        self.store[addr : addr + len(data)] = data

    def snapshot(self) -> bytes:
        """Capture the attacker-visible memory image (for replay attacks)."""
        return bytes(self.store)

    def restore(self, image: bytes) -> None:
        """Replay a stale memory image.  The root register is NOT restored."""
        self.store[:] = image

    # ------------------------------------------------------------------

    def _lines(self, addr: int, size: int) -> range:
        first = addr - addr % _LINE
        last = (addr + max(size, 1) - 1) // _LINE * _LINE
        return range(first, last + _LINE, _LINE)

    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.layout.protected_bytes:
            raise ValueError("access outside the protected range")
