"""Split-counter block packing (Section IV's counter organization).

One 128 B counter block holds a 128-bit major counter shared by a 16 KB
chunk plus 128 seven-bit minor counters, one per 128 B line.  The minors
are bit-packed into the remaining 112 bytes (128 x 7 = 896 bits exactly).
When a minor overflows, the major is bumped, all minors reset, and every
line in the chunk must be re-encrypted under the new major — the overflow
cost the timing model charges in
:meth:`repro.secure.engine.SecureEngine._note_counter_increment`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.secure.geometry import CounterGeometry

_MAJOR_BYTES = 16


@dataclass(frozen=True)
class CounterValue:
    major: int
    minor: int

    def seed_bytes(self) -> bytes:
        """Serialization fed into the OTP derivation."""
        return (self.major % (1 << 64)).to_bytes(8, "little") + self.minor.to_bytes(
            2, "little"
        )

    @property
    def combined(self) -> int:
        """A single integer the MAC binds to (major:minor concatenation)."""
        return (self.major << 7) | self.minor


class CounterBlock:
    """View over one 128 B counter block stored in the raw byte store."""

    def __init__(self, store: bytearray, offset: int, geometry: CounterGeometry) -> None:
        self._store = store
        self._offset = offset
        self._geometry = geometry

    # -- major -----------------------------------------------------------

    @property
    def major(self) -> int:
        raw = self._store[self._offset : self._offset + _MAJOR_BYTES]
        return int.from_bytes(raw, "little")

    @major.setter
    def major(self, value: int) -> None:
        self._store[self._offset : self._offset + _MAJOR_BYTES] = (
            value % (1 << 128)
        ).to_bytes(_MAJOR_BYTES, "little")

    # -- minors ------------------------------------------------------------

    def _minor_bit_position(self, index: int) -> int:
        if not 0 <= index < self._geometry.minors_per_block:
            raise IndexError(f"minor index {index} out of range")
        return index * self._geometry.minor_bits

    def get_minor(self, index: int) -> int:
        bitpos = self._minor_bit_position(index)
        base = self._offset + _MAJOR_BYTES
        raw = int.from_bytes(self._store[base : base + 112], "little")
        return (raw >> bitpos) & (self._geometry.minor_limit - 1)

    def set_minor(self, index: int, value: int) -> None:
        if not 0 <= value < self._geometry.minor_limit:
            raise ValueError(f"minor value {value} does not fit in 7 bits")
        bitpos = self._minor_bit_position(index)
        base = self._offset + _MAJOR_BYTES
        raw = int.from_bytes(self._store[base : base + 112], "little")
        mask = (self._geometry.minor_limit - 1) << bitpos
        raw = (raw & ~mask) | (value << bitpos)
        self._store[base : base + 112] = raw.to_bytes(112, "little")

    # -- combined -------------------------------------------------------------

    def value_for(self, minor_index: int) -> CounterValue:
        return CounterValue(major=self.major, minor=self.get_minor(minor_index))

    def increment(self, minor_index: int) -> bool:
        """Bump a minor counter.

        Returns True when the minor overflowed: the caller must re-encrypt
        the whole chunk (major was bumped, all minors reset to zero).
        """
        value = self.get_minor(minor_index) + 1
        if value < self._geometry.minor_limit:
            self.set_minor(minor_index, value)
            return False
        self.major = self.major + 1
        for i in range(self._geometry.minors_per_block):
            self.set_minor(i, 0)
        return True
