"""Functional hash tree (BMT / MT) over a region of the raw byte store.

Internal nodes live in untrusted memory like everything else; only the
64-bit digest of the top node sits in the on-chip root register.  Each
128 B node holds sixteen 64-bit child hashes (matching the paper's 16-ary
geometry), so tampering with any leaf block, any internal node, or
replaying stale copies of them breaks the recomputed chain to the root.
"""

from __future__ import annotations

from typing import Callable

from repro.common import params
from repro.secure.merkle import TreeGeometry

_SLOT = 8  # 64-bit hash per child


class TreeMismatch(Exception):
    """An integrity-tree hash chain failed to verify."""


class HashTree:
    """Eager-update hash tree with an on-chip root register."""

    def __init__(
        self,
        store: bytearray,
        geometry: TreeGeometry,
        region_base: int,
        leaf_bytes: Callable[[int], bytes],
        node_hash: Callable[[bytes], bytes],
    ) -> None:
        self._store = store
        self.geometry = geometry
        self._base = region_base
        self._leaf_bytes = leaf_bytes
        self._hash = node_hash
        self.root_register = b"\x00" * _SLOT

    # -- node access ----------------------------------------------------------

    def _node_range(self, level: int, index: int) -> tuple[int, int]:
        offset = self._base + self.geometry.node_offset(level, index)
        return offset, offset + params.CACHE_LINE_BYTES

    def node_bytes(self, level: int, index: int) -> bytes:
        lo, hi = self._node_range(level, index)
        return bytes(self._store[lo:hi])

    def _slot_range(self, level: int, index: int) -> tuple[int, int]:
        """Where the hash of node/leaf ``(level, index)`` lives in its parent."""
        plevel, pindex = self.geometry.parent(level, index)
        lo, _hi = self._node_range(plevel, pindex)
        slot = (index % self.geometry.arity) * _SLOT
        return lo + slot, lo + slot + _SLOT

    def _child_hash(self, level: int, index: int) -> bytes:
        if level == 0:
            return self._hash(self._leaf_bytes(index))
        return self._hash(self.node_bytes(level, index))

    # -- operations ---------------------------------------------------------------

    def build(self) -> None:
        """Hash every leaf and node bottom-up; set the root register."""
        counts = [self.geometry.num_leaves] + list(self.geometry.level_sizes)
        for level in range(0, self.geometry.root_level):
            for index in range(counts[level]):
                lo, hi = self._slot_range(level, index)
                self._store[lo:hi] = self._child_hash(level, index)
        self.root_register = self._hash(
            self.node_bytes(self.geometry.root_level, 0)
        )

    def update_leaf(self, leaf_index: int) -> None:
        """Propagate a modified leaf up to the root register (eager update)."""
        level, index = 0, leaf_index
        while level < self.geometry.root_level:
            lo, hi = self._slot_range(level, index)
            self._store[lo:hi] = self._child_hash(level, index)
            level, index = self.geometry.parent(level, index)
        self.root_register = self._hash(self.node_bytes(self.geometry.root_level, 0))

    def verify_leaf(self, leaf_index: int) -> None:
        """Recompute the chain from a leaf to the root register.

        Raises :class:`TreeMismatch` if any stored hash disagrees —
        tampering or replay of the leaf or of any node on the path.
        """
        level, index = 0, leaf_index
        while level < self.geometry.root_level:
            lo, hi = self._slot_range(level, index)
            if self._child_hash(level, index) != bytes(self._store[lo:hi]):
                raise TreeMismatch(
                    f"hash mismatch at level {level}, index {index}"
                )
            level, index = self.geometry.parent(level, index)
        if self._hash(self.node_bytes(self.geometry.root_level, 0)) != self.root_register:
            raise TreeMismatch("root register mismatch")
