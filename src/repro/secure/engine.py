"""Timing model of the per-memory-controller secure engine (Sections IV-VI).

One :class:`SecureEngine` sits between the L2 bank(s) and the DRAM channel
of a memory partition.  It implements both encryption modes and every design
point of Tables V and VIII:

* **counter-mode** — data and counter fetches proceed in parallel; the
  one-time pad is generated from the counter (AES occupancy + latency) and
  XORed with the arriving ciphertext, so AES latency is off the critical
  path unless the counter misses.  Counter integrity is verified by walking
  the BMT; data integrity by stateful MACs.  Verification is *speculative*
  (does not delay the data response) and tree updates are *lazy* (a parent
  is updated only when its dirty child is evicted) — Section IV.
* **direct** — data is decrypted after it arrives (AES latency exposed).
  MACs protect data integrity, and a Merkle Tree over the MAC blocks
  protects against replay.

Metadata caches follow Table III: 128 B lines, allocate-on-fill, optional
MSHRs with per-kind merge caps.  All DRAM traffic is tagged so Figure 4's
breakdown and Figure 5's secondary-miss ratios come from the stats.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common import params
from repro.common.config import (
    EncryptionMode,
    GpuConfig,
    MetadataKind,
    SecureMemoryConfig,
)
from repro.common.stats import StatGroup
from repro.secure.aes import AesEngineBank, MacUnit
from repro.secure.layout import MetadataLayout
from repro.sim.cache import AccessResult, Eviction, InfiniteCache, SectoredCache
from repro.sim.dram import (
    CAT_COUNTER,
    CAT_DATA_READ,
    CAT_DATA_WRITE,
    CAT_MAC,
    CAT_METADATA_WB,
    CAT_TREE,
    DramChannel,
)
from repro.sim import fastpath
from repro.sim.event import EventQueue
from repro.sim.mshr import MshrTable
from repro.telemetry.latency import (
    HOP_CRYPTO,
    HOP_MDC,
    HOP_MSHR,
    NULL_LATENCY,
    STALL_CRYPTO,
    STALL_MDC_MSHR_FULL,
)
from repro.telemetry.tracer import NULL_TRACER
from repro.telemetry.traffic import CLASS_OF_KIND, TrafficClass

_KIND_TO_CATEGORY = {
    MetadataKind.COUNTER: CAT_COUNTER,
    MetadataKind.MAC: CAT_MAC,
    MetadataKind.TREE: CAT_TREE,
}

#: outcome of a metadata cache access, used to steer verification walks.
_HIT = "hit"
_PRIMARY = "primary"
_SECONDARY = "secondary"

#: process-wide tree-parent memos, keyed by everything the parent-address
#: function depends on: layout geometry (protected size + counter/MAC
#: geometries) and the mode predicates.  Parent addresses are pure
#: geometry, so engines of successive simulation points can share one warm
#: map instead of each recomputing the same (kind, block) -> parent walks.
_PARENT_MEMOS: Dict[tuple, Dict] = {}


def _shared_parent_memo(layout: MetadataLayout, counter_mode: bool, uses_tree: bool) -> Dict:
    key = (layout.protected_bytes, layout.counters, layout.macs, counter_mode, uses_tree)
    memo = _PARENT_MEMOS.get(key)
    if memo is None:
        memo = _PARENT_MEMOS[key] = {}
    return memo


class _Inflight:
    """Bookkeeping for one outstanding metadata line fill."""

    __slots__ = ("ready_time", "dirty")

    def __init__(self, ready_time: float, dirty: bool) -> None:
        self.ready_time = ready_time
        self.dirty = dirty


class _KindState:
    """Hot-path state for one metadata kind, resolved once at construction.

    ``_metadata_cache_access`` runs on every protected sector; looking up
    the per-kind cache/MSHR/stats through enum-keyed dicts there costs an
    enum hash per dict per call.  This bundle flattens all of it into one
    attribute load.
    """

    __slots__ = (
        "kind",
        "kind_value",
        "stats",
        "stat_add",
        "counts",
        "cache",
        "mshr",
        "merge_cap",
        "inflight",
        "category",
        "tclass",
        "cls_label",
        "mdc_pend",
    )

    def __init__(self, kind: MetadataKind, stats: StatGroup) -> None:
        self.kind = kind
        self.kind_value = kind.value
        self.stats = stats
        self.stat_add = stats.add
        self.counts = stats.raw()
        self.cache = None
        self.mshr = None
        self.merge_cap = 0
        self.inflight: Dict[int, _Inflight] = {}
        self.category = _KIND_TO_CATEGORY[kind]
        self.tclass = CLASS_OF_KIND[kind]
        self.cls_label = self.tclass.name
        #: bound (queue, service) sample buffers for the mdc hop, filled in
        #: by the engine once its latency recorder is known.
        self.mdc_pend = None


#: surface the columnar delivery lane (:mod:`repro.sim.columnar`) binds at
#: lane construction and mirrors inline: the mode/protection flags that
#: let it precompute the read/write shape, the per-kind state bundles it
#: peeks for metadata hits and secondary merges, and the scalar entry
#: points it delegates rare cases (primary misses, tree walks, counter
#: increments) to before touching any state.  Renames here require a
#: matching lane update; the contract test in
#: ``tests/test_fastpath_identity.py`` pins the names.
COLUMNAR_CONTRACT = (
    "trace_hook",
    "layout",
    "aes",
    "mac_unit",
    "_counts",
    "_enabled",
    "_counter_mode",
    "_direct_mode",
    "_uses_macs",
    "_uses_tree",
    "_walk_mt",
    "_speculative",
    "_lazy",
    "_all_protected",
    "_protected_window",
    "_perfect",
    "_infinite",
    "_hit_latency",
    "_ctr_state",
    "_mac_state",
    "_metadata_cache_access",
    "_tree_walk",
    "_note_counter_increment",
    "_eager_parent_update",
)


class SecureEngine:
    """Secure-memory pipeline of one memory partition."""

    def __init__(
        self,
        config: SecureMemoryConfig,
        gpu_config: GpuConfig,
        dram: DramChannel,
        events: EventQueue,
        layout: MetadataLayout,
        stats: StatGroup,
        trace_hook: Optional[Callable[[MetadataKind, int], None]] = None,
        tracer=None,
        name: str = "engine",
        latency=None,
    ) -> None:
        self.config = config
        self.dram = dram
        self.events = events
        self.layout = layout
        self.stats = stats
        self.name = name
        self._trace = tracer if tracer is not None else NULL_TRACER
        self._lat = latency if latency is not None else NULL_LATENCY
        self._mdc_tid = f"{name}.mdc"
        #: optional callback invoked with (kind, block_addr) on every
        #: metadata cache access — the reuse-distance experiments tap this.
        self.trace_hook = trace_hook

        aes_latency = 0 if config.zero_crypto_latency else config.aes_latency
        mac_latency = 0 if config.zero_crypto_latency else config.mac_latency
        self.aes = AesEngineBank(
            num_engines=config.aes_engines,
            latency=aes_latency,
            core_clock_mhz=gpu_config.core_clock_mhz,
            dram_clock_mhz=gpu_config.dram_clock_mhz,
            stats=stats.child("aes"),
        )
        self.mac_unit = MacUnit(
            latency=mac_latency,
            core_clock_mhz=gpu_config.core_clock_mhz,
            dram_clock_mhz=gpu_config.dram_clock_mhz,
            stats=stats.child("mac_unit"),
        )

        self._kind_stats = {kind: stats.child(kind.value) for kind in MetadataKind}
        self._caches: Dict[MetadataKind, object] = {}
        self._mshrs: Dict[MetadataKind, MshrTable] = {}
        self._merge_caps: Dict[MetadataKind, int] = {
            MetadataKind.COUNTER: config.counter_cache.mshr_merge_cap,
            MetadataKind.MAC: config.mac_cache.mshr_merge_cap,
            MetadataKind.TREE: config.tree_cache.mshr_merge_cap,
        }
        self._build_caches()
        #: per-(counter block, minor index) write counts for overflow modeling.
        self._minor_counts: Dict[Tuple[int, int], int] = {}
        self._hit_latency = config.counter_cache.hit_latency

        # -- hot-path state, resolved once ------------------------------
        # SecureMemoryConfig's mode predicates are computed properties
        # (enum comparisons); the per-access paths below read them from
        # plain attributes instead.
        self._enabled = config.enabled
        self._counter_mode = config.enabled and config.encryption is EncryptionMode.COUNTER
        self._direct_mode = config.enabled and config.encryption is EncryptionMode.DIRECT
        self._uses_macs = config.uses_macs
        self._uses_tree = config.uses_tree
        self._walk_mt = self._direct_mode and config.uses_tree
        self._speculative = config.speculative_verification
        self._lazy = config.lazy_update
        self._perfect = config.perfect_metadata_cache
        self._infinite = config.infinite_metadata_cache
        self._all_protected = config.protected_fraction >= 1.0
        self._protected_window = config.protected_fraction * self._SELECTIVE_WINDOW
        self._stats_add = stats.add
        self._counts = stats.raw()
        self._trace_on = self._trace.enabled
        self._trace_instant = self._trace.instant
        self._lat_on = self._lat.enabled
        #: bound (queue, service) sample buffers for the exposed-crypto hop.
        self._crypto_pend = self._lat.channel(HOP_CRYPTO, "DATA")
        self._dram_read = dram.read
        self._dram_write = dram.write
        #: free-list of _Inflight records (slot reuse for per-miss churn).
        self._pooling = fastpath.POOLING
        self._inflight_pool: List[_Inflight] = []
        #: (kind, block_addr) -> parent tree-node address (or None); pure
        #: geometry, so memoizing cannot change results.  Under the batched
        #: core the memo is shared process-wide (cross-point warm state).
        if fastpath.BATCHING:
            self._parent_memo = _shared_parent_memo(
                layout, self._counter_mode, config.uses_tree
            )
        else:
            self._parent_memo = {}
        self._kind_state = {
            kind: _KindState(kind, self._kind_stats[kind]) for kind in MetadataKind
        }
        self._inflight: Dict[MetadataKind, Dict[int, _Inflight]] = {}
        for kind, state in self._kind_state.items():
            state.cache = self._caches.get(kind)
            state.mshr = self._mshrs.get(kind)
            state.merge_cap = self._merge_caps[kind]
            state.mdc_pend = self._lat.channel(HOP_MDC, state.cls_label)
            self._inflight[kind] = state.inflight
        self._ctr_state = self._kind_state[MetadataKind.COUNTER]
        self._mac_state = self._kind_state[MetadataKind.MAC]
        self._tree_state = self._kind_state[MetadataKind.TREE]

    def _build_caches(self) -> None:
        cfg = self.config
        if cfg.perfect_metadata_cache:
            return  # accesses never reach a cache object
        if cfg.infinite_metadata_cache:
            for kind in MetadataKind:
                self._caches[kind] = InfiniteCache(
                    self._kind_stats[kind].child("cache"),
                    tclass=CLASS_OF_KIND[kind],
                    name=f"{self.name}.mdc.{kind.value}",
                )
        elif cfg.unified_metadata_cache:
            unified = SectoredCache(
                cfg.unified_cache.to_cache_config(),
                StatGroup("unified"),
                name=f"{self.name}.mdc.unified",
            )
            for kind in MetadataKind:
                self._caches[kind] = unified
            table = MshrTable(
                cfg.unified_cache.num_mshrs,
                cfg.unified_cache.mshr_merge_cap,
                name=f"{self.name}.mshr.unified",
            )
            for kind in MetadataKind:
                self._mshrs[kind] = table
            return
        else:
            specs = {
                MetadataKind.COUNTER: cfg.counter_cache,
                MetadataKind.MAC: cfg.mac_cache,
                MetadataKind.TREE: cfg.tree_cache,
            }
            for kind, spec in specs.items():
                self._caches[kind] = SectoredCache(
                    spec.to_cache_config(),
                    self._kind_stats[kind].child("cache"),
                    tclass=CLASS_OF_KIND[kind],
                    name=f"{self.name}.mdc.{kind.value}",
                )
                self._mshrs[kind] = MshrTable(
                    spec.num_mshrs,
                    spec.mshr_merge_cap,
                    name=f"{self.name}.mshr.{kind.value}",
                )
            return
        # infinite caches share the configured MSHR setup per kind
        for kind in MetadataKind:
            spec = {
                MetadataKind.COUNTER: cfg.counter_cache,
                MetadataKind.MAC: cfg.mac_cache,
                MetadataKind.TREE: cfg.tree_cache,
            }[kind]
            self._mshrs[kind] = MshrTable(
                spec.num_mshrs,
                spec.mshr_merge_cap,
                name=f"{self.name}.mshr.{kind.value}",
            )

    # ------------------------------------------------------------------
    # public interface used by the memory partition
    # ------------------------------------------------------------------

    #: granularity of selective protection: every window of this many
    #: lines has ``protected_fraction`` of its lines covered.
    _SELECTIVE_WINDOW = 64

    def _is_protected(self, addr: int) -> bool:
        """Selective encryption: a ``protected_fraction`` of all lines,
        spread uniformly, goes through the secure path (the sensitive-data
        subset of Zuo et al.'s proposal)."""
        if self._all_protected:
            return True
        line = addr // params.CACHE_LINE_BYTES
        return (line % self._SELECTIVE_WINDOW) < self._protected_window

    def read_sector(self, now: float, addr: int, nbytes: int = params.SECTOR_BYTES) -> float:
        """Fetch *nbytes* of data from DRAM through the secure pipeline.

        *nbytes* is one 32 B sector for the GPU's sectored L2, or a whole
        128 B line for the non-sectored ablation.  Returns the time the
        plaintext is available to fill the L2.
        """
        self._counts["reads"] += 1.0
        if not self._enabled or not (self._all_protected or self._is_protected(addr)):
            return self._dram_read(now, nbytes, CAT_DATA_READ, addr, tclass=TrafficClass.DATA)

        data_ready = self._dram_read(now, nbytes, CAT_DATA_READ, addr, tclass=TrafficClass.DATA)
        verify_done = now
        if self._counter_mode:
            # OTP generation starts once the counter is on chip and overlaps
            # the data fetch — counter-mode's whole point.
            ctr_ready, walk_done = self._counter_access(now, addr, is_write=False)
            otp_ready = self.aes.process(now, nbytes, available=ctr_ready)
            ready = (data_ready if data_ready >= otp_ready else otp_ready) + 1  # the XOR
            if walk_done > verify_done:
                verify_done = walk_done
        elif self._direct_mode:
            # decryption can only start after the ciphertext arrives: the
            # AES latency lands on the load critical path.
            ready = self.aes.process(now, nbytes, available=data_ready)
        else:
            ready = data_ready

        if self._uses_macs:
            mac_ready, walk_done = self._mac_access(now, addr, is_write=False)
            check_done = self.mac_unit.process(
                now,
                n_ops=nbytes // params.SECTOR_BYTES or 1,
                available=mac_ready if mac_ready >= data_ready else data_ready,
            )
            if walk_done > verify_done:
                verify_done = walk_done
            if check_done > verify_done:
                verify_done = check_done
        if not self._speculative:
            # blocking verification: the load waits for every check.
            if verify_done > ready:
                ready = verify_done
        if self._lat_on:
            # crypto cycles *exposed* beyond the raw data fetch: the OTP
            # XOR / late counter in counter mode, the full AES latency in
            # direct mode, blocking verification when non-speculative.
            exposed = ready - data_ready
            if exposed > 0.0:
                pend = self._crypto_pend
                pend[0].append(0.0)
                pend[1].append(exposed)
                self._lat.stall(STALL_CRYPTO, exposed)
        return ready

    def write_sector(self, now: float, addr: int, nbytes: int = params.SECTOR_BYTES) -> float:
        """Write back *nbytes* of dirty data through the secure pipeline."""
        self._counts["writes"] += 1.0
        if not self._enabled or not (self._all_protected or self._is_protected(addr)):
            return self._dram_write(now, nbytes, CAT_DATA_WRITE, addr, tclass=TrafficClass.DATA)

        if self._counter_mode:
            self._counter_access(now, addr, is_write=True)
            self.aes.process(now, nbytes)
        elif self._direct_mode:
            self.aes.process(now, nbytes)
        if self._uses_macs:
            self._mac_access(now, addr, is_write=True)
            self.mac_unit.process(now, n_ops=nbytes // params.SECTOR_BYTES or 1)
        # the write sits in the controller's write queue until encrypted;
        # channel occupancy is charged now (what later accesses observe).
        return self._dram_write(now, nbytes, CAT_DATA_WRITE, addr, tclass=TrafficClass.DATA)

    def finalize(self) -> None:
        """Flush dirty metadata (accounting only, at the end of a run)."""
        # Intentionally a no-op for timing: the paper measures a fixed
        # simulation window.  Kept as an explicit hook for symmetry with the
        # functional model.

    # ------------------------------------------------------------------
    # metadata access machinery
    # ------------------------------------------------------------------

    def _counter_access(self, now: float, data_addr: int, is_write: bool) -> Tuple[float, float]:
        """Access the counter covering *data_addr*; returns (ready, walk_done)."""
        block = self.layout.counter_block_addr(data_addr)
        ready, outcome = self._metadata_cache_access(now, self._ctr_state, block, is_write)
        walk_done = now
        if outcome is _PRIMARY and self._uses_tree:
            walk_done = self._tree_walk(now, self.layout.bmt_path_addrs(data_addr)[:-1])
        if is_write:
            self._note_counter_increment(now, data_addr)
            if self._uses_tree and not self._lazy:
                self._eager_parent_update(now, MetadataKind.COUNTER, block)
        return ready, walk_done

    def _mac_access(self, now: float, data_addr: int, is_write: bool) -> Tuple[float, float]:
        """Access the MAC covering *data_addr*; returns (ready, walk_done)."""
        block = self.layout.mac_block_addr(data_addr)
        ready, outcome = self._metadata_cache_access(now, self._mac_state, block, is_write)
        walk_done = now
        if outcome is _PRIMARY and self._walk_mt:
            walk_done = self._tree_walk(now, self.layout.mt_path_addrs(data_addr)[:-1])
        if is_write and self._walk_mt and not self._lazy:
            self._eager_parent_update(now, MetadataKind.MAC, block)
        return ready, walk_done

    def _eager_parent_update(self, now: float, kind: MetadataKind, block_addr: int) -> None:
        """Eager tree maintenance: every leaf write refreshes its parent.

        The ablation counterpart of the paper's lazy-update scheme; it
        charges a hash and a dirty tree-cache access per write instead of
        deferring them to eviction time.
        """
        parent_addr = self._tree_parent_addr(kind, block_addr)
        if parent_addr is None:
            return
        self.stats.add("eager_updates")
        self.mac_unit.process(now)
        _ready, outcome = self._metadata_cache_access(
            now, self._tree_state, parent_addr, is_write=True
        )
        if outcome is _PRIMARY:
            self._tree_walk_from_node(now, parent_addr)

    def _tree_walk(self, now: float, fetchable_addrs: Sequence[int]) -> float:
        """Verify up the tree until a trusted (cached) ancestor or the root.

        *fetchable_addrs* are the memory-resident nodes from the leaf's
        parent upward, excluding the root (held in an on-chip register, so
        never fetched).  Each level costs one hash check on the MAC unit.
        Returns the completion time of the walk (speculative, so callers
        usually ignore it).
        """
        done = now
        tree_state = self._tree_state
        for node_addr in fetchable_addrs:
            ready, outcome = self._metadata_cache_access(
                now, tree_state, node_addr, is_write=False
            )
            done = max(done, self.mac_unit.process(now, available=ready))
            if outcome is not _PRIMARY:
                break  # cached => trusted; in-flight => someone else verifies
        else:
            done = self.mac_unit.process(now, available=done)  # vs root register
        self.stats.add("tree_walks")
        return done

    def _metadata_cache_access(
        self, now: float, state: _KindState, block_addr: int, is_write: bool
    ) -> Tuple[float, str]:
        """One access to a metadata cache; returns (ready_time, outcome)."""
        counts = state.counts
        counts["accesses"] += 1.0
        if self.trace_hook is not None:
            self.trace_hook(state.kind, block_addr)

        if self._perfect:
            counts["hits"] += 1.0
            return now + self._hit_latency, _HIT

        result = state.cache.lookup(block_addr, is_write=is_write)
        if result is AccessResult.HIT:
            counts["hits"] += 1.0
            if self._lat_on:
                pend = state.mdc_pend
                pend[0].append(0.0)
                pend[1].append(self._hit_latency)
            if self._trace_on:
                self._trace_instant(
                    "mdc_hit", "mdc", self._mdc_tid,
                    {"kind": state.kind_value, "addr": block_addr},
                )
            return now + self._hit_latency, _HIT

        counts["misses"] += 1.0
        category = state.category
        tclass = state.tclass
        if self._infinite:
            # ``large_mdc`` idealization: unlimited capacity means the line
            # can be allocated at miss time, so every miss is compulsory and
            # later accesses hit under the outstanding fill.
            counts["primary_misses"] += 1.0
            ready = self._dram_read(
                now, params.CACHE_LINE_BYTES, category, block_addr, tclass=tclass
            )
            state.cache.fill(block_addr, dirty=is_write)
            counts["fills"] += 1.0
            return ready, _PRIMARY
        inflight = state.inflight
        pending = inflight.get(block_addr)
        if pending is not None:
            counts["secondary_misses"] += 1.0
            pending.dirty = pending.dirty or is_write
            mshr = state.mshr
            entry = mshr.get(block_addr)
            if entry is not None and entry.merged < state.merge_cap:
                # per-kind merge cap, which may be tighter than the table's
                # own cap in unified mode — bump the entry directly.
                entry.merged += 1
                counts["merged"] += 1.0
                if self._lat_on:
                    # wait under the in-flight fill (MDC merges bypass
                    # MshrTable.merge, so record the queueing here).
                    self._lat.record(
                        HOP_MSHR, state.cls_label, pending.ready_time - now, 0.0
                    )
                if self._trace_on:
                    self._trace_instant(
                        "merge", "mshr", mshr.name,
                        {"addr": entry.line_addr, "n": entry.merged},
                    )
                return pending.ready_time, _SECONDARY
            # no MSHR (or cap reached): the secondary miss becomes its own
            # redundant memory fetch — the Section V-A traffic explosion.
            counts["duplicate_fetches"] += 1.0
            if self._trace_on:
                self._trace_instant(
                    "mdc_dup_fetch", "mdc", self._mdc_tid,
                    {"kind": state.kind_value, "addr": block_addr},
                )
            ready = self._dram_read(
                now, params.CACHE_LINE_BYTES, category, block_addr, tclass=tclass
            )
            return ready, _SECONDARY

        counts["primary_misses"] += 1.0
        if self._trace_on:
            self._trace_instant(
                "mdc_primary_miss", "mdc", self._mdc_tid,
                {"kind": state.kind_value, "addr": block_addr},
            )
        mshr = state.mshr
        start = now
        mshr_enabled = mshr.enabled
        full = mshr_enabled and len(mshr._entries) >= mshr.num_entries
        if full:
            # structural stall: wait for the earliest in-flight fill.
            counts["mshr_full_stalls"] += 1.0
            start = max(now, mshr.earliest_ready())
            if self._lat_on:
                self._lat.stall(STALL_MDC_MSHR_FULL, start - now)
                self._lat.record(HOP_MSHR, state.cls_label, start - now, 0.0)
        ready = self._dram_read(
            start, params.CACHE_LINE_BYTES, category, block_addr, tclass=tclass
        )
        pool = self._inflight_pool
        if pool:
            record = pool.pop()
            record.ready_time = ready
            record.dirty = is_write
        else:
            record = _Inflight(ready, is_write)
        inflight[block_addr] = record
        if mshr_enabled and not full:
            mshr.allocate(block_addr, ready)
        self.events.schedule_at(ready, self._on_metadata_fill, state, block_addr)
        return ready, _PRIMARY

    def _on_metadata_fill(self, state: _KindState, block_addr: int) -> None:
        """Install a fetched metadata line; handle eviction writebacks."""
        now = self.events.now
        pending = state.inflight.pop(block_addr, None)
        mshr = state.mshr
        if mshr.enabled:
            entry = mshr.get(block_addr)
            if entry is not None:
                mshr.release(block_addr)
                mshr.recycle(entry)
        dirty = pending.dirty if pending is not None else False
        if pending is not None and self._pooling:
            self._inflight_pool.append(pending)
        evictions = state.cache.fill(block_addr, dirty=dirty)
        state.counts["fills"] += 1.0
        for eviction in evictions:
            self._handle_metadata_eviction(now, eviction)

    def _handle_metadata_eviction(self, now: float, eviction: Eviction) -> None:
        """Write back a dirty victim; lazily update its tree parent."""
        victim_kind = self.layout.kind_of(eviction.line_addr)
        if victim_kind is None:
            raise RuntimeError("metadata cache evicted a data address")
        victim_state = self._kind_state[victim_kind]
        victim_state.stat_add("cache_evictions")
        if not eviction.dirty:
            return
        victim_state.stat_add("writebacks")
        self._dram_write(
            now,
            params.CACHE_LINE_BYTES,
            CAT_METADATA_WB,
            eviction.line_addr,
            tclass=victim_state.tclass,
        )
        if not self._uses_tree:
            return
        parent_addr = self._tree_parent_addr(victim_kind, eviction.line_addr)
        if parent_addr is None:
            return  # protected by the on-chip root register
        # lazy update: recompute the parent hash slot in the tree cache.
        self.mac_unit.process(now)
        ready, outcome = self._metadata_cache_access(
            now, self._tree_state, parent_addr, is_write=True
        )
        if outcome is _PRIMARY:
            # the fetched parent must itself be verified upward.
            self._tree_walk_from_node(now, parent_addr)

    def _tree_walk_from_node(self, now: float, node_addr: int) -> None:
        """Continue a verification walk starting above *node_addr*."""
        addrs: List[int] = []
        addr: Optional[int] = node_addr
        while addr is not None:
            parent = self._tree_parent_addr(MetadataKind.TREE, addr)
            if parent is None:
                break
            addrs.append(parent)
            addr = parent
        self._tree_walk(now, addrs)

    def _tree_parent_addr(self, kind: MetadataKind, block_addr: int) -> Optional[int]:
        """Address of the tree node whose hash covers *block_addr*.

        Returns None when the parent is the on-chip root (or when the block
        kind has no tree parent in the active mode).  Pure geometry, so the
        answer is memoized per (kind, block) — evictions and lazy updates
        revisit the same victims constantly.
        """
        key = (kind, block_addr)
        memo = self._parent_memo
        if key in memo:
            return memo[key]
        result = self._tree_parent_addr_uncached(kind, block_addr)
        memo[key] = result
        return result

    def _tree_parent_addr_uncached(self, kind: MetadataKind, block_addr: int) -> Optional[int]:
        layout = self.layout
        counter_mode = self._counter_mode
        if kind is MetadataKind.COUNTER:
            if not counter_mode:
                return None
            leaf = (block_addr - layout.counter_base) // params.CACHE_LINE_BYTES
            level, index = layout.bmt.parent(0, leaf)
            if level == layout.bmt.root_level:
                return None
            return layout.bmt_node_addr(level, index)
        if kind is MetadataKind.MAC:
            if counter_mode or not self.config.uses_tree:
                return None  # MACs are not tree leaves under the BMT scheme
            leaf = (block_addr - layout.mac_base) // params.CACHE_LINE_BYTES
            level, index = layout.mt.parent(0, leaf)
            if level == layout.mt.root_level:
                return None
            return layout.mt_node_addr(level, index)
        # tree node: find its own parent within the right tree
        if block_addr < layout.mt_base:
            tree, base, to_addr = layout.bmt, layout.bmt_base, layout.bmt_node_addr
        else:
            tree, base, to_addr = layout.mt, layout.mt_base, layout.mt_node_addr
        level, index = tree.coords_of_offset(block_addr - base)
        if level >= tree.root_level:
            return None
        plevel, pindex = tree.parent(level, index)
        if plevel == tree.root_level:
            return None
        return to_addr(plevel, pindex)

    # ------------------------------------------------------------------
    # counter overflow (split-counter re-encryption)
    # ------------------------------------------------------------------

    def _note_counter_increment(self, now: float, data_addr: int) -> None:
        geometry = self.layout.counters
        key = (geometry.block_index(data_addr), geometry.minor_index(data_addr))
        count = self._minor_counts.get(key, 0) + 1
        if count >= geometry.minor_limit:
            # minor overflow: bump the major counter and re-encrypt the
            # whole 16 KB chunk under the new major value.
            self.stats.add("counter_overflows")
            chunk = geometry.data_bytes_per_block
            chunk_base = key[0] * chunk
            self.dram.read(now, chunk, CAT_DATA_READ, chunk_base, tclass=TrafficClass.DATA)
            self.aes.process(now, 2 * chunk)  # decrypt + re-encrypt
            self.dram.write(now, chunk, CAT_DATA_WRITE, chunk_base, tclass=TrafficClass.DATA)
            for minor in range(geometry.minors_per_block):
                self._minor_counts.pop((key[0], minor), None)
        else:
            self._minor_counts[key] = count

    # ------------------------------------------------------------------
    # introspection helpers used by figures
    # ------------------------------------------------------------------

    def kind_stats(self, kind: MetadataKind) -> StatGroup:
        return self._kind_stats[kind]

    def mshr_occupancy(self, kind: MetadataKind) -> int:
        """In-flight fills in *kind*'s MSHR table (0 when disabled/absent)."""
        mshr = self._mshrs.get(kind)
        return mshr.occupancy if mshr is not None else 0

    def metadata_miss_rate(self, kind: MetadataKind) -> float:
        stats = self._kind_stats[kind]
        accesses = stats.get("accesses")
        return stats.get("misses") / accesses if accesses else 0.0

    def secondary_miss_ratio(self, kind: MetadataKind) -> float:
        stats = self._kind_stats[kind]
        misses = stats.get("misses")
        return stats.get("secondary_misses") / misses if misses else 0.0
