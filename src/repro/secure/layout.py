"""Off-chip metadata address-space layout.

The protected data occupies ``[0, protected_bytes)``.  Security metadata is
stored above it in dedicated contiguous regions, one per metadata kind.  The
layout computes, for any data address, the off-chip address of the metadata
block (128 B cache line) that covers it — these are the addresses the
metadata caches are indexed with and the addresses that appear on the DRAM
channel when a metadata cache misses.

Both encryption modes share one layout object; a given configuration simply
never touches the regions it does not use (e.g. direct encryption never
generates counter addresses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.common import params
from repro.common.config import MetadataKind
from repro.secure.geometry import CounterGeometry, MacGeometry
from repro.secure.merkle import TreeGeometry, bmt_geometry, mt_geometry


@dataclass(frozen=True)
class MetadataLayout:
    """Region layout for counters, MACs and both integrity trees."""

    protected_bytes: int = params.PROTECTED_MEMORY_BYTES
    counters: CounterGeometry = field(default_factory=CounterGeometry)
    macs: MacGeometry = field(default_factory=MacGeometry)
    bmt: TreeGeometry = field(init=False)
    mt: TreeGeometry = field(init=False)

    def __post_init__(self) -> None:
        if self.protected_bytes % params.CACHE_LINE_BYTES:
            raise ValueError("protected range must be line-aligned")
        object.__setattr__(self, "bmt", bmt_geometry(self.protected_bytes))
        object.__setattr__(self, "mt", mt_geometry(self.protected_bytes))

    # -- region bases ----------------------------------------------------------

    @property
    def counter_base(self) -> int:
        return self.protected_bytes

    @property
    def counter_region_bytes(self) -> int:
        return self.counters.storage_bytes(self.protected_bytes)

    @property
    def mac_base(self) -> int:
        return self.counter_base + self.counter_region_bytes

    @property
    def mac_region_bytes(self) -> int:
        return self.macs.storage_bytes(self.protected_bytes)

    @property
    def bmt_base(self) -> int:
        return self.mac_base + self.mac_region_bytes

    @property
    def bmt_region_bytes(self) -> int:
        return self.bmt.internal_storage_bytes

    @property
    def mt_base(self) -> int:
        return self.bmt_base + self.bmt_region_bytes

    @property
    def mt_region_bytes(self) -> int:
        return self.mt.internal_storage_bytes

    @property
    def end(self) -> int:
        return self.mt_base + self.mt_region_bytes

    # -- data -> metadata block addresses -----------------------------------------

    def _check_data_addr(self, data_addr: int) -> None:
        if not 0 <= data_addr < self.protected_bytes:
            raise ValueError(
                f"address {data_addr:#x} outside the protected range "
                f"[0, {self.protected_bytes:#x})"
            )

    def counter_block_addr(self, data_addr: int) -> int:
        """Address of the counter block covering *data_addr*."""
        self._check_data_addr(data_addr)
        index = self.counters.block_index(data_addr)
        return self.counter_base + index * params.CACHE_LINE_BYTES

    def mac_block_addr(self, data_addr: int) -> int:
        """Address of the MAC block covering *data_addr*."""
        self._check_data_addr(data_addr)
        index = self.macs.block_index(data_addr)
        return self.mac_base + index * params.CACHE_LINE_BYTES

    def bmt_node_addr(self, level: int, index: int) -> int:
        return self.bmt_base + self.bmt.node_offset(level, index)

    def mt_node_addr(self, level: int, index: int) -> int:
        return self.mt_base + self.mt.node_offset(level, index)

    def bmt_path_addrs(self, data_addr: int) -> Tuple[int, ...]:
        """BMT node addresses from the covering counter block's parent to root."""
        self._check_data_addr(data_addr)
        leaf = self.counters.block_index(data_addr)
        return tuple(self.bmt_node_addr(lvl, idx) for lvl, idx in self.bmt.path_to_root(leaf))

    def mt_path_addrs(self, data_addr: int) -> Tuple[int, ...]:
        """MT node addresses from the covering MAC block's parent to root."""
        self._check_data_addr(data_addr)
        leaf = self.macs.block_index(data_addr)
        return tuple(self.mt_node_addr(lvl, idx) for lvl, idx in self.mt.path_to_root(leaf))

    # -- classification -------------------------------------------------------------

    def kind_of(self, addr: int) -> MetadataKind | None:
        """Which metadata region *addr* falls in, or None for data addresses."""
        if addr < self.counter_base:
            return None
        if addr < self.mac_base:
            return MetadataKind.COUNTER
        if addr < self.bmt_base:
            return MetadataKind.MAC
        if addr < self.end:
            return MetadataKind.TREE
        raise ValueError(f"address {addr:#x} beyond the metadata regions")

    def is_metadata(self, addr: int) -> bool:
        return self.kind_of(addr) is not None

    def total_metadata_bytes(self, counter_mode: bool) -> int:
        """Table II's per-mode total metadata storage."""
        if counter_mode:
            return self.counter_region_bytes + self.mac_region_bytes + self.bmt_region_bytes
        return self.mac_region_bytes + self.mt_region_bytes
