"""Off-chip metadata address-space layout.

The protected data occupies ``[0, protected_bytes)``.  Security metadata is
stored above it in dedicated contiguous regions, one per metadata kind.  The
layout computes, for any data address, the off-chip address of the metadata
block (128 B cache line) that covers it — these are the addresses the
metadata caches are indexed with and the addresses that appear on the DRAM
channel when a metadata cache misses.

Both encryption modes share one layout object; a given configuration simply
never touches the regions it does not use (e.g. direct encryption never
generates counter addresses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Tuple

from repro.common import params
from repro.common.config import MetadataKind
from repro.secure.geometry import CounterGeometry, MacGeometry
from repro.secure.merkle import TreeGeometry, bmt_geometry, mt_geometry

#: per-layout LRU capacity for data-address -> metadata-address maps.  Sized
#: well above any scaled workload's touched-sector count so steady-state runs
#: never evict; bounded so a pathological address stream cannot grow without
#: limit.
_ADDR_MEMO_SIZE = 1 << 15
_PATH_MEMO_SIZE = 1 << 14


@dataclass(frozen=True)
class MetadataLayout:
    """Region layout for counters, MACs and both integrity trees.

    Address translation is on the simulator's hottest path (every protected
    sector access derives counter/MAC/tree addresses), so the layout is
    aggressively memoized at construction: region bases are computed once,
    and the four translation methods are per-instance LRU maps over the
    exact same arithmetic.  Memoization never changes a returned value —
    the geometry is immutable — so results stay bit-identical.
    """

    protected_bytes: int = params.PROTECTED_MEMORY_BYTES
    counters: CounterGeometry = field(default_factory=CounterGeometry)
    macs: MacGeometry = field(default_factory=MacGeometry)
    bmt: TreeGeometry = field(init=False)
    mt: TreeGeometry = field(init=False)

    def __post_init__(self) -> None:
        if self.protected_bytes % params.CACHE_LINE_BYTES:
            raise ValueError("protected range must be line-aligned")
        object.__setattr__(self, "bmt", bmt_geometry(self.protected_bytes))
        object.__setattr__(self, "mt", mt_geometry(self.protected_bytes))
        # region bases, chained once instead of per property access.
        set_ = object.__setattr__
        counter_region = self.counters.storage_bytes(self.protected_bytes)
        mac_region = self.macs.storage_bytes(self.protected_bytes)
        set_(self, "_counter_base", self.protected_bytes)
        set_(self, "_counter_region_bytes", counter_region)
        set_(self, "_mac_base", self.protected_bytes + counter_region)
        set_(self, "_mac_region_bytes", mac_region)
        set_(self, "_bmt_base", self._mac_base + mac_region)
        set_(self, "_bmt_region_bytes", self.bmt.internal_storage_bytes)
        set_(self, "_mt_base", self._bmt_base + self._bmt_region_bytes)
        set_(self, "_mt_region_bytes", self.mt.internal_storage_bytes)
        set_(self, "_end", self._mt_base + self._mt_region_bytes)
        # per-instance LRU maps shadowing the class methods of the same
        # name.  Invalid addresses raise inside the wrapped function and
        # are never cached, so validation behavior is unchanged.
        set_(self, "counter_block_addr", lru_cache(_ADDR_MEMO_SIZE)(self.counter_block_addr))
        set_(self, "mac_block_addr", lru_cache(_ADDR_MEMO_SIZE)(self.mac_block_addr))
        set_(self, "bmt_path_addrs", lru_cache(_PATH_MEMO_SIZE)(self.bmt_path_addrs))
        set_(self, "mt_path_addrs", lru_cache(_PATH_MEMO_SIZE)(self.mt_path_addrs))

    # -- region bases ----------------------------------------------------------

    @property
    def counter_base(self) -> int:
        return self._counter_base

    @property
    def counter_region_bytes(self) -> int:
        return self._counter_region_bytes

    @property
    def mac_base(self) -> int:
        return self._mac_base

    @property
    def mac_region_bytes(self) -> int:
        return self._mac_region_bytes

    @property
    def bmt_base(self) -> int:
        return self._bmt_base

    @property
    def bmt_region_bytes(self) -> int:
        return self._bmt_region_bytes

    @property
    def mt_base(self) -> int:
        return self._mt_base

    @property
    def mt_region_bytes(self) -> int:
        return self._mt_region_bytes

    @property
    def end(self) -> int:
        return self._end

    # -- data -> metadata block addresses -----------------------------------------

    def _check_data_addr(self, data_addr: int) -> None:
        if not 0 <= data_addr < self.protected_bytes:
            raise ValueError(
                f"address {data_addr:#x} outside the protected range "
                f"[0, {self.protected_bytes:#x})"
            )

    def counter_block_addr(self, data_addr: int) -> int:
        """Address of the counter block covering *data_addr*."""
        self._check_data_addr(data_addr)
        index = self.counters.block_index(data_addr)
        return self.counter_base + index * params.CACHE_LINE_BYTES

    def mac_block_addr(self, data_addr: int) -> int:
        """Address of the MAC block covering *data_addr*."""
        self._check_data_addr(data_addr)
        index = self.macs.block_index(data_addr)
        return self.mac_base + index * params.CACHE_LINE_BYTES

    def bmt_node_addr(self, level: int, index: int) -> int:
        return self.bmt_base + self.bmt.node_offset(level, index)

    def mt_node_addr(self, level: int, index: int) -> int:
        return self.mt_base + self.mt.node_offset(level, index)

    def bmt_path_addrs(self, data_addr: int) -> Tuple[int, ...]:
        """BMT node addresses from the covering counter block's parent to root."""
        self._check_data_addr(data_addr)
        leaf = self.counters.block_index(data_addr)
        return tuple(self.bmt_node_addr(lvl, idx) for lvl, idx in self.bmt.path_to_root(leaf))

    def mt_path_addrs(self, data_addr: int) -> Tuple[int, ...]:
        """MT node addresses from the covering MAC block's parent to root."""
        self._check_data_addr(data_addr)
        leaf = self.macs.block_index(data_addr)
        return tuple(self.mt_node_addr(lvl, idx) for lvl, idx in self.mt.path_to_root(leaf))

    # -- classification -------------------------------------------------------------

    def kind_of(self, addr: int) -> MetadataKind | None:
        """Which metadata region *addr* falls in, or None for data addresses."""
        if addr < self.counter_base:
            return None
        if addr < self.mac_base:
            return MetadataKind.COUNTER
        if addr < self.bmt_base:
            return MetadataKind.MAC
        if addr < self.end:
            return MetadataKind.TREE
        raise ValueError(f"address {addr:#x} beyond the metadata regions")

    def is_metadata(self, addr: int) -> bool:
        return self.kind_of(addr) is not None

    def total_metadata_bytes(self, counter_mode: bool) -> int:
        """Table II's per-mode total metadata storage."""
        if counter_mode:
            return self.counter_region_bytes + self.mac_region_bytes + self.bmt_region_bytes
        return self.mac_region_bytes + self.mt_region_bytes


@lru_cache(maxsize=64)
def shared_layout(protected_bytes: int) -> MetadataLayout:
    """Process-wide shared layout for a protected-range size.

    A :class:`MetadataLayout` is immutable and its per-instance LRU
    translation maps are pure (data address -> metadata address), so one
    instance can safely serve every simulation in the process.  Sharing is
    the cross-point warm state: the second and later points of a sweep
    reuse the address translations the first point computed instead of
    re-deriving them from cold caches.  (Workers of a process pool each
    warm their own instance — the memo is per process.)
    """
    layout = MetadataLayout(protected_bytes)
    _SHARED_LAYOUTS.append(layout)
    return layout


#: live shared instances, enumerable for warm-state introspection
#: (``lru_cache`` exposes no key iterator).
_SHARED_LAYOUTS: list = []


def shared_layouts() -> Tuple[MetadataLayout, ...]:
    """The layouts currently shared process-wide (diagnostics only)."""
    return tuple(_SHARED_LAYOUTS)
