"""Integrity-tree shape and node addressing.

The paper uses 16-ary hash trees whose 128 B nodes each hold sixteen 64-bit
hashes of their children.  For counter-mode encryption the tree is a Bonsai
Merkle Tree whose leaves are the counter blocks ("6-level" counting the leaf
level); for direct encryption it is a Merkle Tree whose leaves are the MAC
blocks ("7-level").  The topmost node is the root, held in an on-chip
register and therefore not part of the off-chip storage a fetch can miss on.

Node coordinates are ``(level, index)`` where level 1 is the parents of the
leaves and the highest level contains the single root node.  Level 0 denotes
the leaves themselves (counter or MAC blocks), which live in their own
metadata region and are not addressed through this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Tuple

from repro.common import params


@dataclass(frozen=True)
class TreeGeometry:
    """A k-ary hash tree over a fixed number of leaf blocks."""

    num_leaves: int
    arity: int = params.TREE_ARITY
    node_bytes: int = params.CACHE_LINE_BYTES
    #: node counts for level 1 (leaf parents) .. top (root); computed.
    level_sizes: Tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_leaves < 1:
            raise ValueError("tree needs at least one leaf")
        if self.arity < 2:
            raise ValueError("tree arity must be at least 2")
        sizes: List[int] = []
        count = self.num_leaves
        while count > 1:
            count = -(-count // self.arity)
            sizes.append(count)
        if not sizes:  # a single leaf still gets a root above it
            sizes.append(1)
        object.__setattr__(self, "level_sizes", tuple(sizes))
        # cumulative node counts below each level, so flat_index is O(1)
        # instead of summing a prefix of level_sizes on every call.
        bases: List[int] = [0]
        for size in sizes[:-1]:
            bases.append(bases[-1] + size)
        object.__setattr__(self, "_level_base", tuple(bases))

    # -- shape ---------------------------------------------------------------

    @property
    def num_internal_levels(self) -> int:
        """Number of levels above the leaves (root included)."""
        return len(self.level_sizes)

    @property
    def num_levels_with_leaves(self) -> int:
        """The paper's level count, which includes the leaf level."""
        return self.num_internal_levels + 1

    @property
    def root_level(self) -> int:
        return self.num_internal_levels

    @property
    def total_internal_nodes(self) -> int:
        return sum(self.level_sizes)

    @property
    def internal_storage_bytes(self) -> int:
        """Off-chip bytes for all internal nodes, excluding the leaves.

        Matches Table II: ~2.14 MB for the BMT, ~17.1 MB for the MT.  (The
        root could live on chip, but the paper's storage figures count every
        internal node, so we do too.)
        """
        return self.total_internal_nodes * self.node_bytes

    def nodes_at(self, level: int) -> int:
        if not 1 <= level <= self.root_level:
            raise ValueError(f"level {level} out of range 1..{self.root_level}")
        return self.level_sizes[level - 1]

    # -- addressing --------------------------------------------------------------

    def parent(self, level: int, index: int) -> Tuple[int, int]:
        """Coordinates of the parent of node ``(level, index)``.

        *level* 0 addresses a leaf block, whose parent is at level 1.
        """
        if level == self.root_level:
            raise ValueError("the root has no parent")
        size = self.num_leaves if level == 0 else self.nodes_at(level)
        if not 0 <= index < size:
            raise ValueError(f"index {index} out of range at level {level}")
        return level + 1, index // self.arity

    def path_to_root(self, leaf_index: int) -> List[Tuple[int, int]]:
        """All internal nodes from the leaf's parent up to and incl. the root."""
        path: List[Tuple[int, int]] = []
        level, index = 0, leaf_index
        while level < self.root_level:
            level, index = self.parent(level, index)
            path.append((level, index))
        return path

    def flat_index(self, level: int, index: int) -> int:
        """Position of node ``(level, index)`` in level-major storage order.

        Level 1 nodes come first, then level 2, etc.  Used to compute the
        node's off-chip address within the tree region.
        """
        if not 0 <= index < self.nodes_at(level):
            raise ValueError(f"index {index} out of range at level {level}")
        return self._level_base[level - 1] + index

    def node_offset(self, level: int, index: int) -> int:
        """Byte offset of the node inside the tree region."""
        return self.flat_index(level, index) * self.node_bytes

    def coords_of_offset(self, offset: int) -> Tuple[int, int]:
        """Inverse of :meth:`node_offset` (for trace attribution)."""
        if offset % self.node_bytes:
            raise ValueError("offset is not node-aligned")
        flat = offset // self.node_bytes
        for level, size in enumerate(self.level_sizes, start=1):
            if flat < size:
                return level, flat
            flat -= size
        raise ValueError("offset beyond the last tree node")


@lru_cache(maxsize=256)
def bmt_geometry(protected_bytes: int = params.PROTECTED_MEMORY_BYTES) -> TreeGeometry:
    """The paper's Bonsai Merkle Tree: leaves are the counter blocks.

    Memoized process-wide: the geometry is frozen and every layout of the
    same protected size describes the identical tree, so repeated GPU
    constructions share one instance (and its precomputed level tables).
    """
    from repro.secure.geometry import CounterGeometry

    leaves = -(-protected_bytes // CounterGeometry().data_bytes_per_block)
    return TreeGeometry(num_leaves=leaves)


@lru_cache(maxsize=256)
def mt_geometry(protected_bytes: int = params.PROTECTED_MEMORY_BYTES) -> TreeGeometry:
    """The paper's Merkle Tree for direct encryption: leaves are MAC blocks."""
    from repro.secure.geometry import MacGeometry

    leaves = -(-protected_bytes // MacGeometry().data_bytes_per_block)
    return TreeGeometry(num_leaves=leaves)
