"""Counter-block and MAC-block geometry (Section IV of the paper).

A *counter block* is one 128 B metadata cache line holding a 128-bit major
counter plus 128 seven-bit minor counters, covering 16 KB of data (128 data
lines).  A *MAC block* is one 128 B line holding 16 eight-byte MACs, covering
2 KB of data (16 data lines); each 8 B line-MAC is four truncated 16-bit
sector MACs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import params


@dataclass(frozen=True)
class CounterGeometry:
    """Split-counter organization for counter-mode encryption."""

    line_bytes: int = params.CACHE_LINE_BYTES
    major_bits: int = params.MAJOR_COUNTER_BITS
    minor_bits: int = params.MINOR_COUNTER_BITS
    minors_per_block: int = params.MINOR_COUNTERS_PER_BLOCK

    def __post_init__(self) -> None:
        used = self.major_bits + self.minor_bits * self.minors_per_block
        if used > self.line_bytes * 8:
            raise ValueError(
                f"counter block needs {used} bits but the line has "
                f"{self.line_bytes * 8}"
            )

    @property
    def data_bytes_per_block(self) -> int:
        """Data covered by one counter block (16 KB in the paper)."""
        return self.minors_per_block * params.CACHE_LINE_BYTES

    @property
    def coverage_ratio(self) -> int:
        """Data-to-counter capacity ratio (128 in the paper)."""
        return self.data_bytes_per_block // self.line_bytes

    @property
    def minor_limit(self) -> int:
        """Exclusive upper bound of a minor counter before it overflows."""
        return 1 << self.minor_bits

    def storage_bytes(self, protected_bytes: int) -> int:
        """Off-chip storage for counters protecting *protected_bytes* of data."""
        blocks = _ceil_div(protected_bytes, self.data_bytes_per_block)
        return blocks * self.line_bytes

    def block_index(self, data_addr: int) -> int:
        """Index of the counter block covering *data_addr*."""
        return data_addr // self.data_bytes_per_block

    def minor_index(self, data_addr: int) -> int:
        """Index of the minor counter for *data_addr* within its block."""
        return (data_addr % self.data_bytes_per_block) // params.CACHE_LINE_BYTES


@dataclass(frozen=True)
class MacGeometry:
    """Per-line MACs with per-sector truncation (Section IV)."""

    line_bytes: int = params.CACHE_LINE_BYTES
    mac_bytes_per_line: int = params.MAC_BYTES_PER_LINE
    mac_bytes_per_sector: int = params.MAC_BYTES_PER_SECTOR
    sector_bytes: int = params.SECTOR_BYTES

    def __post_init__(self) -> None:
        sectors = self.line_bytes // self.sector_bytes
        if self.mac_bytes_per_sector * sectors != self.mac_bytes_per_line:
            raise ValueError("sector MACs must tile the line MAC exactly")

    @property
    def macs_per_block(self) -> int:
        """Data lines covered by one 128 B MAC block (16 in the paper)."""
        return self.line_bytes // self.mac_bytes_per_line

    @property
    def data_bytes_per_block(self) -> int:
        """Data covered by one MAC block (2 KB in the paper)."""
        return self.macs_per_block * self.line_bytes

    def storage_bytes(self, protected_bytes: int) -> int:
        """Off-chip storage for MACs protecting *protected_bytes* of data."""
        lines = _ceil_div(protected_bytes, self.line_bytes)
        return lines * self.mac_bytes_per_line

    def block_index(self, data_addr: int) -> int:
        """Index of the MAC block covering *data_addr*."""
        return data_addr // self.data_bytes_per_block

    def slot_index(self, data_addr: int) -> int:
        """Index of the line MAC for *data_addr* within its MAC block."""
        return (data_addr % self.data_bytes_per_block) // self.line_bytes


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)
