"""Pipelined AES engine bank and MAC unit timing models (Section IV).

A pipelined AES-128 engine emits 16 B of keystream/ciphertext per *memory*
clock cycle, i.e. 13.6 GB/s at 850 MHz.  Two engines per partition match the
per-partition DRAM bandwidth (868/32 = 27.1 GB/s); one engine halves the
crypto throughput (the Figure 12 experiment).  Latency and throughput are
independent: latency is the pipeline depth (hidden in counter mode,
exposed in direct mode), throughput is the issue rate.
"""

from __future__ import annotations

from repro.common import params
from repro.common.stats import StatGroup
from repro.sim.resource import ThroughputResource


class AesEngineBank:
    """All AES engines of one memory partition, modeled as one fast server."""

    def __init__(
        self,
        num_engines: int,
        latency: int,
        core_clock_mhz: float,
        dram_clock_mhz: float,
        stats: StatGroup | None = None,
    ) -> None:
        if num_engines < 1:
            raise ValueError("need at least one AES engine")
        self.num_engines = num_engines
        self.latency = latency
        self.dram_clock_mhz = dram_clock_mhz
        self.stats = stats if stats is not None else StatGroup("aes")
        #: core cycles for the bank to stream one byte.
        clock_ratio = core_clock_mhz / dram_clock_mhz
        self.cycles_per_byte = clock_ratio / (params.AES_BYTES_PER_MEM_CYCLE * num_engines)
        self._pipe = ThroughputResource("aes-bank")
        self._counts = self.stats.raw()

    def process(self, now: float, nbytes: int, available: float | None = None) -> float:
        """Encrypt/decrypt *nbytes*; returns completion time.

        Completion = queueing for an engine slot + streaming occupancy +
        pipeline latency.  *available* is when the input data arrives (e.g.
        the counter or the ciphertext): the engine slot is reserved at *now*
        (keeping the FCFS resource's arrival order monotone) but processing
        cannot finish before the data has streamed through.
        """
        # per-sector hot path: the FCFS acquire is inlined (the pipe has no
        # stats group) and the stat adds go straight to the raw counters.
        occupancy = nbytes * self.cycles_per_byte
        pipe = self._pipe
        next_free = pipe.next_free
        start = next_free if next_free > now else now
        pipe.next_free = start + occupancy
        pipe.busy_cycles += occupancy
        if available is not None and available > start:
            start = available
        counts = self._counts
        counts["ops"] += 1.0
        counts["bytes"] += nbytes
        return start + occupancy + self.latency

    def utilization(self, elapsed: float) -> float:
        return self._pipe.utilization(elapsed)

    @property
    def busy_cycles(self) -> float:
        """Cumulative busy core cycles (the sampler's utilization gauge)."""
        return self._pipe.busy_cycles

    @property
    def throughput_gbps(self) -> float:
        """Aggregate engine throughput in GB/s (13.6 per engine at 850 MHz)."""
        bytes_per_second = (
            params.AES_BYTES_PER_MEM_CYCLE * self.num_engines * self.dram_clock_mhz * 1e6
        )
        return bytes_per_second / 1e9


class MacUnit:
    """Pipelined MAC/hash unit: fixed latency, generous throughput."""

    def __init__(
        self,
        latency: int,
        core_clock_mhz: float,
        dram_clock_mhz: float,
        stats: StatGroup | None = None,
    ) -> None:
        self.latency = latency
        self.stats = stats if stats is not None else StatGroup("mac_unit")
        clock_ratio = core_clock_mhz / dram_clock_mhz
        self.cycles_per_op = clock_ratio  # one 32B-sector MAC per memory cycle
        self._pipe = ThroughputResource("mac-unit")
        self._counts = self.stats.raw()

    def process(self, now: float, n_ops: int = 1, available: float | None = None) -> float:
        """Compute *n_ops* MACs/hashes; returns completion time.

        As with the AES bank, the unit is reserved at *now* and *available*
        only floors the completion time.
        """
        occupancy = n_ops * self.cycles_per_op
        pipe = self._pipe
        next_free = pipe.next_free
        start = next_free if next_free > now else now
        pipe.next_free = start + occupancy
        pipe.busy_cycles += occupancy
        if available is not None and available > start:
            start = available
        self._counts["ops"] += n_ops
        return start + occupancy + self.latency

    def utilization(self, elapsed: float) -> float:
        return self._pipe.utilization(elapsed)

    @property
    def busy_cycles(self) -> float:
        """Cumulative busy core cycles (the sampler's utilization gauge)."""
        return self._pipe.busy_cycles
