"""Workload proxies for the paper's 14 Rodinia/Parboil/Polybench benchmarks."""

from repro.workloads.base import WarpOp, WorkloadSpec
from repro.workloads.trace import load_trace, record_trace
from repro.workloads.suite import (
    BENCHMARKS,
    MEDIUM_INTENSIVE,
    MEMORY_INTENSIVE,
    NON_MEMORY_INTENSIVE,
    get_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "MEDIUM_INTENSIVE",
    "MEMORY_INTENSIVE",
    "NON_MEMORY_INTENSIVE",
    "WarpOp",
    "WorkloadSpec",
    "get_benchmark",
    "load_trace",
    "record_trace",
]
