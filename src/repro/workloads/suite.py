"""The paper's benchmark suite as parameterized proxies (Table IV).

Each entry mirrors one Rodinia/Parboil/Polybench benchmark's memory
behaviour: access pattern, coalescing, working-set size, hot-set reuse,
read/write mix and compute intensity, tuned so the *baseline* simulation
lands in the paper's bandwidth-utilization band with a comparable relative
IPC.  ``PAPER_TABLE4`` records the published numbers; calibration is
checked by ``tests/test_calibration.py`` and reported by
``benchmarks/bench_table4_baseline.py``.

The tuning logic, in brief: the paper's (bandwidth %, IPC) pair fixes the
benchmark's DRAM-bytes-per-instruction ratio; the access pattern fixes
where those bytes come from.  ``insts_per_step`` carries the former,
``hot_fraction``/working-set size/warp count carry the latter.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads import patterns
from repro.workloads.base import WorkloadSpec

KB = 1024
MB = 1024 * 1024

#: (bandwidth-utilization low %, high %, baseline IPC) from Table IV.
PAPER_TABLE4: Dict[str, tuple] = {
    "heartwall": (0.0, 1.0, 1195.37),
    "lavaMD": (0.0, 1.0, 4615.23),
    "nw": (0.0, 2.0, 23.90),
    "b+tree": (12.0, 14.0, 2768.61),
    "backprop": (25.0, 25.0, 3067.61),
    "cfd": (15.0, 50.0, 1076.98),
    "dwt2d": (20.0, 50.0, 784.70),
    "kmeans": (40.0, 45.0, 97.04),
    "bfs": (5.0, 60.0, 699.51),
    "srad_v2": (79.0, 80.0, 3306.82),
    "streamcluster": (78.0, 80.0, 1178.18),
    "2Dconvolution": (53.0, 53.0, 2487.22),
    "fdtd2d": (82.0, 83.0, 1773.95),
    "lbm": (58.0, 58.0, 552.12),
}

#: peak thread-instructions per cycle on the paper's GPU (80 SMs x 4 x 32).
PAPER_PEAK_IPC = 80 * 4 * 32


def _spec(**kwargs) -> WorkloadSpec:
    return WorkloadSpec(**kwargs)


BENCHMARKS: Dict[str, WorkloadSpec] = {
    # --- non memory intensive -------------------------------------------------
    "heartwall": _spec(
        name="heartwall",
        category="non",
        trace_factory=patterns.compute_only,
        warps_per_sm=8,
        insts_per_step=12,
        compute_cycles=200,
        working_set=2 * MB,
        write_ratio=0.05,
        extra={"mem_every": 6, "tile_lines": 16, "tile_share": 8},
    ),
    "lavaMD": _spec(
        name="lavaMD",
        category="non",
        trace_factory=patterns.compute_only,
        warps_per_sm=24,
        insts_per_step=28,
        compute_cycles=300,
        working_set=1 * MB,
        write_ratio=0.02,
        extra={"mem_every": 8, "tile_lines": 16, "tile_share": 24},
    ),
    "nw": _spec(
        name="nw",
        category="non",
        trace_factory=patterns.streaming,
        warps_per_sm=1,  # the paper: "limited by the small kernel"
        insts_per_step=6,
        compute_cycles=20,
        working_set=8 * MB,
        write_ratio=0.45,
        sectors_per_access=2,
    ),
    "b+tree": _spec(
        name="b+tree",
        category="non",
        trace_factory=patterns.pointer_chase,
        warps_per_sm=24,
        insts_per_step=22,
        compute_cycles=150,
        working_set=12 * MB,
        write_ratio=0.0,
        extra={"fanout": 4, "hot_fraction": 0.88, "hot_bytes": 256 * KB},
    ),
    # --- medium memory intensive ------------------------------------------------
    "backprop": _spec(
        name="backprop",
        category="medium",
        trace_factory=patterns.mixed,
        warps_per_sm=24,
        insts_per_step=16,
        compute_cycles=60,
        working_set=48 * MB,
        write_ratio=0.20,
        sectors_per_access=4,
        extra={"hot_fraction": 0.72, "hot_bytes": 256 * KB},
    ),
    "cfd": _spec(
        name="cfd",
        category="medium",
        trace_factory=patterns.random_access,
        warps_per_sm=12,
        insts_per_step=14,
        compute_cycles=150,
        working_set=2 * MB,
        write_ratio=0.20,
        sectors_per_access=4,
    ),
    "dwt2d": _spec(
        name="dwt2d",
        category="medium",
        trace_factory=patterns.stencil,
        warps_per_sm=14,
        insts_per_step=10,
        compute_cycles=150,
        working_set=2 * MB,
        write_ratio=0.90,
        sectors_per_access=4,
        extra={"arrays": 2},
    ),
    "kmeans": _spec(
        name="kmeans",
        category="medium",
        trace_factory=patterns.random_access,
        warps_per_sm=16,
        insts_per_step=3,
        compute_cycles=650,
        working_set=96 * MB,
        write_ratio=0.02,
        sectors_per_access=8,
    ),
    "bfs": _spec(
        name="bfs",
        category="medium",
        trace_factory=patterns.random_access,
        warps_per_sm=16,
        insts_per_step=6,
        compute_cycles=100,
        working_set=8 * MB,
        write_ratio=0.35,
        sectors_per_access=2,
    ),
    # --- memory intensive ----------------------------------------------------------
    "srad_v2": _spec(
        name="srad_v2",
        category="intensive",
        trace_factory=patterns.streaming,
        warps_per_sm=32,
        insts_per_step=40,
        compute_cycles=0,
        working_set=96 * MB,
        write_ratio=0.30,
        sectors_per_access=8,
    ),
    "streamcluster": _spec(
        name="streamcluster",
        category="intensive",
        trace_factory=patterns.streaming,
        warps_per_sm=14,
        insts_per_step=15,
        compute_cycles=0,
        working_set=128 * MB,
        write_ratio=0.03,
        sectors_per_access=8,
    ),
    "2Dconvolution": _spec(
        name="2Dconvolution",
        category="intensive",
        trace_factory=patterns.mixed,
        warps_per_sm=12,
        insts_per_step=26,
        compute_cycles=0,
        working_set=64 * MB,
        write_ratio=0.15,
        sectors_per_access=8,
        extra={"hot_fraction": 0.60, "hot_bytes": 384 * KB},
    ),
    "fdtd2d": _spec(
        name="fdtd2d",
        category="intensive",
        trace_factory=patterns.stencil,
        warps_per_sm=32,
        insts_per_step=22,
        compute_cycles=0,
        working_set=96 * MB,
        write_ratio=0.95,
        sectors_per_access=8,
        extra={"arrays": 3},
    ),
    "lbm": _spec(
        name="lbm",
        category="intensive",
        trace_factory=patterns.stencil,
        warps_per_sm=24,
        insts_per_step=10,
        compute_cycles=700,
        working_set=128 * MB,
        write_ratio=0.95,
        sectors_per_access=8,
        extra={"arrays": 5},
    ),
}

NON_MEMORY_INTENSIVE: List[str] = [n for n, s in BENCHMARKS.items() if s.category == "non"]
MEDIUM_INTENSIVE: List[str] = [n for n, s in BENCHMARKS.items() if s.category == "medium"]
MEMORY_INTENSIVE: List[str] = [n for n, s in BENCHMARKS.items() if s.category == "intensive"]

#: the paper's figure ordering (Table IV order).
BENCHMARK_ORDER: List[str] = list(PAPER_TABLE4)


def get_benchmark(name: str) -> WorkloadSpec:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        ) from None
